"""Gradient-boosted trees (multinomial deviance, one tree per class/round).

Classic Friedman-style GBM built on the regression trees from
:mod:`repro.bo.forest`: each round fits per-class regression trees to the
softmax residuals and adds them to the logit ensemble with shrinkage.
Cost grows linearly with the class count, so AutoGluon-like skips this
learner on very-many-class problems (Dionis).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaseClassifier, check_Xy
from repro.bo.forest import RegressionTree
from repro.datasets.preprocessing import one_hot

__all__ = ["GradientBoostingClassifier"]


def _softmax(logits: np.ndarray) -> np.ndarray:
    z = logits - logits.max(axis=1, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=1, keepdims=True)


class GradientBoostingClassifier(BaseClassifier):
    """Multiclass GBM with shrinkage and optional row subsampling."""

    def __init__(
        self,
        n_classes: int,
        n_rounds: int = 50,
        learning_rate: float = 0.1,
        max_depth: int = 4,
        subsample: float = 1.0,
    ) -> None:
        super().__init__(n_classes)
        if n_rounds < 1:
            raise ValueError("n_rounds must be >= 1")
        if not 0.0 < learning_rate <= 1.0:
            raise ValueError("learning_rate must be in (0, 1]")
        if not 0.0 < subsample <= 1.0:
            raise ValueError("subsample must be in (0, 1]")
        self.n_rounds = n_rounds
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.subsample = subsample
        self._stages: list[list[RegressionTree]] = []
        self._base_logits: np.ndarray | None = None

    def fit(self, X: np.ndarray, y: np.ndarray, rng: np.random.Generator) -> "GradientBoostingClassifier":
        X, y = check_Xy(X, y)
        n = X.shape[0]
        Y = one_hot(y, self.n_classes)
        priors = Y.mean(axis=0)
        self._base_logits = np.log(np.clip(priors, 1e-9, None))
        F = np.tile(self._base_logits, (n, 1))
        self._stages = []
        for _ in range(self.n_rounds):
            residual = Y - _softmax(F)  # negative gradient of the deviance
            if self.subsample < 1.0:
                rows = rng.choice(n, size=max(1, int(self.subsample * n)), replace=False)
            else:
                rows = np.arange(n)
            stage: list[RegressionTree] = []
            for c in range(self.n_classes):
                tree = RegressionTree(max_depth=self.max_depth, min_samples_split=8)
                tree.fit(X[rows], residual[rows, c], rng)
                F[:, c] += self.learning_rate * tree.predict(X)
                stage.append(tree)
            self._stages.append(stage)
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        if self._base_logits is None:
            raise RuntimeError("GBM is not fitted")
        X = np.asarray(X, dtype=float)
        F = np.tile(self._base_logits, (X.shape[0], 1))
        for stage in self._stages:
            for c, tree in enumerate(stage):
                F[:, c] += self.learning_rate * tree.predict(X)
        return F

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        return _softmax(self.decision_function(X))
