"""Asynchronous Bayesian optimization (paper substitute for scikit-optimize).

Components:

- :class:`RegressionTree` / :class:`RandomForestRegressor` — the surrogate
  model ``M`` (the paper uses skopt's random forest), predicting a mean and
  a cross-tree standard deviation per candidate.
- :func:`upper_confidence_bound` — the UCB acquisition (paper Eq. 3).
- :func:`constant_lie` — the multipoint constant-liar strategy.
- :class:`BayesianOptimizer` — the ask/tell optimizer AgEBO embeds.
"""

from repro.bo.forest import RandomForestRegressor, RegressionTree
from repro.bo.acquisition import expected_improvement, upper_confidence_bound
from repro.bo.liar import constant_lie
from repro.bo.surrogate import KNNSurrogate
from repro.bo.optimizer import BayesianOptimizer

__all__ = [
    "RegressionTree",
    "RandomForestRegressor",
    "KNNSurrogate",
    "upper_confidence_bound",
    "expected_improvement",
    "constant_lie",
    "BayesianOptimizer",
]
