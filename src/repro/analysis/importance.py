"""Hyperparameter importance from a finished search (fANOVA-lite).

Fits the same random-forest surrogate AgEBO uses to the history's
(hyperparameter, validation accuracy) pairs, then scores each tuned
dimension by the variance of its *marginal* prediction curve: sweep one
dimension over its observed range while averaging the forest's prediction
over bootstrap samples of the remaining dimensions.  A dimension whose
marginal moves the predicted accuracy a lot is important for this data set
— the quantitative counterpart of the paper's Table III observation that
different data sets need different (bs, lr, n).
"""

from __future__ import annotations

import numpy as np

from repro.bo.forest import RandomForestRegressor
from repro.core.results import SearchHistory
from repro.searchspace.hpspace import HyperparameterSpace

__all__ = ["hyperparameter_importance", "marginal_curve"]


def _observation_matrix(
    history: SearchHistory, space: HyperparameterSpace
) -> tuple[np.ndarray, np.ndarray]:
    X = np.stack([space.to_array(r.config.hyperparameters) for r in history.records])
    y = history.objectives()
    return X, y


def marginal_curve(
    forest: RandomForestRegressor,
    X: np.ndarray,
    dim: int,
    grid: np.ndarray,
    rng: np.random.Generator,
    n_background: int = 128,
) -> np.ndarray:
    """Mean prediction at each grid value of ``dim``, marginalizing the rest."""
    rows = X[rng.integers(0, X.shape[0], size=min(n_background, 4 * X.shape[0]))]
    curve = np.empty(grid.size)
    for i, value in enumerate(grid):
        probe = rows.copy()
        probe[:, dim] = value
        mu, _ = forest.predict(probe)
        curve[i] = mu.mean()
    return curve


def hyperparameter_importance(
    history: SearchHistory,
    space: HyperparameterSpace,
    n_grid: int = 12,
    seed: int = 0,
) -> dict[str, float]:
    """Normalized importance per tuned hyperparameter (sums to 1).

    Requires at least 5 evaluations; raises ``ValueError`` otherwise.
    """
    if space.num_dimensions == 0:
        return {}
    if len(history) < 5:
        raise ValueError(f"need at least 5 evaluations, have {len(history)}")
    rng = np.random.default_rng(seed)
    X, y = _observation_matrix(history, space)
    forest = RandomForestRegressor(n_trees=40, max_depth=10).fit(X, y, rng)

    variances = {}
    for d, name in enumerate(space.names):
        lo, hi = X[:, d].min(), X[:, d].max()
        if lo == hi:
            variances[name] = 0.0
            continue
        grid = np.linspace(lo, hi, n_grid)
        curve = marginal_curve(forest, X, d, grid, rng)
        variances[name] = float(curve.var())
    total = sum(variances.values())
    if total == 0.0:
        return {name: 1.0 / len(variances) for name in variances}
    return {name: v / total for name, v in variances.items()}
