"""Synthetic tabular benchmarks (paper substitute for OpenML data sets).

This environment has no network access, so the four OpenML data sets the
paper evaluates (Covertype, Airlines, Albert, Dionis) are replaced by
synthetic generators with matched shapes (feature count, class count,
42/25/33 split) and difficulty calibrated so attainable validation
accuracies approximate the paper's.  The generators produce genuinely
learnable nonlinear class structure, so search methods are ranked by real
training dynamics, not a mock.
"""

from repro.datasets.synthetic import make_tabular_classification
from repro.datasets.preprocessing import Standardizer, one_hot
from repro.datasets.splits import train_valid_test_split
from repro.datasets.openml_like import (
    DATASET_SPECS,
    TabularDataset,
    dataset_names,
    load_dataset,
)

__all__ = [
    "make_tabular_classification",
    "Standardizer",
    "one_hot",
    "train_valid_test_split",
    "TabularDataset",
    "DATASET_SPECS",
    "dataset_names",
    "load_dataset",
]
