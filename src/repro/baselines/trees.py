"""CART classification tree with vectorized Gini split search.

For a candidate split the weighted child impurity is minimized by
maximizing ``Σ_c L_c²/n_L + Σ_c R_c²/n_R`` where ``L_c/R_c`` are per-class
counts left/right of the threshold — computed for *every* threshold of a
feature in one pass via cumulative sums of the one-hot label matrix over
the sorted column.  Classes are remapped to those present in each node so
the per-node cost is ``O(n · classes_present)``, keeping 355-class Dionis
affordable.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaseClassifier, check_Xy

__all__ = ["ClassificationTree"]


class ClassificationTree(BaseClassifier):
    """Gini CART with optional per-split feature subsampling.

    Parameters
    ----------
    max_features:
        Candidate features per split (``None`` = all).
    random_thresholds:
        Extra-Trees mode: draw one uniform threshold per feature instead of
        scanning all cut points.
    """

    def __init__(
        self,
        n_classes: int,
        max_depth: int = 14,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | None = None,
        random_thresholds: bool = False,
    ) -> None:
        super().__init__(n_classes)
        if max_depth < 1 or min_samples_split < 2 or min_samples_leaf < 1:
            raise ValueError("invalid tree hyperparameters")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.random_thresholds = random_thresholds
        self._feature: list[int] = []
        self._threshold: list[float] = []
        self._left: list[int] = []
        self._right: list[int] = []
        self._proba: list[np.ndarray] = []

    # ------------------------------------------------------------------ #
    def fit(self, X: np.ndarray, y: np.ndarray, rng: np.random.Generator) -> "ClassificationTree":
        X, y = check_Xy(X, y)
        if y.size and y.max() >= self.n_classes:
            raise ValueError("label exceeds n_classes")
        self._feature.clear()
        self._threshold.clear()
        self._left.clear()
        self._right.clear()
        self._proba.clear()
        self._build(X, y, np.arange(X.shape[0]), 0, rng)
        return self

    def _leaf_proba(self, y_node: np.ndarray) -> np.ndarray:
        proba = np.bincount(y_node, minlength=self.n_classes).astype(float)
        return proba / proba.sum()

    def _new_node(self, proba: np.ndarray) -> int:
        idx = len(self._proba)
        self._feature.append(-1)
        self._threshold.append(0.0)
        self._left.append(-1)
        self._right.append(-1)
        self._proba.append(proba)
        return idx

    def _build(
        self, X: np.ndarray, y: np.ndarray, idx: np.ndarray, depth: int, rng: np.random.Generator
    ) -> int:
        y_node = y[idx]
        node = self._new_node(self._leaf_proba(y_node))
        if (
            depth >= self.max_depth
            or idx.size < self.min_samples_split
            or (y_node == y_node[0]).all()
        ):
            return node
        split = self._best_split(X, y_node, idx, rng)
        if split is None:
            return node
        feature, threshold = split
        mask = X[idx, feature] <= threshold
        left_idx = idx[mask]
        right_idx = idx[~mask]
        if left_idx.size < self.min_samples_leaf or right_idx.size < self.min_samples_leaf:
            return node
        self._feature[node] = feature
        self._threshold[node] = threshold
        self._left[node] = self._build(X, y, left_idx, depth + 1, rng)
        self._right[node] = self._build(X, y, right_idx, depth + 1, rng)
        return node

    def _best_split(
        self, X: np.ndarray, y_node: np.ndarray, idx: np.ndarray, rng: np.random.Generator
    ) -> tuple[int, float] | None:
        n_features = X.shape[1]
        k = n_features if self.max_features is None else min(self.max_features, n_features)
        features = rng.choice(n_features, size=k, replace=False)
        # Remap to classes present in this node.
        present, y_local = np.unique(y_node, return_inverse=True)
        n_local = present.size
        n = idx.size
        onehot = np.zeros((n, n_local))
        onehot[np.arange(n), y_local] = 1.0

        best_score = -np.inf
        best: tuple[int, float] | None = None
        for f in features:
            col = X[idx, f]
            if self.random_thresholds:
                lo, hi = col.min(), col.max()
                if lo == hi:
                    continue
                threshold = float(rng.uniform(lo, hi))
                mask = col <= threshold
                n_l = int(mask.sum())
                n_r = n - n_l
                if n_l < self.min_samples_leaf or n_r < self.min_samples_leaf:
                    continue
                L = onehot[mask].sum(axis=0)
                R = onehot[~mask].sum(axis=0)
                score = (L * L).sum() / n_l + (R * R).sum() / n_r
                if score > best_score:
                    best_score = float(score)
                    best = (int(f), threshold)
                continue

            order = np.argsort(col, kind="stable")
            xs = col[order]
            cum = np.cumsum(onehot[order], axis=0)  # (n, n_local)
            total = cum[-1]
            counts = np.arange(1, n)
            L = cum[:-1]
            R = total - L
            score = (L * L).sum(axis=1) / counts + (R * R).sum(axis=1) / (n - counts)
            valid = xs[1:] > xs[:-1]
            if self.min_samples_leaf > 1:
                valid &= (counts >= self.min_samples_leaf) & (
                    (n - counts) >= self.min_samples_leaf
                )
            if not valid.any():
                continue
            score = np.where(valid, score, -np.inf)
            pos = int(np.argmax(score))
            if score[pos] > best_score:
                best_score = float(score[pos])
                best = (int(f), float(0.5 * (xs[pos] + xs[pos + 1])))
        return best

    # ------------------------------------------------------------------ #
    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=float)
        if not self._proba:
            raise RuntimeError("tree is not fitted")
        feature = np.asarray(self._feature)
        threshold = np.asarray(self._threshold)
        left = np.asarray(self._left)
        right = np.asarray(self._right)
        proba = np.stack(self._proba)

        nodes = np.zeros(X.shape[0], dtype=np.intp)
        active = feature[nodes] >= 0
        while active.any():
            cur = nodes[active]
            go_left = X[active, feature[cur]] <= threshold[cur]
            nodes[active] = np.where(go_left, left[cur], right[cur])
            active = feature[nodes] >= 0
        return proba[nodes]

    @property
    def node_count(self) -> int:
        return len(self._proba)
