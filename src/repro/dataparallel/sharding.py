"""Training-data sharding for data-parallel ranks.

The paper: "the training data set is split in n mutually exclusive subsets
called shards, which are given to n parallel processes."
"""

from __future__ import annotations

import numpy as np

__all__ = ["shard_indices"]


def shard_indices(
    n_samples: int,
    num_ranks: int,
    rng: np.random.Generator | None = None,
) -> list[np.ndarray]:
    """Partition ``range(n_samples)`` into ``num_ranks`` disjoint shards.

    Shard sizes differ by at most one sample.  If ``rng`` is given the
    sample order is shuffled first, so shards are i.i.d. draws from the
    training distribution (as Horovod's shuffled sharding produces).

    Returns
    -------
    list of index arrays, one per rank, jointly covering every sample
    exactly once.
    """
    if num_ranks < 1:
        raise ValueError(f"num_ranks must be >= 1, got {num_ranks}")
    if n_samples < num_ranks:
        raise ValueError(f"cannot shard {n_samples} samples over {num_ranks} ranks")
    order = np.arange(n_samples)
    if rng is not None:
        rng.shuffle(order)
    return [np.sort(part) for part in np.array_split(order, num_ranks)]
