"""Data-parallel training substrate (paper substitute for Horovod).

Implements synchronous data-parallel SGD with real semantics: the training
set is split into ``n`` mutually exclusive shards, each simulated rank
computes a gradient on a shard-local micro-batch, gradients are averaged by
a simulated ring-allreduce, and a single optimizer update is applied with
the linearly scaled learning rate.  The accuracy-vs-``(n, lr, bs)``
landscape that Bayesian optimization must learn is therefore reproduced
genuinely; only wall-clock time is replaced by the analytic cost model in
:mod:`repro.dataparallel.costmodel`.
"""

from repro.dataparallel.sharding import shard_indices
from repro.dataparallel.allreduce import (
    RingReducer,
    allreduce_mean,
    allreduce_mean_flat,
    flatten_gradients,
    gradient_segments,
    ring_allreduce,
    ring_allreduce_reference,
    ring_transfer_stats,
)
from repro.dataparallel.scaling import linear_scaled_batch_size, linear_scaled_lr
from repro.dataparallel.trainer import DataParallelTrainer
from repro.dataparallel.costmodel import TrainingCostModel
from repro.dataparallel.multinode import MultiNodeCostModel
from repro.dataparallel.compression import (
    FlatTopKCompressor,
    TopKCompressor,
    compressed_allreduce_mean,
    compressed_allreduce_mean_flat,
    compressed_transfer_bytes,
)

__all__ = [
    "FlatTopKCompressor",
    "MultiNodeCostModel",
    "RingReducer",
    "TopKCompressor",
    "compressed_allreduce_mean",
    "compressed_allreduce_mean_flat",
    "compressed_transfer_bytes",
    "shard_indices",
    "allreduce_mean",
    "allreduce_mean_flat",
    "flatten_gradients",
    "gradient_segments",
    "ring_allreduce",
    "ring_allreduce_reference",
    "ring_transfer_stats",
    "linear_scaled_lr",
    "linear_scaled_batch_size",
    "DataParallelTrainer",
    "TrainingCostModel",
]
