"""Seeded property-style invariant tests for both evaluator backends.

Random (but seeded, via plain ``random.Random`` — no hypothesis dependency)
submit/gather schedules driven against ``SimulatedEvaluator`` and
``ThreadedEvaluator``, asserting structural invariants that must hold for
*any* schedule:

- jobs start in FIFO submission order (absent faults),
- ``num_in_flight`` always equals submitted-minus-finished,
- workers are conserved: free + busy + dead == num_workers,
- ``utilization() <= 1.0`` at every quiescent point.
"""

from __future__ import annotations

import random

import pytest

from repro.workflow import (
    EvaluationResult,
    FaultPolicy,
    JobState,
    SimulatedEvaluator,
    ThreadedEvaluator,
)

SCHEDULE_SEEDS = [11, 23, 37, 59]


def seeded_run(seed: int):
    """Deterministic per-config durations/objectives from a hash."""

    def run(config):
        h = (int(config) * 2654435761 + seed) % 997
        return EvaluationResult(
            objective=(h % 100) / 100.0, duration=1.0 + (h % 7)
        )

    return run


def random_schedule(ev, rng, num_jobs, max_batch=5):
    """Drive a random submit/gather interleaving; return finished jobs in
    gather order.  Invariant-checks ``num_in_flight`` at every step."""
    submitted = 0
    finished = []
    while submitted < num_jobs or ev.num_in_flight > 0:
        if submitted < num_jobs and (ev.num_in_flight == 0 or rng.random() < 0.5):
            batch = min(rng.randint(1, max_batch), num_jobs - submitted)
            ev.submit(list(range(submitted, submitted + batch)))
            submitted += batch
        else:
            finished.extend(ev.gather())
        assert ev.num_in_flight == submitted - len(finished)
        assert ev.num_in_flight >= 0
    return finished


@pytest.mark.parametrize("seed", SCHEDULE_SEEDS)
def test_sim_fifo_start_order(seed):
    """With no faults, jobs grab workers in submission (job_id) order."""
    rng = random.Random(seed)
    ev = SimulatedEvaluator(seeded_run(seed), num_workers=rng.randint(1, 6))
    finished = random_schedule(ev, rng, num_jobs=30)
    assert len(finished) == 30
    by_id = sorted(finished, key=lambda j: j.job_id)
    starts = [j.start_time for j in by_id]
    assert starts == sorted(starts)
    assert all(j.state is JobState.DONE for j in finished)


@pytest.mark.parametrize("seed", SCHEDULE_SEEDS)
def test_sim_worker_conservation_and_utilization(seed):
    rng = random.Random(seed)
    num_workers = rng.randint(2, 6)
    ev = SimulatedEvaluator(seeded_run(seed), num_workers=num_workers)
    submitted = 0
    finished = 0
    while submitted < 25 or ev.num_in_flight > 0:
        if submitted < 25 and (ev.num_in_flight == 0 or rng.random() < 0.5):
            batch = rng.randint(1, 4)
            ev.submit(list(range(submitted, submitted + batch)))
            submitted += batch
        else:
            finished += len(ev.gather())
        free = len(ev._free_workers)
        busy = len(ev._running)
        dead = len(ev._dead_workers)
        assert free + busy + dead == num_workers
        assert 0.0 <= ev.utilization() <= 1.0


@pytest.mark.parametrize("seed", SCHEDULE_SEEDS)
def test_sim_single_worker_serializes_fifo(seed):
    """One worker: completion order == submission order, end-to-end."""
    rng = random.Random(seed)
    ev = SimulatedEvaluator(seeded_run(seed), num_workers=1)
    finished = random_schedule(ev, rng, num_jobs=15)
    assert [j.job_id for j in finished] == sorted(j.job_id for j in finished)
    # Back-to-back on one worker: each job starts when the previous ends.
    for prev, cur in zip(finished, finished[1:]):
        assert cur.start_time >= prev.end_time


@pytest.mark.parametrize("seed", SCHEDULE_SEEDS)
def test_sim_invariants_hold_under_faults(seed):
    """The accounting invariants survive crashes, retries and timeouts."""
    rng = random.Random(seed)

    def flaky(config):
        h = (int(config) * 2654435761 + seed) % 997
        if h % 5 == 0:
            raise RuntimeError("injected")
        return EvaluationResult(objective=(h % 100) / 100.0, duration=1.0 + (h % 9))

    policy = FaultPolicy(
        on_error="retry", max_retries=1, retry_backoff=0.5,
        timeout=8.0, failure_duration=0.5,
    )
    num_workers = rng.randint(2, 5)
    ev = SimulatedEvaluator(flaky, num_workers=num_workers, fault_policy=policy)
    finished = random_schedule(ev, rng, num_jobs=30)
    assert len(finished) == 30
    assert all(j.state in (JobState.DONE, JobState.FAILED) for j in finished)
    free = len(ev._free_workers)
    assert free + len(ev._running) + len(ev._dead_workers) == num_workers
    assert 0.0 <= ev.utilization() <= 1.0


@pytest.mark.parametrize("seed", SCHEDULE_SEEDS[:2])
def test_threaded_schedule_invariants(seed):
    """Same schedule invariants on the real-thread backend (smaller scale)."""
    rng = random.Random(seed)

    def run(config):
        return EvaluationResult(objective=0.5, duration=0.0)

    ev = ThreadedEvaluator(run, num_workers=3)
    try:
        finished = random_schedule(ev, rng, num_jobs=12, max_batch=3)
        assert len(finished) == 12
        assert all(j.state is JobState.DONE for j in finished)
        assert sorted(j.job_id for j in finished) == list(range(12))
        assert 0.0 <= ev.utilization() <= 1.0
        assert ev.num_in_flight == 0
    finally:
        ev.shutdown()
