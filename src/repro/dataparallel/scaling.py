"""The linear scaling rule (Goyal et al., 2017; paper Eq. 2).

``lr_n = n · lr_1`` and ``bs_n = n · bs_1``: with ``n`` ranks each
processing a micro-batch of ``bs_1``, the effective batch is ``n · bs_1``
and the learning rate is scaled to match, keeping the expected weight
update per sample constant.  The rule holds up to a data-set-specific
parallelism limit, beyond which accuracy degrades — finding that limit is
exactly what AgEBO's Bayesian optimization automates.
"""

from __future__ import annotations

__all__ = ["linear_scaled_lr", "linear_scaled_batch_size"]


def linear_scaled_lr(base_lr: float, num_ranks: int) -> float:
    """Learning rate for ``num_ranks`` data-parallel ranks."""
    if base_lr <= 0:
        raise ValueError(f"base_lr must be positive, got {base_lr}")
    if num_ranks < 1:
        raise ValueError(f"num_ranks must be >= 1, got {num_ranks}")
    return base_lr * num_ranks


def linear_scaled_batch_size(base_batch_size: int, num_ranks: int) -> int:
    """Effective (global) batch size for ``num_ranks`` ranks."""
    if base_batch_size < 1:
        raise ValueError(f"base_batch_size must be >= 1, got {base_batch_size}")
    if num_ranks < 1:
        raise ValueError(f"num_ranks must be >= 1, got {num_ranks}")
    return base_batch_size * num_ranks
