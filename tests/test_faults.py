"""Fault-injection test harness: policies, injector, worker failures.

Proves the fault-tolerance layer works under deterministically injected
crashes, hangs/stragglers and corrupted results — the §III-C requirement
that a diverged or dead evaluation must never kill a campaign.  The
acceptance scenario at the bottom runs a full 64-evaluation AgEBO campaign
through an injector and checks it completes with full history and high
utilization.  ``FAULT_SEED`` in the environment adds an extra injector
seed (used by the CI fault-injection job).
"""

from __future__ import annotations

import math
import os
import time

import numpy as np
import pytest

from repro.core.agebo import AgEBO
from repro.searchspace import ArchitectureSpace
from repro.searchspace.hpspace import default_dataparallel_space
from repro.workflow import (
    EvaluationResult,
    FaultInjector,
    FaultPolicy,
    InjectedCrash,
    JobState,
    SimulatedEvaluator,
    ThreadedEvaluator,
)

INJECTOR_SEEDS = [0, 1, 2]
if os.environ.get("FAULT_SEED"):
    INJECTOR_SEEDS.append(int(os.environ["FAULT_SEED"]))


def constant_run(duration=1.0, objective=0.5):
    def run(config):
        return EvaluationResult(objective=objective, duration=duration)

    return run


# --------------------------------------------------------------------- #
# FaultPolicy
# --------------------------------------------------------------------- #
def test_policy_validation():
    with pytest.raises(ValueError, match="on_error"):
        FaultPolicy(on_error="explode")
    with pytest.raises(ValueError):
        FaultPolicy(max_retries=-1)
    with pytest.raises(ValueError):
        FaultPolicy(retry_backoff=-0.5)
    with pytest.raises(ValueError):
        FaultPolicy(timeout=0.0)


def test_policy_backoff_is_exponential():
    policy = FaultPolicy(on_error="retry", max_retries=3, retry_backoff=2.0)
    assert policy.backoff_minutes(1) == 2.0
    assert policy.backoff_minutes(2) == 4.0
    assert policy.backoff_minutes(3) == 8.0
    assert FaultPolicy().backoff_minutes(1) == 0.0


def test_policy_should_retry_counts_down():
    policy = FaultPolicy(on_error="retry", max_retries=2)
    assert policy.should_retry(0) and policy.should_retry(1)
    assert not policy.should_retry(2)
    assert not FaultPolicy(on_error="penalize", max_retries=2).should_retry(0)


def test_policy_failure_result_and_classify():
    policy = FaultPolicy(failure_objective=-1.0, failure_duration=3.0)
    result = policy.failure_result("boom")
    assert result.objective == -1.0 and result.duration == 3.0
    assert result.metadata["failed"] and result.metadata["error"] == "boom"
    assert policy.classify(EvaluationResult(float("nan"), 1.0)) is not None
    assert policy.classify(EvaluationResult(0.5, 1.0)) is None
    lax = FaultPolicy(reject_invalid=False)
    assert lax.classify(EvaluationResult(float("nan"), 1.0)) is None


# --------------------------------------------------------------------- #
# FaultInjector
# --------------------------------------------------------------------- #
def test_injector_validation():
    run = constant_run()
    with pytest.raises(ValueError):
        FaultInjector(run, crash_prob=1.5)
    with pytest.raises(ValueError):
        FaultInjector(run, crash_prob=0.6, hang_prob=0.6)
    with pytest.raises(ValueError):
        FaultInjector(run, hang_factor=0.5)


@pytest.mark.parametrize("seed", INJECTOR_SEEDS)
def test_injector_is_deterministic(seed):
    def outcomes(inj):
        out = []
        for _ in range(50):
            try:
                r = inj(None)
                if r.metadata.get("injected_hang"):
                    out.append("hang")
                elif r.metadata.get("injected_corruption"):
                    out.append("corrupt")
                else:
                    out.append("ok")
            except InjectedCrash:
                out.append("crash")
        return out

    make = lambda: FaultInjector(
        constant_run(), crash_prob=0.3, hang_prob=0.2, corrupt_prob=0.1, seed=seed
    )
    a, b = make(), make()
    assert outcomes(a) == outcomes(b)
    assert a.num_crashes == b.num_crashes > 0
    assert a.num_hangs == b.num_hangs
    assert a.num_corruptions == b.num_corruptions


def test_injector_fault_shapes():
    inj = FaultInjector(constant_run(duration=2.0), hang_prob=1.0, hang_factor=10.0)
    result = inj(None)
    assert result.duration == 20.0 and result.metadata["injected_hang"]

    inj = FaultInjector(constant_run(), corrupt_prob=1.0)
    result = inj(None)
    assert math.isnan(result.objective) and result.metadata["injected_corruption"]

    inj = FaultInjector(constant_run(), crash_prob=1.0)
    with pytest.raises(InjectedCrash):
        inj(None)


def test_injector_state_round_trips():
    inj = FaultInjector(constant_run(), crash_prob=0.5, seed=11)
    for _ in range(7):
        try:
            inj(None)
        except InjectedCrash:
            pass
    state = inj.getstate()
    fresh = FaultInjector(constant_run(), crash_prob=0.5, seed=11)
    fresh.setstate(state)
    follow = lambda i: ["crash" if _crashes(i) else "ok" for _ in range(20)]

    def _crashes(i):
        try:
            i(None)
            return False
        except InjectedCrash:
            return True

    assert follow(inj) == follow(fresh)


# --------------------------------------------------------------------- #
# SimulatedEvaluator under the policy
# --------------------------------------------------------------------- #
def drain(ev):
    done = []
    while True:
        batch = ev.gather()
        if not batch:
            return done
        done.extend(batch)


def fails_n_times(n, duration=1.0):
    """Per-config call counter: first ``n`` attempts raise, then succeed."""
    calls: dict = {}

    def run(config):
        calls[config] = calls.get(config, 0) + 1
        if calls[config] <= n:
            raise RuntimeError(f"transient fault #{calls[config]}")
        return EvaluationResult(objective=0.8, duration=duration)

    return run


def test_sim_retry_recovers_transient_fault():
    policy = FaultPolicy(on_error="retry", max_retries=2, failure_duration=0.5)
    ev = SimulatedEvaluator(fails_n_times(1), num_workers=1, fault_policy=policy)
    ev.submit(["a"])
    (job,) = drain(ev)
    assert job.state is JobState.DONE
    assert job.retries == 1
    assert job.result.objective == 0.8
    assert ev.num_failures == 1 and ev.num_retries == 1
    # Attempt 1 occupied the worker 0.5 min, attempt 2 ran 1.0 min.
    assert job.end_time == pytest.approx(1.5)


def test_sim_retry_backoff_delays_restart():
    policy = FaultPolicy(
        on_error="retry", max_retries=2, retry_backoff=2.0, failure_duration=0.5
    )
    ev = SimulatedEvaluator(fails_n_times(2), num_workers=1, fault_policy=policy)
    ev.submit(["a"])
    (job,) = drain(ev)
    assert job.state is JobState.DONE and job.retries == 2
    # fail@0.5, backoff 2 -> restart 2.5, fail@3.0, backoff 4 -> restart 7.0,
    # success 1.0 min -> end 8.0.
    assert job.end_time == pytest.approx(8.0)


def test_sim_retries_exhausted_penalizes():
    policy = FaultPolicy(
        on_error="retry", max_retries=2, failure_objective=-1.0, failure_duration=0.5
    )
    ev = SimulatedEvaluator(fails_n_times(10), num_workers=1, fault_policy=policy)
    ev.submit(["a"])
    (job,) = drain(ev)
    assert job.state is JobState.FAILED
    assert job.retries == 2
    assert job.result.objective == -1.0
    assert job.result.metadata["failed"]
    assert ev.num_failures == 3  # three failed attempts


def test_sim_timeout_reaps_straggler():
    policy = FaultPolicy(on_error="penalize", timeout=5.0)
    ev = SimulatedEvaluator(constant_run(duration=100.0), num_workers=1, fault_policy=policy)
    ev.submit(["a"])
    (job,) = drain(ev)
    assert job.state is JobState.FAILED
    assert "timeout" in job.result.metadata["error"]
    assert job.end_time == pytest.approx(5.0)  # reaped at the deadline, not at 100
    assert ev.num_timeouts == 1


def test_sim_corrupted_result_is_penalized():
    def run(config):
        return EvaluationResult(objective=float("nan"), duration=2.0)

    ev = SimulatedEvaluator(run, num_workers=1, on_error="penalize")
    ev.submit(["a"])
    (job,) = drain(ev)
    assert job.state is JobState.FAILED
    assert "invalid objective" in job.result.metadata["error"]
    assert math.isfinite(job.result.objective)


def test_sim_legacy_kwargs_still_override():
    ev = SimulatedEvaluator(
        constant_run(), num_workers=1, on_error="penalize", failure_objective=-2.0
    )
    assert ev.fault_policy.on_error == "penalize"
    assert ev.fault_policy.failure_objective == -2.0
    assert ev.on_error == "penalize" and ev.failure_objective == -2.0


# --------------------------------------------------------------------- #
# Simulated worker failures
# --------------------------------------------------------------------- #
def test_worker_failure_reschedules_in_flight_job():
    ev = SimulatedEvaluator(
        constant_run(duration=10.0), num_workers=2, worker_failures=[(5.0, 1)]
    )
    ev.submit([0.1, 0.2])
    done = drain(ev)
    assert len(done) == 2
    assert all(j.state is JobState.DONE for j in done)
    # The victim re-ran on worker 0 after its first job finished at t=10.
    assert sorted(j.end_time for j in done) == [10.0, 20.0]
    assert all(j.worker == 0 for j in done)
    assert ev.num_worker_failures == 1
    assert ev.num_alive_workers == 1


def test_worker_failure_of_idle_worker():
    ev = SimulatedEvaluator(
        constant_run(duration=2.0), num_workers=2, worker_failures=[(1.0, 1)]
    )
    ev.submit([0.1])
    done = drain(ev)
    assert len(done) == 1 and done[0].worker == 0
    assert ev.num_alive_workers == 1
    # The dead worker never restarts a queued job.
    ev.submit([0.2, 0.3])
    done = drain(ev)
    assert all(j.worker == 0 for j in done)


def test_worker_failure_utilization_uses_alive_capacity():
    # One worker, saturated, dies after its job completes: utilization
    # stays 1.0 because capacity stops accruing for dead workers.
    ev = SimulatedEvaluator(
        constant_run(duration=4.0), num_workers=2, worker_failures=[(4.0, 1)]
    )
    ev.submit([0.1, 0.2])
    drain(ev)
    assert ev.utilization() == pytest.approx(1.0)


def test_all_workers_dead_raises_deadlock():
    ev = SimulatedEvaluator(
        constant_run(duration=10.0), num_workers=1, worker_failures=[(5.0, 0)]
    )
    ev.submit([0.1])
    with pytest.raises(RuntimeError, match="dead"):
        drain(ev)


def test_worker_failure_unknown_worker_rejected():
    with pytest.raises(ValueError, match="unknown worker"):
        SimulatedEvaluator(constant_run(), num_workers=2, worker_failures=[(1.0, 7)])


# --------------------------------------------------------------------- #
# ThreadedEvaluator policy parity
# --------------------------------------------------------------------- #
def test_threaded_gather_returns_all_finished_jobs_regression():
    """A raising future must not swallow its finished siblings (the old
    gather() popped one future, raised, and left the rest in flight)."""

    def run(config):
        time.sleep(0.02)
        if config == "bad":
            raise RuntimeError("evaluation failed")
        return EvaluationResult(objective=1.0, duration=0.0)

    ev = ThreadedEvaluator(run, num_workers=3)
    try:
        ev.submit(["good1", "bad", "good2"])
        time.sleep(0.2)  # let all three finish before gathering
        with pytest.raises(RuntimeError, match="evaluation failed"):
            ev.gather()
        # Siblings were collected, finalized and buffered, not dropped.
        recovered = []
        while True:
            batch = ev.gather()
            if not batch:
                break
            recovered.extend(batch)
        assert sorted(j.config for j in recovered) == ["good1", "good2"]
        assert all(j.state is JobState.DONE for j in recovered)
        bad = next(j for j in ev.jobs if j.config == "bad")
        assert bad.state is JobState.FAILED
        assert ev.num_in_flight == 0
    finally:
        ev.shutdown()


def test_threaded_penalize_policy_parity():
    def run(config):
        if config == "bad":
            raise RuntimeError("boom")
        return EvaluationResult(objective=0.7, duration=0.0)

    ev = ThreadedEvaluator(
        run, num_workers=2, on_error="penalize", failure_objective=-1.0
    )
    try:
        ev.submit(["ok", "bad"])
        done = []
        while len(done) < 2:
            done.extend(ev.gather())
        bad = next(j for j in done if j.config == "bad")
        assert bad.state is JobState.FAILED
        assert bad.result.objective == -1.0
        assert bad.result.metadata["failed"]
        assert ev.num_failures == 1
    finally:
        ev.shutdown()


def test_threaded_retry_policy():
    calls = {"n": 0}

    def run(config):
        calls["n"] += 1
        if calls["n"] == 1:
            raise RuntimeError("transient")
        return EvaluationResult(objective=0.9, duration=0.0)

    ev = ThreadedEvaluator(
        run, num_workers=1, fault_policy=FaultPolicy(on_error="retry", max_retries=2)
    )
    try:
        ev.submit([0])
        (job,) = ev.gather()
        assert job.state is JobState.DONE
        assert job.retries == 1
        assert job.result.objective == 0.9
    finally:
        ev.shutdown()


def test_threaded_invalid_objective_penalized():
    def run(config):
        return EvaluationResult(objective=float("inf"), duration=0.0)

    ev = ThreadedEvaluator(run, num_workers=1, on_error="penalize")
    try:
        ev.submit([0])
        (job,) = ev.gather()
        assert job.state is JobState.FAILED
        assert "invalid objective" in job.result.metadata["error"]
    finally:
        ev.shutdown()


def test_threaded_timeout_abandons_straggler():
    def run(config):
        if config == "hang":
            time.sleep(5.0)
        return EvaluationResult(objective=0.5, duration=0.0)

    policy = FaultPolicy(on_error="penalize", timeout=0.25 / 60.0)  # 0.25 s
    ev = ThreadedEvaluator(run, num_workers=2, fault_policy=policy)
    try:
        ev.submit(["hang", "ok"])
        done = []
        t0 = time.perf_counter()
        while len(done) < 2:
            done.extend(ev.gather())
        assert time.perf_counter() - t0 < 3.0  # did not wait out the hang
        hang = next(j for j in done if j.config == "hang")
        assert hang.state is JobState.FAILED
        assert "timeout" in hang.result.metadata["error"]
        assert ev.num_timeouts == 1
    finally:
        ev._pool.shutdown(wait=False)


# --------------------------------------------------------------------- #
# Acceptance scenario: a faulty 64-evaluation AgEBO campaign completes
# --------------------------------------------------------------------- #
def _bench_eval(config):
    """Deterministic, instant stand-in for ModelEvaluation."""
    h = (int(np.sum(config.arch * np.arange(1, config.arch.size + 1))) * 2654435761) % 1009
    objective = 0.4 + 0.5 * (h / 1009.0)
    duration = 4.0 + (h % 11)
    return EvaluationResult(objective=objective, duration=duration, metadata={"h": h})


@pytest.mark.parametrize("seed", INJECTOR_SEEDS)
def test_faulty_agebo_campaign_completes(seed):
    space = ArchitectureSpace(num_nodes=3)
    hp_space = default_dataparallel_space(max_ranks=4)
    injector = FaultInjector(
        _bench_eval, crash_prob=0.2, hang_prob=0.1, hang_factor=50.0, seed=seed
    )
    policy = FaultPolicy(
        on_error="retry", max_retries=2, retry_backoff=1.0, timeout=30.0,
        failure_duration=1.0,
    )
    evaluator = SimulatedEvaluator(injector, num_workers=8, fault_policy=policy)
    search = AgEBO(
        space, hp_space, evaluator,
        population_size=10, sample_size=3, n_initial_points=5, seed=seed,
    )
    history = search.search(max_evaluations=64)
    assert len(history) >= 64  # full-length history despite injected faults
    assert evaluator.utilization() > 0.5
    assert injector.num_crashes + injector.num_hangs > 0  # faults actually fired
    # Penalized records (if any) never win the campaign.
    assert history.best().objective > 0.0
