"""The four OpenML-analogue benchmarks (paper §IV).

Each spec matches the real data set's shape (features, classes) and carries
its *nominal* (paper-scale) row counts, which drive the simulated-cluster
training-time model; the actual arrays are generated at a reduced ``size``
so real training fits this machine.  Difficulty parameters are calibrated
so a well-tuned searched network approaches the paper's validation accuracy
(Covertype ≈0.93, Airlines ≈0.65, Albert ≈0.66, Dionis ≈0.90).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.datasets.preprocessing import Standardizer
from repro.datasets.splits import PAPER_FRACTIONS, train_valid_test_split
from repro.datasets.synthetic import make_tabular_classification

__all__ = ["TabularDataset", "DATASET_SPECS", "dataset_names", "load_dataset"]


@dataclass(frozen=True)
class _DatasetSpec:
    """Static description of one benchmark."""

    name: str
    n_features: int
    n_classes: int
    nominal_rows: int  # paper-scale total rows (drives the cost model)
    generator_params: dict[str, Any] = field(default_factory=dict)
    default_size: int = 8000
    seed: int = 0


#: Shapes and nominal sizes from paper §IV; difficulty params calibrated here.
DATASET_SPECS: dict[str, _DatasetSpec] = {
    "covertype": _DatasetSpec(
        name="covertype",
        n_features=54,
        n_classes=7,
        nominal_rows=581_012,
        generator_params=dict(
            latent_dim=10,
            class_sep=1.5,
            within_class_scale=1.0,
            mixing_depth=2,
            label_noise=0.04,
            class_imbalance=0.25,
        ),
        default_size=8000,
        seed=1401,
    ),
    "airlines": _DatasetSpec(
        name="airlines",
        n_features=8,
        n_classes=2,
        nominal_rows=539_383,
        generator_params=dict(
            latent_dim=6,
            class_sep=0.55,
            within_class_scale=1.0,
            mixing_depth=2,
            label_noise=0.45,
            class_imbalance=0.1,
        ),
        default_size=8000,
        seed=1402,
    ),
    "albert": _DatasetSpec(
        name="albert",
        n_features=78,
        n_classes=2,
        nominal_rows=425_240,
        generator_params=dict(
            latent_dim=12,
            class_sep=0.6,
            within_class_scale=1.0,
            mixing_depth=2,
            label_noise=0.55,
            class_imbalance=0.0,
        ),
        default_size=8000,
        seed=1403,
    ),
    "dionis": _DatasetSpec(
        name="dionis",
        n_features=61,
        n_classes=355,
        nominal_rows=416_188,
        generator_params=dict(
            latent_dim=24,
            class_sep=2.5,
            within_class_scale=1.0,
            mixing_depth=1,
            label_noise=0.06,
            class_imbalance=0.0,
        ),
        default_size=16000,
        seed=1404,
    ),
}


@dataclass
class TabularDataset:
    """A loaded benchmark with standardized features and paper splits."""

    name: str
    X_train: np.ndarray
    y_train: np.ndarray
    X_valid: np.ndarray
    y_valid: np.ndarray
    X_test: np.ndarray
    y_test: np.ndarray
    n_features: int
    n_classes: int
    nominal_train_size: int  # paper-scale training rows for the cost model

    @property
    def train_size(self) -> int:
        return self.X_train.shape[0]

    def summary(self) -> str:
        return (
            f"{self.name}: {self.train_size} train / {self.X_valid.shape[0]} valid / "
            f"{self.X_test.shape[0]} test rows, {self.n_features} features, "
            f"{self.n_classes} classes (nominal train {self.nominal_train_size:,})"
        )


def dataset_names() -> list[str]:
    """Names of the four benchmarks, in the paper's order."""
    return list(DATASET_SPECS)


def load_dataset(name: str, size: int | None = None, seed: int | None = None) -> TabularDataset:
    """Generate, split (42/25/33) and standardize one benchmark.

    Parameters
    ----------
    name:
        One of :func:`dataset_names`.
    size:
        Total row count to generate (default: the spec's reduced size).
        The *nominal* paper-scale size is independent of this and always
        drives the simulated training-time model.
    seed:
        Overrides the spec's fixed seed (e.g. for repetition studies).
    """
    try:
        spec = DATASET_SPECS[name]
    except KeyError:
        raise KeyError(f"unknown dataset {name!r}; expected one of {dataset_names()}") from None
    n = size if size is not None else spec.default_size
    if n < 10 * spec.n_classes and name != "dionis":
        raise ValueError(f"size {n} too small for {spec.n_classes} classes")
    rng = np.random.default_rng(spec.seed if seed is None else seed)
    X, y = make_tabular_classification(
        n_samples=n,
        n_features=spec.n_features,
        n_classes=spec.n_classes,
        rng=rng,
        **spec.generator_params,
    )
    X_tr, y_tr, X_va, y_va, X_te, y_te = train_valid_test_split(X, y, rng)
    scaler = Standardizer().fit(X_tr)
    return TabularDataset(
        name=spec.name,
        X_train=scaler.transform(X_tr),
        y_train=y_tr,
        X_valid=scaler.transform(X_va),
        y_valid=y_va,
        X_test=scaler.transform(X_te),
        y_test=y_te,
        n_features=spec.n_features,
        n_classes=spec.n_classes,
        nominal_train_size=int(round(PAPER_FRACTIONS[0] * spec.nominal_rows)),
    )
