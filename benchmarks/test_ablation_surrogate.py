"""Ablation (beyond the paper): BO surrogate model.

Compares the paper's random-forest surrogate against a k-nearest-neighbour
surrogate and pure random hyperparameter sampling inside AgEBO.
Expectation: any model-based surrogate beats random sampling of H_m; the
forest is the strongest (it handles the mixed categorical/log-real space).
"""

from __future__ import annotations

from common import format_table, report
from repro.core import AgEBO, ModelEvaluation
from repro.searchspace import default_dataparallel_space
from repro.workflow import SimulatedEvaluator

import common

SURROGATES = ("forest", "knn", "random")


def run_experiment():
    scale = common.get_scale()
    ds = common.get_dataset("covertype")
    space = common.get_search_space()
    out = {}
    for surrogate in SURROGATES:
        run_fn = ModelEvaluation(
            ds, space, epochs=scale.epochs, warmup_epochs=scale.warmup_epochs,
            nominal_epochs=20,
        )
        evaluator = SimulatedEvaluator(run_fn, num_workers=scale.num_workers)
        search = AgEBO(
            space,
            default_dataparallel_space(),
            evaluator,
            population_size=scale.population_size,
            sample_size=scale.sample_size,
            seed=0,
            surrogate=surrogate,
            label=f"AgEBO[{surrogate}]",
        )
        history = search.search(
            max_evaluations=scale.max_evaluations, wall_time_minutes=scale.wall_minutes
        )
        top10 = history.top_k(min(10, len(history)))
        out[surrogate] = {
            "best": history.best().objective,
            "top10_mean": sum(r.objective for r in top10) / len(top10),
            "n_evals": len(history),
        }
    return out


def test_ablation_surrogate(benchmark):
    out = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = [
        [s, r["n_evals"], round(r["top10_mean"], 4), round(r["best"], 4)]
        for s, r in out.items()
    ]
    report(
        "ablation_surrogate",
        format_table(
            "Ablation — BO surrogate model (AgEBO, Covertype)",
            ["surrogate", "evals", "top-10 mean val acc", "best val acc"],
            rows,
        ),
    )
    # Model-based hyperparameter selection concentrates evaluations on good
    # configurations: its top-10 mean should not trail random sampling.
    assert out["forest"]["top10_mean"] >= out["random"]["top10_mean"] - 0.01
