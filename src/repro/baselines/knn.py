"""Brute-force k-nearest-neighbours classifier.

Distances are computed blockwise with the expanded-norm identity
``||a-b||² = ||a||² - 2a·b + ||b||²`` (one GEMM per block), bounding peak
memory while staying fully vectorized.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaseClassifier, check_Xy

__all__ = ["KNeighborsClassifier"]


class KNeighborsClassifier(BaseClassifier):
    """Majority-vote KNN with inverse-rank weighting disabled (uniform)."""

    def __init__(self, n_classes: int, k: int = 15, block_size: int = 1024) -> None:
        super().__init__(n_classes)
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self.block_size = block_size
        self._X: np.ndarray | None = None
        self._y: np.ndarray | None = None
        self._norms: np.ndarray | None = None

    def fit(self, X: np.ndarray, y: np.ndarray, rng: np.random.Generator) -> "KNeighborsClassifier":
        X, y = check_Xy(X, y)
        self._X = X
        self._y = y
        self._norms = (X * X).sum(axis=1)
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if self._X is None:
            raise RuntimeError("KNN is not fitted")
        X = np.asarray(X, dtype=float)
        k = min(self.k, self._X.shape[0])
        out = np.zeros((X.shape[0], self.n_classes))
        for start in range(0, X.shape[0], self.block_size):
            block = X[start : start + self.block_size]
            d2 = (
                (block * block).sum(axis=1)[:, None]
                - 2.0 * block @ self._X.T
                + self._norms[None, :]
            )
            nn = np.argpartition(d2, kth=k - 1, axis=1)[:, :k]
            votes = self._y[nn]  # (b, k)
            for c in range(self.n_classes):
                out[start : start + block.shape[0], c] = (votes == c).mean(axis=1)
        return out
