"""Perf bench: vectorized forest surrogate vs its reference paths.

Times forest ``fit`` (presorted split-search caches vs per-node argsort),
ensemble ``predict`` (single batched level-walk over all trees ×
candidates vs the per-row recursive reference) and the BO ``ask`` hot
path under fixed seeds, writing before/after medians to
``BENCH_surrogate.json`` at the repo root.

Timings are recorded, never asserted.  The bench fails only on the
equivalence gates: presort on/off must grow identical trees, and the
batched predict must match the recursive reference bit for bit.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.bo import BayesianOptimizer
from repro.bo.forest import RandomForestRegressor, RegressionTree
from repro.perf import BenchEntry, median_time, write_bench_json
from repro.searchspace import default_dataparallel_space

REPO_ROOT = Path(__file__).resolve().parent.parent
N_TREES = 25
N_CANDIDATES = 1024
N_OBSERVATIONS = 200
N_FEATURES = 3  # the paper's data-parallel hp space: lr, batch size, ranks


def _training_data(seed: int = 0):
    rng = np.random.default_rng(seed)
    X = rng.standard_normal((N_OBSERVATIONS, N_FEATURES))
    y = np.sin(X[:, 0]) + X[:, 1] ** 2 + 0.1 * rng.standard_normal(N_OBSERVATIONS)
    return X, y


def test_perf_forest_and_ask():
    X, y = _training_data()
    Xq = np.random.default_rng(1).standard_normal((N_CANDIDATES, N_FEATURES))

    # --- equivalence gates (the only assertions in this bench) --------- #
    tree_fast = RegressionTree(max_depth=10, presort=True).fit(X, y, np.random.default_rng(2))
    tree_ref = RegressionTree(max_depth=10, presort=False).fit(X, y, np.random.default_rng(2))
    assert np.array_equal(tree_fast.feature_, tree_ref.feature_)
    assert np.array_equal(tree_fast.threshold_, tree_ref.threshold_)
    assert np.array_equal(tree_fast.value_, tree_ref.value_)

    forest = RandomForestRegressor(n_trees=N_TREES, max_depth=10).fit(
        X, y, np.random.default_rng(3)
    )
    mu, sigma = forest.predict(Xq)
    mu_ref, sigma_ref = forest.predict_reference(Xq)
    assert np.array_equal(mu, mu_ref) and np.array_equal(sigma, sigma_ref)

    # --- forest fit: presorted caches vs per-node argsort -------------- #
    def fit_forest(presort: bool):
        RandomForestRegressor(n_trees=N_TREES, max_depth=10, presort=presort).fit(
            X, y, np.random.default_rng(3)
        )

    entries = [
        BenchEntry(
            "forest_fit",
            median_time(lambda: fit_forest(False)),
            median_time(lambda: fit_forest(True)),
            meta={"n_trees": N_TREES, "rows": N_OBSERVATIONS},
        )
    ]

    # --- forest predict: recursive reference vs batched level-walk ----- #
    entries.append(
        BenchEntry(
            "forest_predict",
            median_time(lambda: forest.predict_reference(Xq), repeats=3),
            median_time(lambda: forest.predict(Xq)),
            meta={"n_trees": N_TREES, "candidates": N_CANDIDATES},
        )
    )

    # --- BO ask under a fixed seed (refit-per-lie, pool of 500) -------- #
    space = default_dataparallel_space()
    cfg_rng = np.random.default_rng(4)
    configs = [space.sample(cfg_rng) for _ in range(20)]
    values = list(np.random.default_rng(5).random(20))

    def ask_batch(presort: bool):
        opt = BayesianOptimizer(
            space,
            seed=6,
            forest=RandomForestRegressor(n_trees=N_TREES, max_depth=10, presort=presort),
        )
        opt.tell(configs, values)
        opt.ask(4)

    entries.append(
        BenchEntry(
            "bo_ask_batch4",
            median_time(lambda: ask_batch(False), repeats=3),
            median_time(lambda: ask_batch(True), repeats=3),
            meta={"observations": 20, "batch": 4, "pool": 500},
        )
    )

    out = write_bench_json(REPO_ROOT / "BENCH_surrogate.json", "surrogate", entries)
    for e in entries:
        print(f"{e.name}: ref {e.reference_s * 1e3:.2f} ms -> "
              f"opt {e.optimized_s * 1e3:.2f} ms ({e.speedup:.1f}x)")
    print(f"written: {out}")


if __name__ == "__main__":
    pytest.main([__file__, "-s"])
