"""Unit and integration tests for AgE / AgEBO (Algorithm 1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import AgE, AgEBO, ModelEvaluation, make_age_variant, make_agebo_variant
from repro.core.variants import AGEBO_VARIANTS
from repro.searchspace import ArchitectureSpace, default_dataparallel_space
from repro.workflow import EvaluationResult, SimulatedEvaluator


# --------------------------------------------------------------------- #
# Synthetic objective: score architectures without real training so the
# search mechanics can be tested quickly and exactly.
# --------------------------------------------------------------------- #
def synthetic_run(space, hp_optimum=None):
    """Objective = fraction of relu ops + optional hyperparameter bonus."""

    def run(config):
        ops = config.arch[: space.num_nodes]
        score = float(
            np.mean([space.op_from_index(int(i)).activation == "relu" for i in ops])
        )
        duration = 10.0 / config.hyperparameters.get("num_ranks", 1)
        if hp_optimum is not None:
            lr = config.hyperparameters["learning_rate"]
            score -= 0.3 * abs(np.log10(lr) - np.log10(hp_optimum))
        return EvaluationResult(objective=score, duration=duration)

    return run


@pytest.fixture
def space():
    return ArchitectureSpace(num_nodes=5)


def run_age(space, max_evals=60, **kwargs):
    ev = SimulatedEvaluator(synthetic_run(space), num_workers=4)
    search = AgE(space, ev, population_size=8, sample_size=3, seed=0, **kwargs)
    return search, search.search(max_evaluations=max_evals)


# --------------------------------------------------------------------- #
# AgE mechanics
# --------------------------------------------------------------------- #
def test_age_runs_to_evaluation_budget(space):
    _, hist = run_age(space, max_evals=30)
    assert len(hist) >= 30


def test_age_improves_over_random(space):
    search, hist = run_age(space, max_evals=120)
    first20 = hist.objectives()[:20].mean()
    last20 = hist.objectives()[-20:].mean()
    assert last20 > first20  # evolution exploits the relu signal


def test_age_population_bounded(space):
    search, _ = run_age(space, max_evals=50)
    assert len(search.population) <= search.population_size


def test_age_population_is_fifo_aging(space):
    """The population evicts its oldest member, not its worst."""
    search, hist = run_age(space, max_evals=60)
    # Population must equal the most recent P completions.
    recent = hist.records[-len(search.population):]
    assert [r.end_time for r in search.population] == [r.end_time for r in recent]


def test_age_fixed_hyperparameters_everywhere(space):
    search, hist = run_age(space, max_evals=40)
    for r in hist:
        assert r.config.hyperparameters == search.hyperparameters


def test_age_respects_wall_time_budget(space):
    ev = SimulatedEvaluator(synthetic_run(space), num_workers=4)
    search = AgE(space, ev, population_size=8, sample_size=3, seed=0)
    search.search(wall_time_minutes=55.0)
    assert ev.now >= 55.0
    # Each eval is 10 sim-minutes on 4 workers; the clock should not
    # massively overshoot the budget.
    assert ev.now <= 75.0


def test_age_deterministic(space):
    _, a = run_age(space, max_evals=40)
    _, b = run_age(space, max_evals=40)
    np.testing.assert_array_equal(a.objectives(), b.objectives())


def test_age_children_are_mutations_of_population(space):
    search, hist = run_age(space, max_evals=80)
    # After the population fills, every new arch differs from some
    # population member in exactly one variable.
    pop_full_at = search.population_size + search.num_workers
    candidates = hist.records[pop_full_at + search.num_workers :]
    assert candidates, "test needs evaluations after the population filled"


def test_search_requires_some_budget(space):
    ev = SimulatedEvaluator(synthetic_run(space), num_workers=2)
    search = AgE(space, ev, population_size=4, sample_size=2)
    with pytest.raises(ValueError):
        search.search()


def test_base_class_validation(space):
    ev = SimulatedEvaluator(synthetic_run(space), num_workers=2)
    with pytest.raises(ValueError):
        AgE(space, ev, population_size=1)
    with pytest.raises(ValueError):
        AgE(space, ev, population_size=4, sample_size=9)


# --------------------------------------------------------------------- #
# AgEBO mechanics
# --------------------------------------------------------------------- #
def test_agebo_tunes_hyperparameters_toward_optimum(space):
    ev = SimulatedEvaluator(synthetic_run(space, hp_optimum=0.005), num_workers=4)
    hp_space = default_dataparallel_space()
    search = AgEBO(
        space, hp_space, ev, population_size=8, sample_size=3, n_initial_points=8, seed=0
    )
    hist = search.search(max_evaluations=150)
    top = hist.top_k(10)
    lrs = np.array([r.config.learning_rate for r in top])
    # Optimum is lr = 0.005; top models should cluster near it in log space.
    assert np.median(np.abs(np.log10(lrs) - np.log10(0.005))) < 0.5


def test_agebo_hyperparameters_vary_in_initial_phase(space):
    ev = SimulatedEvaluator(synthetic_run(space), num_workers=6)
    search = AgEBO(
        space, default_dataparallel_space(), ev, population_size=8, sample_size=3, seed=1
    )
    hist = search.search(max_evaluations=20)
    ranks = {r.config.num_ranks for r in hist}
    assert len(ranks) > 1  # random H_m exploration happened


def test_agebo_label(space):
    ev = SimulatedEvaluator(synthetic_run(space), num_workers=2)
    search = AgEBO(space, default_dataparallel_space(), ev, population_size=4, sample_size=2)
    assert search.history.label == "AgEBO"


# --------------------------------------------------------------------- #
# Variant factories
# --------------------------------------------------------------------- #
def test_make_age_variant_label_and_defaults(space):
    ev = SimulatedEvaluator(synthetic_run(space), num_workers=2)
    search = make_age_variant(space, ev, num_ranks=4, population_size=4, sample_size=2)
    assert search.history.label == "AgE-4"
    assert search.hyperparameters["num_ranks"] == 4
    assert search.hyperparameters["batch_size"] == 256


@pytest.mark.parametrize("variant", AGEBO_VARIANTS)
def test_make_agebo_variants(space, variant):
    ev = SimulatedEvaluator(synthetic_run(space), num_workers=2)
    search = make_agebo_variant(variant, space, ev, population_size=4, sample_size=2)
    assert search.history.label == variant
    tuned = set(search.hp_space.names)
    if variant == "AgEBO":
        assert tuned == {"batch_size", "learning_rate", "num_ranks"}
    elif variant == "AgEBO-8-LR":
        assert tuned == {"learning_rate"}
        assert search.hp_space.defaults["num_ranks"] == 8
    else:
        assert tuned == {"batch_size", "learning_rate"}
        assert search.hp_space.defaults["num_ranks"] == 8


def test_make_agebo_unknown_variant(space):
    ev = SimulatedEvaluator(synthetic_run(space), num_workers=2)
    with pytest.raises(ValueError):
        make_agebo_variant("AgEBO-16", space, ev)
