"""Tests for top-k gradient compression with error feedback."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataparallel.compression import (
    TopKCompressor,
    compressed_allreduce_mean,
    compressed_transfer_bytes,
)


def test_compressor_keeps_largest_entries(rng):
    comp = TopKCompressor(ratio=0.2)
    g = np.array([[0.1, -5.0, 0.2], [3.0, 0.05, -0.3]])
    (idx, values, shape) = comp.compress([g])[0]
    assert shape == (2, 3)
    assert len(idx) == 1  # 20% of 6 entries rounds to 1
    assert abs(values[0]) == 5.0  # the largest magnitude


def test_compressor_full_ratio_is_lossless(rng):
    comp = TopKCompressor(ratio=1.0)
    g = rng.normal(size=(4, 3))
    (idx, values, shape) = comp.compress([g])[0]
    dense = np.zeros(12)
    dense[idx] = values
    np.testing.assert_allclose(dense.reshape(shape), g)


def test_error_feedback_accumulates_dropped_mass(rng):
    comp = TopKCompressor(ratio=0.25)
    g = np.array([10.0, 1.0, 1.0, 1.0])
    first = comp.compress([g])[0]
    assert first[0].tolist() == [0]  # only the big entry shipped
    # Next round with zero new gradient: residual (three 1.0s) resurfaces.
    second = comp.compress([np.zeros(4)])[0]
    assert second[1][0] == 1.0
    assert second[0][0] != 0


def test_error_feedback_total_mass_conserved(rng):
    """Shipped values + residual always equals the accumulated gradient."""
    comp = TopKCompressor(ratio=0.3)
    total = np.zeros(10)
    shipped = np.zeros(10)
    for step in range(5):
        g = rng.normal(size=10)
        total += g
        idx, values, _ = comp.compress([g])[0]
        np.add.at(shipped, idx, values)
    np.testing.assert_allclose(shipped + comp._residuals[0], total, atol=1e-12)


def test_compressed_allreduce_mean_matches_dense_at_full_ratio(rng):
    grads = [[rng.normal(size=(3, 2)), rng.normal(size=(4,))] for _ in range(3)]
    compressors = [TopKCompressor(1.0) for _ in range(3)]
    compressed = [c.compress(g) for c, g in zip(compressors, grads)]
    mean = compressed_allreduce_mean(compressed)
    from repro.dataparallel import allreduce_mean

    dense = allreduce_mean(grads)
    for a, b in zip(mean, dense):
        np.testing.assert_allclose(a, b, rtol=1e-12)


def test_compressed_allreduce_shape_checks(rng):
    a = TopKCompressor(1.0).compress([np.zeros((2, 2))])
    b = TopKCompressor(1.0).compress([np.zeros((2, 3))])
    with pytest.raises(ValueError):
        compressed_allreduce_mean([a, b])
    with pytest.raises(ValueError):
        compressed_allreduce_mean([])


def test_transfer_bytes_scale_with_ratio():
    dense_equiv = compressed_transfer_bytes(100_000, 8, 1.0)
    sparse = compressed_transfer_bytes(100_000, 8, 0.01)
    assert sparse < dense_equiv / 50
    assert compressed_transfer_bytes(100_000, 1, 0.01) == 0


def test_compressor_structure_change_rejected(rng):
    comp = TopKCompressor(0.5)
    comp.compress([np.zeros(4)])
    with pytest.raises(ValueError):
        comp.compress([np.zeros(4), np.zeros(2)])
    comp.reset()
    comp.compress([np.zeros(4), np.zeros(2)])  # fine after reset


def test_compressor_validation():
    with pytest.raises(ValueError):
        TopKCompressor(0.0)
    with pytest.raises(ValueError):
        TopKCompressor(1.5)


@given(ratio=st.floats(0.05, 1.0), seed=st.integers(0, 100))
@settings(max_examples=30, deadline=None)
def test_compression_sgd_still_converges(ratio, seed):
    """Property: top-k + error feedback optimizes a quadratic like dense GD."""
    rng = np.random.default_rng(seed)
    target = rng.normal(size=8)
    w = np.zeros(8)
    comp = TopKCompressor(ratio)
    for _ in range(400):
        g = 2.0 * (w - target)
        idx, values, shape = comp.compress([g])[0]
        sparse_g = np.zeros(8)
        sparse_g[idx] = values
        w -= 0.05 * sparse_g
    assert np.linalg.norm(w - target) < 0.15
