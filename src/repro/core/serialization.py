"""Persistence for search campaigns and trained models.

A 3-hour 129-node campaign must be inspectable offline and resumable; this
module serializes :class:`SearchHistory` to JSON (architecture vectors,
hyperparameters, objectives, cluster timings, scalar metadata) and model
weights to ``.npz``.  Loaded histories feed the same analysis tools as live
ones, and their records can warm-start a new search's population and BO.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

import numpy as np

from repro.core.config import ModelConfig
from repro.core.results import EvaluationRecord, SearchHistory
from repro.nn.graph_network import GraphNetwork

__all__ = [
    "history_to_dict",
    "history_from_dict",
    "save_history",
    "load_history",
    "save_model_weights",
    "load_model_weights",
]

_FORMAT_VERSION = 1


def _scalar_metadata(metadata: dict[str, Any]) -> dict[str, Any]:
    out = {}
    for key, value in metadata.items():
        if isinstance(value, (bool, int, float, str)):
            out[key] = value
        elif isinstance(value, (np.integer, np.floating)):
            out[key] = value.item()
    return out


def history_to_dict(history: SearchHistory) -> dict[str, Any]:
    """JSON-safe representation of a history (scalar metadata only)."""
    return {
        "version": _FORMAT_VERSION,
        "label": history.label,
        "records": [
            {
                "arch": record.config.arch.tolist(),
                "hyperparameters": record.config.hyperparameters,
                "objective": record.objective,
                "duration": record.duration,
                "submit_time": record.submit_time,
                "start_time": record.start_time,
                "end_time": record.end_time,
                "metadata": _scalar_metadata(record.metadata),
            }
            for record in history.records
        ],
    }


def history_from_dict(data: dict[str, Any]) -> SearchHistory:
    """Inverse of :func:`history_to_dict`."""
    if data.get("version") != _FORMAT_VERSION:
        raise ValueError(f"unsupported history format version {data.get('version')!r}")
    history = SearchHistory(label=data.get("label", ""))
    for row in data["records"]:
        history.add(
            EvaluationRecord(
                config=ModelConfig(
                    arch=np.asarray(row["arch"], dtype=np.int64),
                    hyperparameters=dict(row["hyperparameters"]),
                ),
                objective=float(row["objective"]),
                duration=float(row["duration"]),
                submit_time=float(row["submit_time"]),
                start_time=float(row["start_time"]),
                end_time=float(row["end_time"]),
                metadata=dict(row.get("metadata", {})),
            )
        )
    return history


def save_history(history: SearchHistory, path: str | Path) -> Path:
    """Write a history to a JSON file; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(history_to_dict(history), indent=1))
    return path


def load_history(path: str | Path) -> SearchHistory:
    """Read a history saved by :func:`save_history`."""
    return history_from_dict(json.loads(Path(path).read_text()))


def save_model_weights(model: GraphNetwork, path: str | Path) -> Path:
    """Write a network's parameters to ``.npz`` (ordered as parameters())."""
    path = Path(path)
    arrays = {f"param_{i}": w for i, w in enumerate(model.get_weights())}
    np.savez(path, **arrays)
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_model_weights(model: GraphNetwork, path: str | Path) -> GraphNetwork:
    """Load ``.npz`` weights into a structurally identical network."""
    with np.load(Path(path)) as data:
        weights = [data[f"param_{i}"] for i in range(len(data.files))]
    model.set_weights(weights)
    return model
