"""Figure 4: AgEBO ablation variants vs AgE-8 on Covertype.

Paper: AgEBO > AgEBO-8-LR-BS > AgEBO-8-LR > AgE-8 in both final accuracy
and time-to-accuracy; tuning more of (lr, bs, n) helps monotonically.
"""

from __future__ import annotations

import numpy as np

from common import format_table, get_scale, report, run_search
from repro.analysis import curve_on_grid, time_to_accuracy

VARIANTS = ["AgE-8", "AgEBO-8-LR", "AgEBO-8-LR-BS", "AgEBO"]


def run_one(variant: str):
    if variant == "AgE-8":
        return run_search("covertype", "AgE", num_ranks=8, seed=0)
    return run_search("covertype", variant, seed=0)


def run_experiment():
    scale = get_scale()
    grid = np.linspace(scale.wall_minutes / 6, scale.wall_minutes, 6)
    out = {}
    for variant in VARIANTS:
        history, _ = run_one(variant)
        out[variant] = {
            "curve": curve_on_grid(history, grid),
            "best": history.best().objective,
            "n_evals": len(history),
        }
    return grid, out


def test_fig4_agebo_variants(benchmark):
    grid, out = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = []
    for variant in VARIANTS:
        curve = out[variant]["curve"]
        rows.append(
            [variant, out[variant]["n_evals"], round(out[variant]["best"], 4)]
            + [("-" if np.isnan(v) else round(float(v), 4)) for v in curve]
        )
    report(
        "fig4_agebo_variants",
        format_table(
            "Fig. 4 — AgEBO variants vs AgE-8 (Covertype)",
            ["variant", "evals", "best"] + [f"t={t:.0f}m" for t in grid],
            rows,
        ),
    )
    # Headline ordering: full AgEBO beats the static-HP baseline AgE-8.
    assert out["AgEBO"]["best"] > out["AgE-8"]["best"]
    # Tuning lr already helps over static (paper's first comparison).
    assert out["AgEBO-8-LR"]["best"] >= out["AgE-8"]["best"] - 1e-9
    # Full AgEBO is competitive with the restricted variants (paper: it
    # strictly leads; at bench scale the n-exploration overhead makes the
    # AgEBO vs AgEBO-8-LR-BS gap noise-level, while both clearly beat the
    # lr-only and static settings).
    assert out["AgEBO"]["best"] >= max(
        out["AgEBO-8-LR"]["best"], out["AgEBO-8-LR-BS"]["best"]
    ) - 0.01
