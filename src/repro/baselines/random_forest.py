"""Random forest and extra-trees classifiers (bagged CARTs)."""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaseClassifier, check_Xy
from repro.baselines.trees import ClassificationTree

__all__ = ["RandomForestClassifier", "ExtraTreesClassifier"]


class RandomForestClassifier(BaseClassifier):
    """Bootstrap-aggregated Gini trees with √d feature subsampling."""

    _random_thresholds = False
    _bootstrap = True

    def __init__(
        self,
        n_classes: int,
        n_trees: int = 100,
        max_depth: int = 14,
        min_samples_leaf: int = 1,
        max_features: int | None = None,
    ) -> None:
        super().__init__(n_classes)
        if n_trees < 1:
            raise ValueError("n_trees must be >= 1")
        self.n_trees = n_trees
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self._trees: list[ClassificationTree] = []

    def fit(self, X: np.ndarray, y: np.ndarray, rng: np.random.Generator) -> "RandomForestClassifier":
        X, y = check_Xy(X, y)
        n, d = X.shape
        max_features = self.max_features or max(1, int(np.sqrt(d)))
        self._trees = []
        for _ in range(self.n_trees):
            tree = ClassificationTree(
                self.n_classes,
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=max_features,
                random_thresholds=self._random_thresholds,
            )
            if self._bootstrap:
                sample = rng.integers(0, n, size=n)
                tree.fit(X[sample], y[sample], rng)
            else:
                tree.fit(X, y, rng)
            self._trees.append(tree)
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if not self._trees:
            raise RuntimeError("forest is not fitted")
        proba = self._trees[0].predict_proba(X)
        for tree in self._trees[1:]:
            proba += tree.predict_proba(X)
        return proba / len(self._trees)


class ExtraTreesClassifier(RandomForestClassifier):
    """Extremely randomized trees: no bootstrap, random split thresholds."""

    _random_thresholds = True
    _bootstrap = False
