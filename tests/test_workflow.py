"""Unit tests for the event queue, job records and evaluators."""

from __future__ import annotations

import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workflow import (
    EvaluationResult,
    EventQueue,
    Job,
    JobState,
    SimulatedEvaluator,
    ThreadedEvaluator,
)


# --------------------------------------------------------------------- #
# EventQueue
# --------------------------------------------------------------------- #
def test_event_queue_orders_by_time():
    q = EventQueue()
    q.push(3.0, "c")
    q.push(1.0, "a")
    q.push(2.0, "b")
    assert [q.pop()[1] for _ in range(3)] == ["a", "b", "c"]


def test_event_queue_fifo_ties():
    q = EventQueue()
    q.push(1.0, "first")
    q.push(1.0, "second")
    assert q.pop()[1] == "first"
    assert q.pop()[1] == "second"


def test_event_queue_drain_until():
    q = EventQueue()
    for t in (0.5, 1.0, 1.5, 2.0):
        q.push(t, t)
    drained = list(q.drain_until(1.5))
    assert [t for t, _ in drained] == [0.5, 1.0, 1.5]
    assert len(q) == 1


def test_event_queue_errors():
    q = EventQueue()
    with pytest.raises(IndexError):
        q.pop()
    with pytest.raises(IndexError):
        q.peek_time()
    with pytest.raises(ValueError):
        q.push(-1.0, "x")


@given(st.lists(st.floats(0, 100), min_size=1, max_size=30))
@settings(max_examples=50, deadline=None)
def test_event_queue_pop_order_property(times):
    q = EventQueue()
    for t in times:
        q.push(t, t)
    popped = [q.pop()[0] for _ in range(len(times))]
    assert popped == sorted(popped)


# --------------------------------------------------------------------- #
# Jobs
# --------------------------------------------------------------------- #
def test_evaluation_result_rejects_negative_duration():
    with pytest.raises(ValueError):
        EvaluationResult(objective=0.5, duration=-1.0)


def test_job_objective_requires_result():
    job = Job(job_id=0, config=None)
    with pytest.raises(RuntimeError):
        _ = job.objective
    job.result = EvaluationResult(0.7, 1.0)
    assert job.objective == 0.7


# --------------------------------------------------------------------- #
# SimulatedEvaluator
# --------------------------------------------------------------------- #
def constant_run(duration):
    def run(config):
        return EvaluationResult(objective=float(config), duration=duration)

    return run


def test_sim_clock_advances_to_completions():
    ev = SimulatedEvaluator(constant_run(5.0), num_workers=2)
    ev.submit([0.1, 0.2])
    done = ev.gather()
    assert ev.now == 5.0
    assert len(done) == 2  # both end at the same instant


def test_sim_staggered_durations():
    def run(config):
        return EvaluationResult(objective=config, duration=config)

    ev = SimulatedEvaluator(run, num_workers=2)
    ev.submit([3.0, 7.0])
    first = ev.gather()
    assert [j.config for j in first] == [3.0]
    assert ev.now == 3.0
    second = ev.gather()
    assert [j.config for j in second] == [7.0]
    assert ev.now == 7.0


def test_sim_queueing_when_workers_busy():
    ev = SimulatedEvaluator(constant_run(2.0), num_workers=1)
    ev.submit([1, 2, 3])
    ends = []
    while True:
        done = ev.gather()
        if not done:
            break
        ends.extend(j.end_time for j in done)
    assert ends == [2.0, 4.0, 6.0]  # strictly serialized on one worker
    # Queue delays: 0, 2, 4 minutes.
    delays = sorted(j.queue_delay for j in ev.jobs)
    np.testing.assert_allclose(delays, [0.0, 2.0, 4.0])


def test_sim_utilization_full_on_saturated_worker():
    ev = SimulatedEvaluator(constant_run(1.0), num_workers=1)
    ev.submit([1, 2, 3, 4])
    while ev.gather():
        pass
    assert ev.utilization() == pytest.approx(1.0)


def test_sim_utilization_half_when_one_of_two_busy():
    ev = SimulatedEvaluator(constant_run(4.0), num_workers=2)
    ev.submit([1])
    ev.gather()
    assert ev.utilization() == pytest.approx(0.5)


def test_sim_gather_empty_when_idle():
    ev = SimulatedEvaluator(constant_run(1.0), num_workers=2)
    assert ev.gather() == []


def test_sim_in_flight_accounting():
    ev = SimulatedEvaluator(constant_run(1.0), num_workers=4)
    ev.submit([1, 2, 3])
    assert ev.num_in_flight == 3
    ev.gather()
    assert ev.num_in_flight == 0


def test_sim_resubmission_keeps_workers_busy():
    """The manager pattern: resubmit one job per completed job."""
    ev = SimulatedEvaluator(constant_run(1.0), num_workers=2)
    ev.submit([0, 0])
    for _ in range(10):
        done = ev.gather()
        ev.submit([0] * len(done))
    assert ev.num_in_flight == 2
    assert ev.utilization() > 0.9


def test_sim_worker_validation():
    with pytest.raises(ValueError):
        SimulatedEvaluator(constant_run(1.0), num_workers=0)


def test_sim_deterministic_job_ids_and_order():
    ev = SimulatedEvaluator(constant_run(1.0), num_workers=2)
    jobs = ev.submit([1, 2, 3])
    assert [j.job_id for j in jobs] == [0, 1, 2]
    assert jobs[2].state == JobState.PENDING  # queued behind 2 workers
    assert jobs[0].state == JobState.RUNNING


# --------------------------------------------------------------------- #
# ThreadedEvaluator
# --------------------------------------------------------------------- #
def test_threaded_evaluator_runs_concurrently():
    def run(config):
        time.sleep(0.05)
        return EvaluationResult(objective=config * 2.0, duration=0.0)

    ev = ThreadedEvaluator(run, num_workers=4)
    try:
        ev.submit([1.0, 2.0, 3.0, 4.0])
        results = []
        while len(results) < 4:
            results.extend(ev.gather())
        assert sorted(j.result.objective for j in results) == [2.0, 4.0, 6.0, 8.0]
    finally:
        ev.shutdown()


def test_threaded_evaluator_measures_wall_time():
    def run(config):
        time.sleep(0.02)
        return EvaluationResult(objective=1.0, duration=999.0)

    ev = ThreadedEvaluator(run, num_workers=1, measure_wall_time=True)
    try:
        ev.submit([0])
        (job,) = ev.gather()
        # Measured minutes, not the declared 999.
        assert 0.0 < job.result.duration < 0.1
    finally:
        ev.shutdown()


def test_threaded_evaluator_propagates_exceptions():
    def run(config):
        raise RuntimeError("evaluation failed")

    ev = ThreadedEvaluator(run, num_workers=1)
    try:
        ev.submit([0])
        with pytest.raises(RuntimeError, match="evaluation failed"):
            ev.gather()
    finally:
        ev.shutdown()


def test_threaded_gather_empty_when_idle():
    ev = ThreadedEvaluator(lambda c: EvaluationResult(0.0, 0.0), num_workers=1)
    try:
        assert ev.gather() == []
    finally:
        ev.shutdown()
