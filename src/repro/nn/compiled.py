"""Compiled execution plans: trace a ``GraphNetwork`` into a flat op schedule.

The eager engine (:mod:`repro.nn.autograd`) rebuilds a tape of ``Tensor``
nodes and backward closures on *every* forward pass.  That is the right
reference semantics, but for search workloads — thousands of 20-epoch
trainings of small networks — tape construction and per-op temporary
allocation dominate the step time.

:class:`CompiledPlan` removes both costs.  ``GraphNetwork.compile()`` walks
the architecture **once** and emits a flat schedule of fused ops:

- ``_DenseOp`` — affine + activation in one step (``act(x @ W + b)``),
  with the activation's backward auxiliaries (ReLU mask, sigmoid/swish
  values) stored in preallocated buffers;
- ``_SkipOp`` — skip-connection fusion: all incoming projections, the
  sums, and the ReLU execute as one step (projection + sum + ReLU fused);
- identity nodes emit **no op at all**: their output slot aliases the
  input slot at trace time.

Execution writes into per-batch-size buffer sets (allocated on first use,
reused forever after), parameter gradients accumulate in place into
preallocated per-parameter buffers, and the steady-state train step does
zero tape reconstruction and near-zero allocation.

Numerical contract: the plan replays the *exact* operation order of the
eager tape (same kernels, same association order for skip sums, the same
stable-sigmoid formula), so losses and gradients match the eager reference
to float round-off; :func:`assert_plan_equivalence` is the seeded gate the
test-suite and the perf harness both call.

A plan also executes in **multi-rank mode** for the data-parallel
trainer: :meth:`CompiledPlan.loss_and_grads_ranked` runs ``n`` stacked
micro-batches through one fused forward/backward and recovers the *per
rank* parameter gradients — batched ``(n, bs, ·)`` matmuls writing
through column-slice views into an allreduce-ready ``(n, P)`` flat
matrix (:class:`_RankGradBuffers`), with the reduced mean double-buffered
in ``mean_grad_flat`` / ``mean_grad_views`` for the optimizer.  Each
rank's gradients are bitwise identical to ``n`` separate
``loss_and_grad`` calls (gated in ``tests/test_rank_vectorized.py``).

Buffer-reuse invariants (see DESIGN.md §Performance):

1. every forward value slot is written exactly once per step and stays
   valid until the next ``loss_and_grad``/``predict_logits`` call on the
   same plan (backward reads forward values);
2. gradient slots are written by their *first* consumer in reverse
   schedule order (a plain write, precomputed at trace time) and ``+=``
   by every later consumer — no zeroing pass is needed;
3. per-parameter gradient buffers are fully overwritten each step (every
   parameter has exactly one consuming op), so stale values can never
   leak between steps;
4. a plan is **not** thread-safe: concurrent evaluations must compile one
   plan per model (which the evaluators do — one model per candidate).
"""

from __future__ import annotations

import numpy as np

from repro.nn.autograd import Tensor
from repro.nn.layers import Dense

__all__ = ["CompiledPlan", "assert_plan_equivalence"]


def _stable_sigmoid_into(x: np.ndarray, out: np.ndarray, scratch: np.ndarray,
                         neg: np.ndarray) -> None:
    """Numerically stable sigmoid, bitwise-equal to the eager formula.

    ``exp(-|x|)`` is shared by both branches: for ``x >= 0`` the eager path
    computes ``1 / (1 + exp(-x))`` and for ``x < 0`` it computes
    ``e / (1 + e)`` with ``e = exp(x)`` — in both cases the exponential is
    ``exp(-|x|)``, so the branchless form below reproduces the same bits.
    """
    np.less(x, 0.0, out=neg)
    np.abs(x, out=scratch)
    np.negative(scratch, out=scratch)
    np.exp(scratch, out=scratch)          # exp(-|x|)
    np.add(scratch, 1.0, out=out)         # 1 + exp(-|x|)
    np.divide(scratch, out, out=scratch)  # negative branch: e / (1 + e)
    np.divide(1.0, out, out=out)          # positive branch: 1 / (1 + e)
    np.copyto(out, scratch, where=neg)


class _DenseOp:
    """Fused affine + activation: ``out = act(in @ W + b)``."""

    __slots__ = ("layer", "activation", "in_slot", "out_slot",
                 "in_needs_grad", "first_touch")

    def __init__(self, layer: Dense, in_slot: int, out_slot: int) -> None:
        self.layer = layer
        self.activation = layer.activation
        self.in_slot = in_slot
        self.out_slot = out_slot
        self.in_needs_grad = True   # patched by the plan for the input slot
        self.first_touch = True     # patched by the plan (reverse-order scan)

    def forward(self, vals: list[np.ndarray], aux: dict) -> None:
        h = vals[self.in_slot]
        out = vals[self.out_slot]
        np.matmul(h, self.layer.W.data, out=out)
        out += self.layer.b.data
        act = self.activation
        if act is None or act == "identity":
            return
        if act == "relu":
            mask, nmask = aux[(id(self), "mask")], aux[(id(self), "nmask")]
            np.greater(out, 0.0, out=mask)
            np.logical_not(mask, out=nmask)
            np.copyto(out, 0.0, where=nmask)
        elif act == "tanh":
            np.tanh(out, out=out)  # backward reads the stored output
        elif act == "sigmoid":
            scr, neg = aux[(id(self), "scr")], aux[(id(self), "neg")]
            _stable_sigmoid_into(out, out, scr, neg)
        elif act == "swish":
            sig = aux[(id(self), "sig")]
            scr, neg = aux[(id(self), "scr")], aux[(id(self), "neg")]
            _stable_sigmoid_into(out, sig, scr, neg)
            np.multiply(out, sig, out=out)
        else:  # pragma: no cover - trace time rejects unknown activations
            raise AssertionError(f"unknown activation {act!r}")

    def backward(self, vals: list[np.ndarray], grads: list[np.ndarray | None],
                 aux: dict, gW: np.ndarray, gb: np.ndarray,
                 ranks: int = 0) -> None:
        """Backward step; ``ranks > 0`` switches to rank-batched param grads.

        In rank mode the batch axis is ``ranks`` stacked micro-batches and
        ``gW``/``gb`` are ``(ranks, ...)`` buffers: the parameter gradients
        are reduced per micro-batch segment via one batched matmul instead
        of the full-batch reduction.  The activation backward and the
        input-gradient chain are row-wise and shared by both modes.
        """
        dout = grads[self.out_slot]
        act = self.activation
        if act == "relu":
            dout *= aux[(id(self), "mask")]
        elif act == "tanh":
            v = vals[self.out_slot]
            scr = aux[(id(self), "scr")]
            np.multiply(v, v, out=scr)
            np.subtract(1.0, scr, out=scr)
            dout *= scr
        elif act == "sigmoid":
            v = vals[self.out_slot]
            scr = aux[(id(self), "scr")]
            np.subtract(1.0, v, out=scr)
            dout *= v
            dout *= scr
        elif act == "swish":
            sig = aux[(id(self), "sig")]
            scr = aux[(id(self), "scr")]
            v = vals[self.out_slot]
            np.subtract(1.0, sig, out=scr)
            scr *= v
            scr += sig
            dout *= scr
        h = vals[self.in_slot]
        if ranks:
            bs = h.shape[0] // ranks
            h3 = h.reshape(ranks, bs, h.shape[1])
            d3 = dout.reshape(ranks, bs, dout.shape[1])
            np.matmul(h3.transpose(0, 2, 1), d3, out=gW)
            np.sum(d3, axis=1, out=gb)
        else:
            np.matmul(h.T, dout, out=gW)
            np.sum(dout, axis=0, out=gb)
        if self.in_needs_grad:
            din = grads[self.in_slot]
            if self.first_touch:
                np.matmul(dout, self.layer.W.data.T, out=din)
            else:
                tmp = aux[(id(self), "dtmp")]
                np.matmul(dout, self.layer.W.data.T, out=tmp)
                din += tmp


class _SkipOp:
    """Fused skip connection: ``out = relu(base + Σ_s proj_s(h_s))``.

    Sources are summed in ascending-source order — the association order of
    the eager path — so the forward values match bitwise.
    """

    __slots__ = ("base_slot", "sources", "out_slot",
                 "base_needs_grad", "base_first_touch", "source_flags")

    def __init__(self, base_slot: int,
                 sources: list[tuple[int, Dense]], out_slot: int) -> None:
        self.base_slot = base_slot
        self.sources = sources  # [(slot, projection layer)] ascending source
        self.out_slot = out_slot
        self.base_needs_grad = True
        self.base_first_touch = True
        # per source (reverse order): (needs_grad, first_touch)
        self.source_flags: list[tuple[bool, bool]] = [(True, True)] * len(sources)

    def forward(self, vals: list[np.ndarray], aux: dict) -> None:
        acc = vals[self.out_slot]
        ptmp = aux[(id(self), "ptmp")]
        for k, (slot, proj) in enumerate(self.sources):
            np.matmul(vals[slot], proj.W.data, out=ptmp)
            ptmp += proj.b.data
            if k == 0:
                np.add(vals[self.base_slot], ptmp, out=acc)
            else:
                acc += ptmp
        mask, nmask = aux[(id(self), "mask")], aux[(id(self), "nmask")]
        np.greater(acc, 0.0, out=mask)
        np.logical_not(mask, out=nmask)
        np.copyto(acc, 0.0, where=nmask)

    def backward(self, vals: list[np.ndarray], grads: list[np.ndarray | None],
                 aux: dict, param_grads: dict, ranks: int = 0) -> None:
        dacc = grads[self.out_slot]
        dacc *= aux[(id(self), "mask")]
        if self.base_needs_grad:
            dbase = grads[self.base_slot]
            if self.base_first_touch:
                np.copyto(dbase, dacc)
            else:
                dbase += dacc
        # Reverse source order mirrors the eager tape's unwinding of the
        # nested adds, keeping multi-consumer accumulation order identical.
        for k in range(len(self.sources) - 1, -1, -1):
            slot, proj = self.sources[k]
            needs_grad, first = self.source_flags[k]
            gW, gb = param_grads[id(proj)]
            h = vals[slot]
            if ranks:
                bs = h.shape[0] // ranks
                h3 = h.reshape(ranks, bs, h.shape[1])
                d3 = dacc.reshape(ranks, bs, dacc.shape[1])
                np.matmul(h3.transpose(0, 2, 1), d3, out=gW)
                np.sum(d3, axis=1, out=gb)
            else:
                np.matmul(h.T, dacc, out=gW)
                np.sum(dacc, axis=0, out=gb)
            if needs_grad:
                dsrc = grads[slot]
                if first:
                    np.matmul(dacc, proj.W.data.T, out=dsrc)
                else:
                    dtmp = aux[(id(self), "dtmp", k)]
                    np.matmul(dacc, proj.W.data.T, out=dtmp)
                    dsrc += dtmp


class _BufferSet:
    """All per-batch-size arrays one plan execution needs."""

    __slots__ = ("vals", "grads", "aux", "rows", "probs", "rowred")

    def __init__(self, plan: "CompiledPlan", n: int) -> None:
        dt = plan.dtype
        widths = plan.slot_widths
        self.vals: list[np.ndarray] = [np.empty((n, w), dtype=dt) for w in widths]
        # Slot 0 is the input design matrix; it is replaced per call.
        self.grads: list[np.ndarray | None] = [
            None if s == 0 else np.empty((n, w), dtype=dt)
            for s, w in enumerate(widths)
        ]
        aux: dict = {}
        for op in plan.ops:
            key = id(op)
            if isinstance(op, _DenseOp):
                w = widths[op.out_slot]
                act = op.activation
                if act == "relu":
                    aux[(key, "mask")] = np.empty((n, w), dtype=bool)
                    aux[(key, "nmask")] = np.empty((n, w), dtype=bool)
                elif act in ("tanh",):
                    aux[(key, "scr")] = np.empty((n, w), dtype=dt)
                elif act in ("sigmoid", "swish"):
                    aux[(key, "scr")] = np.empty((n, w), dtype=dt)
                    aux[(key, "neg")] = np.empty((n, w), dtype=bool)
                    if act == "swish":
                        aux[(key, "sig")] = np.empty((n, w), dtype=dt)
                if op.in_needs_grad and not op.first_touch:
                    aux[(key, "dtmp")] = np.empty((n, widths[op.in_slot]), dtype=dt)
            else:  # _SkipOp
                w = widths[op.out_slot]
                aux[(key, "ptmp")] = np.empty((n, w), dtype=dt)
                aux[(key, "mask")] = np.empty((n, w), dtype=bool)
                aux[(key, "nmask")] = np.empty((n, w), dtype=bool)
                for k, (slot, _) in enumerate(op.sources):
                    needs_grad, first = op.source_flags[k]
                    if needs_grad and not first:
                        aux[(key, "dtmp", k)] = np.empty((n, widths[slot]), dtype=dt)
        self.aux = aux
        self.rows = np.arange(n)
        n_classes = widths[plan.logits_slot]
        self.probs = np.empty((n, n_classes), dtype=dt)
        self.rowred = np.empty((n, 1), dtype=dt)


class _RankGradBuffers:
    """One flat ``(num_ranks, P)`` per-rank gradient matrix with views.

    Every layer's batched gradients (``(n, d_in, d_out)`` for weights,
    ``(n, d_out)`` for biases) are reshaped column-slice *views* into the
    flat matrix, so the backward pass writes per-rank gradients directly
    into allreduce-ready layout — no packing pass, no per-rank copies.
    """

    __slots__ = ("flat", "layer_views")

    def __init__(self, plan: "CompiledPlan", num_ranks: int) -> None:
        n = num_ranks
        self.flat = np.empty((n, plan.num_flat_params), dtype=plan.dtype)
        self.layer_views: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        for layer in plan._layers:
            oW, sW, shW = plan._param_layout[id(layer.W)]
            ob, sb, shb = plan._param_layout[id(layer.b)]
            gW = self.flat[:, oW : oW + sW].reshape((n,) + shW)
            gb = self.flat[:, ob : ob + sb].reshape((n,) + shb)
            if not (np.shares_memory(gW, self.flat) and np.shares_memory(gb, self.flat)):
                raise AssertionError("rank gradient views must alias the flat matrix")
            self.layer_views[id(layer)] = (gW, gb)


class CompiledPlan:
    """Flat, fused, buffer-reusing execution plan for one ``GraphNetwork``.

    Built by :meth:`repro.nn.graph_network.GraphNetwork.compile`.  The plan
    holds references to the network's parameter :class:`Tensor` objects, so
    in-place optimizer updates and ``set_weights`` are picked up without
    re-tracing.
    """

    def __init__(self, model) -> None:
        self.model = model
        self.dtype = model.dtype
        spec = model.spec
        m = spec.num_nodes

        slot_widths: list[int] = [model.input_dim]   # slot 0 = input
        node_slot: list[int] = [0]                   # graph node -> slot
        ops: list[_DenseOp | _SkipOp] = []

        def new_slot(width: int) -> int:
            slot_widths.append(width)
            return len(slot_widths) - 1

        for i in range(1, m + 2):  # variable nodes, then the output node
            incoming = node_slot[i - 1]
            skip_sources = sorted(
                s for (s, d) in model._projections if d == i
            )
            if skip_sources:
                out = new_slot(slot_widths[incoming])
                ops.append(_SkipOp(
                    incoming,
                    [(node_slot[s], model._projections[(s, i)]) for s in skip_sources],
                    out,
                ))
                incoming = out
            if i <= m:
                layer = model._node_layers[i - 1]
                if layer is None:
                    node_slot.append(incoming)  # identity: alias, no op
                else:
                    out = new_slot(layer.units)
                    ops.append(_DenseOp(layer, incoming, out))
                    node_slot.append(out)
            else:
                out = new_slot(model.n_classes)
                ops.append(_DenseOp(model._output, incoming, out))
                self.logits_slot = out

        self.ops = ops
        self.slot_widths = slot_widths

        # Reverse-order scan: decide, per gradient slot, which consumer
        # writes first (plain store) and which accumulate (+=).  Slot 0 is
        # the input and never receives a gradient.
        touched: set[int] = set()

        def claim(slot: int) -> tuple[bool, bool]:
            if slot == 0:
                return False, True
            first = slot not in touched
            touched.add(slot)
            return True, first

        for op in reversed(ops):
            if isinstance(op, _DenseOp):
                op.in_needs_grad, op.first_touch = claim(op.in_slot)
            else:
                op.base_needs_grad, op.base_first_touch = claim(op.base_slot)
                op.source_flags = [claim(slot) for slot, _ in reversed(op.sources)]
                op.source_flags.reverse()  # re-align with ascending sources

        # Preallocated per-parameter gradient buffers, one (gW, gb) pair per
        # layer; each layer is consumed by exactly one op, so every buffer
        # is fully overwritten each step.
        self.param_grads: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        self._layers: list[Dense] = []
        for op in ops:
            if isinstance(op, _DenseOp):
                self._register_layer(op.layer)
            else:
                for _, proj in op.sources:
                    self._register_layer(proj)
        self._params: list[Tensor] = model.parameters()
        self.grad_buffers: list[np.ndarray] = [self._grad_for(p) for p in self._params]

        # Flat-gradient layout: each parameter occupies one contiguous
        # [offset, offset + size) column span, in ``parameters()`` order —
        # the packing order the ring-allreduce reference uses.
        self.param_segments: list[tuple[int, int, tuple[int, ...]]] = []
        self._param_layout: dict[int, tuple[int, int, tuple[int, ...]]] = {}
        offset = 0
        for p in self._params:
            seg = (offset, p.data.size, p.data.shape)
            self.param_segments.append(seg)
            self._param_layout[id(p)] = seg
            offset += p.data.size
        self.num_flat_params = offset

        # Double-buffered gradients for the rank-batched data-parallel
        # path: per-rank gradients land in a _RankGradBuffers (n, P) matrix
        # (the producer side), the reduced mean lands here (the consumer
        # side Adam reads), so neither step needs a defensive copy.
        self.mean_grad_flat = np.empty(self.num_flat_params, dtype=self.dtype)
        self.mean_grad_views: list[np.ndarray] = [
            self.mean_grad_flat[o : o + s].reshape(shape)
            for o, s, shape in self.param_segments
        ]

        self._buffers: dict[int, _BufferSet] = {}
        self._rank_buffers: dict[int, _RankGradBuffers] = {}

    # ------------------------------------------------------------------ #
    def _register_layer(self, layer: Dense) -> None:
        if id(layer) not in self.param_grads:
            gW = np.empty_like(layer.W.data)
            gb = np.empty_like(layer.b.data)
            self.param_grads[id(layer)] = (gW, gb)
            self._layers.append(layer)

    def _grad_for(self, p: Tensor) -> np.ndarray:
        for layer in self._layers:
            gW, gb = self.param_grads[id(layer)]
            if p is layer.W:
                return gW
            if p is layer.b:
                return gb
        raise ValueError(f"parameter {p!r} is not part of this plan")

    def buffers_for(self, n: int) -> _BufferSet:
        bufs = self._buffers.get(n)
        if bufs is None:
            bufs = _BufferSet(self, n)
            self._buffers[n] = bufs
        return bufs

    def rank_buffers_for(self, num_ranks: int) -> _RankGradBuffers:
        bufs = self._rank_buffers.get(num_ranks)
        if bufs is None:
            bufs = _RankGradBuffers(self, num_ranks)
            self._rank_buffers[num_ranks] = bufs
        return bufs

    @property
    def num_ops(self) -> int:
        return len(self.ops)

    # ------------------------------------------------------------------ #
    def _forward(self, X: np.ndarray, bufs: _BufferSet) -> np.ndarray:
        bufs.vals[0] = X
        aux = bufs.aux
        vals = bufs.vals
        for op in self.ops:
            op.forward(vals, aux)
        return vals[self.logits_slot]

    def loss_and_grad(self, X: np.ndarray, y: np.ndarray) -> float:
        """Mean softmax cross-entropy and its gradients, in one fused pass.

        On return every model parameter's ``.grad`` points at this plan's
        preallocated buffer holding the fresh gradient, ready for
        ``optimizer.step()`` — no ``zero_grad`` is required (buffers are
        fully overwritten, never accumulated across steps).
        """
        X = np.ascontiguousarray(X, dtype=self.dtype)
        y = np.asarray(y)
        n = X.shape[0]
        bufs = self.buffers_for(n)
        logits = self._forward(X, bufs)

        # Softmax cross-entropy, replaying the eager op order exactly.
        shifted = bufs.probs
        rowred = bufs.rowred
        np.max(logits, axis=1, keepdims=True, out=rowred)
        np.subtract(logits, rowred, out=shifted)
        dlogits = bufs.grads[self.logits_slot]
        np.exp(shifted, out=dlogits)                       # exp(shifted), reused
        np.sum(dlogits, axis=1, keepdims=True, out=rowred)
        np.log(rowred, out=rowred)
        shifted -= rowred                                  # log-probs
        labels = y.astype(np.intp, copy=False)
        picked = shifted[bufs.rows, labels]
        loss = -float(picked.mean())

        # d loss / d logits = (softmax - onehot) / n
        c = 1.0 / n
        np.exp(shifted, out=dlogits)                       # softmax
        dlogits *= c
        dlogits[bufs.rows, labels] -= c

        vals, grads, aux = bufs.vals, bufs.grads, bufs.aux
        for op in reversed(self.ops):
            if isinstance(op, _DenseOp):
                gW, gb = self.param_grads[id(op.layer)]
                op.backward(vals, grads, aux, gW, gb)
            else:
                op.backward(vals, grads, aux, self.param_grads)
        self.install_grads()
        return loss

    def loss_and_grads_ranked(
        self, X: np.ndarray, y: np.ndarray, num_ranks: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-rank losses and gradients in one fused pass.

        ``X``/``y`` hold ``num_ranks`` stacked equal-size micro-batches
        (rank ``r`` owns rows ``[r·bs, (r+1)·bs)``).  One forward/backward
        runs over all ``n·bs`` rows — forward values and the activation /
        input-gradient chain are row-wise, hence identical to the per-rank
        loop — while each rank's *own* mean-loss gradient is recovered by
        batched segment reduction: ``dlogits`` rows are scaled by
        ``1/bs`` (not ``1/(n·bs)``) and every parameter gradient reduces
        its ``(n, bs, ·)`` reshape over the micro-batch axis only.

        Returns ``(losses, rank_grads)``: per-rank mean losses ``(n,)``
        (float64) and the plan's reused ``(n, P)`` flat gradient matrix in
        the ring-allreduce packing order.  The matrix is overwritten by the
        next call; reduce it before then.  Parameter ``.grad`` pointers are
        untouched — consumers install the reduced mean themselves.
        """
        X = np.ascontiguousarray(X, dtype=self.dtype)
        y = np.asarray(y)
        n_rows = X.shape[0]
        if num_ranks < 1 or n_rows % num_ranks:
            raise ValueError(
                f"stacked batch of {n_rows} rows does not split into "
                f"{num_ranks} equal micro-batches"
            )
        bs = n_rows // num_ranks
        bufs = self.buffers_for(n_rows)
        logits = self._forward(X, bufs)

        # Softmax cross-entropy, replaying the eager op order exactly; the
        # only departure from loss_and_grad is the per-rank loss reduction
        # and the 1/bs gradient scale.
        shifted = bufs.probs
        rowred = bufs.rowred
        np.max(logits, axis=1, keepdims=True, out=rowred)
        np.subtract(logits, rowred, out=shifted)
        dlogits = bufs.grads[self.logits_slot]
        np.exp(shifted, out=dlogits)
        np.sum(dlogits, axis=1, keepdims=True, out=rowred)
        np.log(rowred, out=rowred)
        shifted -= rowred                                  # log-probs
        labels = y.astype(np.intp, copy=False)
        picked = shifted[bufs.rows, labels]
        losses = -picked.reshape(num_ranks, bs).mean(axis=1).astype(np.float64)

        c = 1.0 / bs
        np.exp(shifted, out=dlogits)                       # softmax
        dlogits *= c
        dlogits[bufs.rows, labels] -= c

        rank_bufs = self.rank_buffers_for(num_ranks)
        vals, grads, aux = bufs.vals, bufs.grads, bufs.aux
        for op in reversed(self.ops):
            if isinstance(op, _DenseOp):
                gW, gb = rank_bufs.layer_views[id(op.layer)]
                op.backward(vals, grads, aux, gW, gb, ranks=num_ranks)
            else:
                op.backward(vals, grads, aux, rank_bufs.layer_views, ranks=num_ranks)
        return losses, rank_bufs.flat

    def install_grads(self) -> None:
        """Point every parameter's ``.grad`` at its plan buffer."""
        for p, g in zip(self._params, self.grad_buffers):
            p.grad = g

    def predict_logits(self, X: np.ndarray, batch_size: int = 4096) -> np.ndarray:
        """Inference-mode logits, chunked to bound peak buffer memory."""
        X = np.ascontiguousarray(X, dtype=self.dtype)
        n = X.shape[0]
        n_classes = self.slot_widths[self.logits_slot]
        out = np.empty((n, n_classes), dtype=self.dtype)
        for start in range(0, n, batch_size):
            chunk = X[start : start + batch_size]
            bufs = self.buffers_for(chunk.shape[0])
            out[start : start + chunk.shape[0]] = self._forward(
                np.ascontiguousarray(chunk), bufs
            )
        return out


def assert_plan_equivalence(
    model,
    X: np.ndarray,
    y: np.ndarray,
    tol: float = 1e-10,
) -> dict[str, float]:
    """Seeded equivalence gate: compiled plan vs. the eager tape.

    Computes the loss and all parameter gradients along both paths on the
    same inputs and raises ``AssertionError`` if any quantity differs by
    more than ``tol``.  Returns the observed maximum deviations so callers
    (tests, the perf harness) can report them.
    """
    from repro.nn.losses import softmax_cross_entropy

    plan = model.compile()

    # Eager reference.
    params = model.parameters()
    for p in params:
        p.grad = None
    loss_e = softmax_cross_entropy(model.forward(X), y)
    loss_e.backward()
    eager_loss = loss_e.item()
    eager_grads = [np.array(p.grad, copy=True) for p in params]

    compiled_loss = plan.loss_and_grad(X, y)

    loss_diff = abs(eager_loss - compiled_loss)
    grad_diff = 0.0
    for ge, p in zip(eager_grads, params):
        grad_diff = max(grad_diff, float(np.max(np.abs(ge - p.grad))))
    report = {"loss_diff": loss_diff, "grad_diff": grad_diff}
    if loss_diff > tol or grad_diff > tol or not np.isfinite(eager_loss):
        raise AssertionError(
            f"compiled/eager divergence: loss diff {loss_diff:.3e}, "
            f"max grad diff {grad_diff:.3e} exceeds tol {tol:.1e}"
        )
    return report
