"""Minimal reverse-mode automatic differentiation over numpy arrays.

The engine implements exactly the operation set needed by the AgEBO-Tabular
search space: affine transforms, elementwise activations, tensor addition
(with broadcasting, for biases and skip-connection sums), and reductions
used by losses.  All operations are vectorized over the batch dimension; no
per-sample Python loops appear anywhere in a training step.

Design: eager tape-per-call (micrograd-style).  Every forward pass builds a
fresh graph of :class:`Tensor` nodes; :meth:`Tensor.backward` walks the tape
in reverse topological order, each op's closure accumulating gradients into
its parents' ``.grad``.  Intermediate buffers die with the tape, keeping the
training loop allocation-light.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Callable, Sequence

import numpy as np

__all__ = ["Tensor", "no_grad", "is_grad_enabled"]

# Thread-local so a no_grad() inference pass on one evaluator thread cannot
# disable taping for training running concurrently on another.
_STATE = threading.local()


def _grad_enabled() -> bool:
    return getattr(_STATE, "grad_enabled", True)


@contextlib.contextmanager
def no_grad():
    """Context manager disabling tape construction (inference mode)."""
    prev = _grad_enabled()
    _STATE.grad_enabled = False
    try:
        yield
    finally:
        _STATE.grad_enabled = prev


def is_grad_enabled() -> bool:
    """Return whether operations currently record backward closures."""
    return _grad_enabled()


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing numpy broadcasting.

    Broadcasting prepends axes and stretches size-1 axes; the adjoint of a
    broadcast is a sum over the broadcast axes.
    """
    if grad.shape == shape:
        return grad
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad


class Tensor:
    """A numpy array plus an optional gradient and backward closure.

    Parameters
    ----------
    data:
        Array (or scalar) holding the value.  Non-float inputs are promoted
        to ``float64``; float arrays keep their dtype.
    requires_grad:
        Whether this tensor participates in differentiation.  Gradients are
        accumulated into ``.grad`` for every participating node during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(
        self,
        data,
        requires_grad: bool = False,
        _parents: Sequence["Tensor"] = (),
        _backward: Callable[[], None] | None = None,
        name: str = "",
    ) -> None:
        arr = np.asarray(data)
        if arr.dtype.kind != "f":
            arr = arr.astype(np.float64)
        self.data = arr
        self.grad: np.ndarray | None = None
        grad_on = _grad_enabled()
        self.requires_grad = bool(requires_grad) and grad_on
        self._parents = tuple(_parents) if (grad_on and self.requires_grad) else ()
        self._backward = _backward if (grad_on and self.requires_grad) else None
        self.name = name

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tag = f" name={self.name!r}" if self.name else ""
        return f"Tensor(shape={self.data.shape}, requires_grad={self.requires_grad}{tag})"

    def item(self) -> float:
        return float(self.data)

    def numpy(self) -> np.ndarray:
        return self.data

    def zero_grad(self) -> None:
        """Drop any accumulated gradient."""
        self.grad = None

    # ------------------------------------------------------------------ #
    # Graph construction helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _lift(value, dtype: np.dtype | None = None) -> "Tensor":
        """Wrap ``value`` in a Tensor.

        Python scalars are materialized at ``dtype`` (the other operand's
        dtype) so that mixing e.g. ``2.0 * x`` with a float32 ``x`` does not
        silently promote the whole graph to float64: numpy treats 0-d
        float64 *arrays* as strong types under NEP 50 promotion.
        """
        if isinstance(value, Tensor):
            return value
        if dtype is not None and not isinstance(value, np.ndarray):
            return Tensor(np.asarray(value, dtype=dtype))
        return Tensor(value)

    def _accumulate(self, grad: np.ndarray, owned: bool = False) -> None:
        """Add ``grad`` into ``self.grad``.

        ``owned=True`` promises that ``grad`` is a freshly allocated array
        no other node holds a reference to, so the first accumulation can
        adopt it instead of copying (backward closures pass ``owned=True``
        exactly when they just computed the array).  Shared buffers (e.g. a
        child's ``out.grad`` forwarded unchanged through a no-broadcast add,
        or a read-only ``broadcast_to`` view) must keep the defensive copy.
        """
        if not self.requires_grad:
            return
        if self.grad is None:
            if owned and grad.dtype == self.data.dtype and grad.shape == self.data.shape:
                self.grad = grad
            else:
                self.grad = np.array(grad, dtype=self.data.dtype, copy=True)
        else:
            self.grad += grad

    # ------------------------------------------------------------------ #
    # Operations
    # ------------------------------------------------------------------ #
    def __add__(self, other) -> "Tensor":
        other = Tensor._lift(other, self.data.dtype)
        out = Tensor(
            self.data + other.data,
            requires_grad=self.requires_grad or other.requires_grad,
            _parents=(self, other),
        )

        def backward() -> None:
            g = out.grad
            gs = _unbroadcast(g, self.data.shape)
            self._accumulate(gs, owned=gs is not g)
            go = _unbroadcast(g, other.data.shape)
            other._accumulate(go, owned=go is not g)

        out._backward = backward if out.requires_grad else None
        return out

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        out = Tensor(-self.data, self.requires_grad, (self,))

        def backward() -> None:
            self._accumulate(-out.grad, owned=True)

        out._backward = backward if out.requires_grad else None
        return out

    def __sub__(self, other) -> "Tensor":
        return self + (-Tensor._lift(other, self.data.dtype))

    def __rsub__(self, other) -> "Tensor":
        return Tensor._lift(other, self.data.dtype) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = Tensor._lift(other, self.data.dtype)
        out = Tensor(
            self.data * other.data,
            requires_grad=self.requires_grad or other.requires_grad,
            _parents=(self, other),
        )

        def backward() -> None:
            g = out.grad
            self._accumulate(_unbroadcast(g * other.data, self.data.shape), owned=True)
            other._accumulate(_unbroadcast(g * self.data, other.data.shape), owned=True)

        out._backward = backward if out.requires_grad else None
        return out

    __rmul__ = __mul__

    def matmul(self, other: "Tensor") -> "Tensor":
        """Matrix product ``self @ other`` for 2-D operands."""
        other = Tensor._lift(other)
        out = Tensor(
            self.data @ other.data,
            requires_grad=self.requires_grad or other.requires_grad,
            _parents=(self, other),
        )

        def backward() -> None:
            g = out.grad
            self._accumulate(g @ other.data.T, owned=True)
            other._accumulate(self.data.T @ g, owned=True)

        out._backward = backward if out.requires_grad else None
        return out

    __matmul__ = matmul

    def sum(self) -> "Tensor":
        out = Tensor(self.data.sum(), self.requires_grad, (self,))

        def backward() -> None:
            self._accumulate(np.broadcast_to(out.grad, self.data.shape))

        out._backward = backward if out.requires_grad else None
        return out

    def mean(self) -> "Tensor":
        scale = 1.0 / self.data.size
        out = Tensor(self.data.mean(), self.requires_grad, (self,))

        def backward() -> None:
            self._accumulate(np.broadcast_to(out.grad * scale, self.data.shape))

        out._backward = backward if out.requires_grad else None
        return out

    def relu(self) -> "Tensor":
        mask = self.data > 0.0
        out = Tensor(np.where(mask, self.data, 0.0), self.requires_grad, (self,))

        def backward() -> None:
            self._accumulate(out.grad * mask, owned=True)

        out._backward = backward if out.requires_grad else None
        return out

    def tanh(self) -> "Tensor":
        value = np.tanh(self.data)
        out = Tensor(value, self.requires_grad, (self,))

        def backward() -> None:
            self._accumulate(out.grad * (1.0 - value * value), owned=True)

        out._backward = backward if out.requires_grad else None
        return out

    def sigmoid(self) -> "Tensor":
        value = _stable_sigmoid(self.data)
        out = Tensor(value, self.requires_grad, (self,))

        def backward() -> None:
            self._accumulate(out.grad * value * (1.0 - value), owned=True)

        out._backward = backward if out.requires_grad else None
        return out

    def swish(self) -> "Tensor":
        """Swish activation ``x * sigmoid(x)`` (Ramachandran et al., 2018)."""
        sig = _stable_sigmoid(self.data)
        value = self.data * sig
        out = Tensor(value, self.requires_grad, (self,))

        def backward() -> None:
            self._accumulate(out.grad * (sig + value * (1.0 - sig)), owned=True)

        out._backward = backward if out.requires_grad else None
        return out

    def reciprocal(self) -> "Tensor":
        """Elementwise ``1 / x`` (x must be nonzero)."""
        value = 1.0 / self.data
        out = Tensor(value, self.requires_grad, (self,))

        def backward() -> None:
            self._accumulate(-out.grad * value * value, owned=True)

        out._backward = backward if out.requires_grad else None
        return out

    def sqrt(self) -> "Tensor":
        """Elementwise square root (x must be positive)."""
        value = np.sqrt(self.data)
        out = Tensor(value, self.requires_grad, (self,))

        def backward() -> None:
            self._accumulate(out.grad * 0.5 / value, owned=True)

        out._backward = backward if out.requires_grad else None
        return out

    def mean_axis0(self) -> "Tensor":
        """Column means of a 2-D tensor (used by batch normalization)."""
        n = self.data.shape[0]
        out = Tensor(self.data.mean(axis=0), self.requires_grad, (self,))

        def backward() -> None:
            self._accumulate(np.broadcast_to(out.grad / n, self.data.shape))

        out._backward = backward if out.requires_grad else None
        return out

    def pow2(self) -> "Tensor":
        """Elementwise square (used for L2 regularization)."""
        out = Tensor(self.data * self.data, self.requires_grad, (self,))

        def backward() -> None:
            self._accumulate(out.grad * 2.0 * self.data, owned=True)

        out._backward = backward if out.requires_grad else None
        return out

    def log_softmax(self) -> "Tensor":
        """Row-wise log-softmax for 2-D logits, numerically stabilized."""
        shifted = self.data - self.data.max(axis=1, keepdims=True)
        log_z = np.log(np.exp(shifted).sum(axis=1, keepdims=True))
        value = shifted - log_z
        out = Tensor(value, self.requires_grad, (self,))

        def backward() -> None:
            g = out.grad
            softmax = np.exp(value)
            self._accumulate(g - softmax * g.sum(axis=1, keepdims=True), owned=True)

        out._backward = backward if out.requires_grad else None
        return out

    def gather_rows(self, index: np.ndarray) -> "Tensor":
        """Select one column per row: ``out[i] = self[i, index[i]]``."""
        rows = np.arange(self.data.shape[0])
        out = Tensor(self.data[rows, index], self.requires_grad, (self,))

        def backward() -> None:
            g = np.zeros_like(self.data)
            np.add.at(g, (rows, index), out.grad)
            self._accumulate(g, owned=True)

        out._backward = backward if out.requires_grad else None
        return out

    # ------------------------------------------------------------------ #
    # Backward pass
    # ------------------------------------------------------------------ #
    def backward(self, grad: np.ndarray | float | None = None) -> None:
        """Run reverse-mode accumulation from this tensor.

        ``grad`` defaults to 1.0 and requires a scalar output in that case.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise ValueError("backward() without gradient requires a scalar output")
            grad = np.ones_like(self.data)
        self._accumulate(np.asarray(grad, dtype=self.data.dtype))
        for node in reversed(_toposort(self)):
            if node._backward is not None and node.grad is not None:
                node._backward()
                if node._parents:
                    # Interior node: its gradient is no longer needed.
                    node.grad = None


def _stable_sigmoid(x: np.ndarray) -> np.ndarray:
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


def _toposort(root: Tensor) -> list[Tensor]:
    """Return tensors reachable from ``root`` in topological order."""
    order: list[Tensor] = []
    seen: set[int] = set()
    stack: list[tuple[Tensor, bool]] = [(root, False)]
    while stack:
        node, processed = stack.pop()
        if processed:
            order.append(node)
            continue
        if id(node) in seen:
            continue
        seen.add(id(node))
        stack.append((node, True))
        for p in node._parents:
            if id(p) not in seen:
                stack.append((p, False))
    return order
