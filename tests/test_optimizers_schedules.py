"""Unit tests for optimizers and learning-rate schedules."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import SGD, Adam, GradualWarmup, ReduceLROnPlateau, Tensor


def quadratic_step(opt, p):
    """One GD step on f(p) = ||p||^2 (gradient 2p)."""
    p.grad = 2.0 * p.data
    opt.step()


def test_sgd_converges_on_quadratic():
    p = Tensor(np.array([5.0, -3.0]), requires_grad=True)
    opt = SGD([p], lr=0.1)
    for _ in range(100):
        quadratic_step(opt, p)
    assert np.linalg.norm(p.data) < 1e-6


def test_sgd_momentum_accelerates():
    def run(momentum):
        p = Tensor(np.array([5.0]), requires_grad=True)
        opt = SGD([p], lr=0.02, momentum=momentum)
        for _ in range(30):
            quadratic_step(opt, p)
        return abs(float(p.data[0]))

    assert run(0.9) < run(0.0)


def test_adam_converges_on_quadratic():
    p = Tensor(np.array([5.0, -3.0, 1.0]), requires_grad=True)
    opt = Adam([p], lr=0.2)
    for _ in range(300):
        quadratic_step(opt, p)
    assert np.linalg.norm(p.data) < 1e-4


def test_adam_bias_correction_first_step():
    """First Adam step has magnitude ≈ lr regardless of gradient scale."""
    for scale in (1e-4, 1.0, 1e4):
        p = Tensor(np.array([1.0]), requires_grad=True)
        opt = Adam([p], lr=0.1)
        p.grad = np.array([scale])
        opt.step()
        # Up to the eps term, the debiased first step is exactly lr.
        assert abs((1.0 - p.data[0]) - 0.1) < 1e-4


def test_optimizer_skips_none_gradients():
    p = Tensor(np.array([1.0]), requires_grad=True)
    opt = Adam([p], lr=0.5)
    opt.step()  # no grad installed
    np.testing.assert_allclose(p.data, [1.0])


def test_zero_grad_clears_all():
    p1 = Tensor(np.ones(2), requires_grad=True)
    p2 = Tensor(np.ones(2), requires_grad=True)
    opt = SGD([p1, p2], lr=0.1)
    p1.grad = np.ones(2)
    p2.grad = np.ones(2)
    opt.zero_grad()
    assert p1.grad is None and p2.grad is None


def test_apply_gradients_installs_and_steps():
    p = Tensor(np.array([1.0]), requires_grad=True)
    opt = SGD([p], lr=0.1)
    opt.apply_gradients([np.array([2.0])])
    np.testing.assert_allclose(p.data, [0.8])


def test_apply_gradients_length_mismatch():
    p = Tensor(np.array([1.0]), requires_grad=True)
    opt = SGD([p], lr=0.1)
    with pytest.raises(ValueError):
        opt.apply_gradients([np.ones(1), np.ones(1)])


@pytest.mark.parametrize("bad_lr", [0.0, -1.0])
def test_invalid_learning_rate(bad_lr):
    with pytest.raises(ValueError):
        SGD([Tensor(np.ones(1), requires_grad=True)], lr=bad_lr)


def test_invalid_momentum():
    with pytest.raises(ValueError):
        SGD([Tensor(np.ones(1), requires_grad=True)], lr=0.1, momentum=1.0)


def test_invalid_betas():
    with pytest.raises(ValueError):
        Adam([Tensor(np.ones(1), requires_grad=True)], lr=0.1, beta1=1.0)


# --------------------------------------------------------------------- #
# Schedules
# --------------------------------------------------------------------- #
def test_warmup_ramps_linearly():
    p = Tensor(np.ones(1), requires_grad=True)
    opt = SGD([p], lr=1.0)
    warmup = GradualWarmup(opt, target_lr=1.0, warmup_epochs=5)
    lrs = [warmup.on_epoch_begin(e) for e in range(7)]
    np.testing.assert_allclose(lrs[:5], [0.2, 0.4, 0.6, 0.8, 1.0])
    assert lrs[5] == lrs[6] == 1.0  # untouched after warmup


def test_warmup_zero_epochs_noop():
    p = Tensor(np.ones(1), requires_grad=True)
    opt = SGD([p], lr=0.5)
    warmup = GradualWarmup(opt, target_lr=0.5, warmup_epochs=0)
    assert warmup.on_epoch_begin(0) == 0.5


def test_plateau_reduces_after_patience():
    p = Tensor(np.ones(1), requires_grad=True)
    opt = SGD([p], lr=1.0)
    plateau = ReduceLROnPlateau(opt, patience=3, factor=0.5)
    plateau.on_epoch_end(0.9)  # new best
    assert not plateau.on_epoch_end(0.9)  # 1 stale
    assert not plateau.on_epoch_end(0.9)  # 2 stale
    assert plateau.on_epoch_end(0.9)  # 3rd stale epoch triggers
    assert opt.lr == 0.5


def test_plateau_resets_on_improvement():
    p = Tensor(np.ones(1), requires_grad=True)
    opt = SGD([p], lr=1.0)
    plateau = ReduceLROnPlateau(opt, patience=2, factor=0.5)
    plateau.on_epoch_end(0.5)
    plateau.on_epoch_end(0.5)
    plateau.on_epoch_end(0.6)  # improvement resets the counter
    assert not plateau.on_epoch_end(0.6)
    assert opt.lr == 1.0


def test_plateau_respects_min_lr():
    p = Tensor(np.ones(1), requires_grad=True)
    opt = SGD([p], lr=2e-6)
    plateau = ReduceLROnPlateau(opt, patience=1, factor=0.5, min_lr=1e-6)
    plateau.on_epoch_end(0.5)
    plateau.on_epoch_end(0.5)
    plateau.on_epoch_end(0.5)
    plateau.on_epoch_end(0.5)
    assert opt.lr >= 1e-6


def test_plateau_min_delta_guards_noise():
    p = Tensor(np.ones(1), requires_grad=True)
    opt = SGD([p], lr=1.0)
    plateau = ReduceLROnPlateau(opt, patience=2, factor=0.5, min_delta=1e-3)
    plateau.on_epoch_end(0.5)
    plateau.on_epoch_end(0.5 + 1e-5)  # within noise: counts as stale
    assert plateau.on_epoch_end(0.5 + 2e-5)
    assert opt.lr == 0.5


def test_schedule_constructor_validation():
    p = Tensor(np.ones(1), requires_grad=True)
    opt = SGD([p], lr=1.0)
    with pytest.raises(ValueError):
        ReduceLROnPlateau(opt, patience=0)
    with pytest.raises(ValueError):
        ReduceLROnPlateau(opt, factor=1.5)
    with pytest.raises(ValueError):
        GradualWarmup(opt, 1.0, warmup_epochs=-1)
