"""Search history: the record of every finished evaluation."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

import numpy as np

from repro.core.config import ModelConfig

__all__ = ["EvaluationRecord", "SearchHistory"]


@dataclass
class EvaluationRecord:
    """One finished evaluation with its cluster timing."""

    config: ModelConfig
    objective: float  # validation accuracy (maximized)
    duration: float  # simulated minutes on the worker
    submit_time: float
    start_time: float
    end_time: float
    metadata: dict[str, Any] = field(default_factory=dict)


class SearchHistory:
    """Append-only log of evaluations, ordered by completion time."""

    def __init__(self, label: str = "") -> None:
        self.label = label
        self.records: list[EvaluationRecord] = []

    def add(self, record: EvaluationRecord) -> None:
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[EvaluationRecord]:
        return iter(self.records)

    # ------------------------------------------------------------------ #
    @property
    def num_evaluations(self) -> int:
        return len(self.records)

    def objectives(self) -> np.ndarray:
        return np.array([r.objective for r in self.records])

    def end_times(self) -> np.ndarray:
        return np.array([r.end_time for r in self.records])

    def durations(self) -> np.ndarray:
        return np.array([r.duration for r in self.records])

    def failures(self) -> list[EvaluationRecord]:
        """Records penalized by the fault policy (metadata ``failed``)."""
        return [r for r in self.records if r.metadata.get("failed")]

    @property
    def num_failures(self) -> int:
        return len(self.failures())

    def best(self) -> EvaluationRecord:
        """Highest-objective record."""
        if not self.records:
            raise RuntimeError("empty history")
        return max(self.records, key=lambda r: r.objective)

    def top_k(self, k: int) -> list[EvaluationRecord]:
        """The ``k`` highest-objective records, best first."""
        return sorted(self.records, key=lambda r: -r.objective)[:k]

    def best_so_far(self) -> tuple[np.ndarray, np.ndarray]:
        """(end_times, running max objective) — the Fig. 3/4/6 curves."""
        if not self.records:
            return np.array([]), np.array([])
        order = np.argsort(self.end_times(), kind="stable")
        times = self.end_times()[order]
        objs = np.maximum.accumulate(self.objectives()[order])
        return times, objs

    def time_to_reach(self, threshold: float) -> float | None:
        """Earliest end time at which the objective reached ``threshold``."""
        times, objs = self.best_so_far()
        hit = np.nonzero(objs >= threshold)[0]
        return float(times[hit[0]]) if hit.size else None

    def to_rows(self) -> list[dict[str, Any]]:
        """Plain-dict export for report tables."""
        return [
            {
                "objective": r.objective,
                "duration": r.duration,
                "end_time": r.end_time,
                **{f"hp_{k}": v for k, v in r.config.hyperparameters.items()},
                **{f"meta_{k}": v for k, v in r.metadata.items() if np.isscalar(v)},
            }
            for r in self.records
        ]
