"""The campaign layer: typed config tree, builder/registries, event bus.

Covers the PR's acceptance criteria:

- ``CampaignConfig.from_dict(cfg.to_dict()) == cfg`` for randomized
  configs (property-style, via hypothesis);
- a campaign built by :func:`build_campaign` produces a *bit-identical*
  ``SearchHistory`` to hand-wiring the raw classes with the same seeds;
- replaying the JSONL event log reproduces the utilization / retry
  accounting of :func:`repro.analysis.utilization_summary`;
- ``--resume`` works from a checkpoint that embeds the campaign config
  (kill-and-resume continues bit-identically), and the pre-refactor
  checkpoint layout is rejected with a clear versioned error;
- explicit ``num_workers=0`` raises instead of silently falling back to
  the evaluator default.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import utilization_summary
from repro.campaign import (
    EVALUATORS,
    EVENT_TYPES,
    SEARCH_METHODS,
    SURROGATES,
    CampaignConfig,
    CampaignStarted,
    CheckpointConfig,
    EvaluatorConfig,
    EventBus,
    FaultConfig,
    JobGathered,
    JsonlEventLog,
    MetricsAggregator,
    PopulationUpdated,
    SearchConfig,
    TrainingConfig,
    build_campaign,
    load_events,
    replay_metrics,
    resume_campaign,
)
from repro.campaign.registry import Registry, SearchMethod
from repro.core.evaluation import ModelEvaluation
from repro.core.serialization import history_to_dict, save_checkpoint
from repro.core.variants import make_agebo_variant
from repro.datasets import load_dataset
from repro.searchspace import ArchitectureSpace
from repro.workflow import FaultPolicy, SimulatedEvaluator


def tiny_config(**overrides) -> CampaignConfig:
    """A campaign small enough for the suite (1 real epoch, 300 rows)."""
    base = dict(
        dataset="covertype",
        size=300,
        num_nodes=2,
        max_evaluations=8,
        search=SearchConfig(
            method="AgEBO", population_size=4, sample_size=2, seed=3,
            n_initial_points=3,
        ),
        training=TrainingConfig(epochs=1, nominal_epochs=20),
        evaluator=EvaluatorConfig(backend="simulated", num_workers=3),
    )
    base.update(overrides)
    return CampaignConfig(**base)


# --------------------------------------------------------------------- #
# Config tree: validation + lossless round-trip
# --------------------------------------------------------------------- #
search_configs = st.builds(
    SearchConfig,
    method=st.sampled_from(("AgE", "AgEBO", "AgEBO-8-LR", "AgEBO-8-LR-BS")),
    population_size=st.integers(2, 200),
    sample_size=st.just(2),
    seed=st.integers(0, 2**31 - 1),
    mutate_skips=st.booleans(),
    replacement=st.sampled_from(("aging", "elitist")),
    num_ranks=st.integers(1, 8),
    kappa=st.floats(0.0, 20.0, allow_nan=False),
    n_initial_points=st.integers(1, 50),
    lie_strategy=st.sampled_from(("mean", "min", "max")),
    surrogate=st.sampled_from(("forest", "knn", "random")),
)
training_configs = st.builds(
    TrainingConfig,
    epochs=st.integers(1, 50),
    nominal_epochs=st.one_of(st.none(), st.integers(1, 50)),
    warmup_epochs=st.integers(0, 10),
    plateau_patience=st.integers(1, 10),
    objective=st.sampled_from(("best", "final")),
    allreduce=st.sampled_from(("ring", "mean", "fused")),
    backend=st.sampled_from(("compiled", "eager")),
    dtype=st.sampled_from(("float32", "float64")),
    apply_linear_scaling=st.booleans(),
    base_seed=st.integers(0, 1000),
)
fault_configs = st.builds(
    FaultConfig,
    on_error=st.sampled_from(("raise", "penalize", "retry")),
    max_retries=st.integers(0, 5),
    retry_backoff=st.floats(0.0, 10.0, allow_nan=False),
    timeout=st.one_of(st.none(), st.floats(1.0, 500.0, allow_nan=False)),
    crash_prob=st.floats(0.0, 0.3),
    hang_prob=st.floats(0.0, 0.3),
    corrupt_prob=st.floats(0.0, 0.3),
    hang_factor=st.floats(1.0, 50.0, allow_nan=False),
    fault_seed=st.integers(0, 1000),
)
campaign_configs = st.builds(
    CampaignConfig,
    dataset=st.sampled_from(("covertype", "airlines", "albert")),
    size=st.integers(100, 10_000),
    num_nodes=st.integers(1, 10),
    max_evaluations=st.integers(1, 500),
    wall_time_minutes=st.one_of(st.none(), st.floats(1.0, 1e4, allow_nan=False)),
    search=search_configs,
    training=training_configs,
    evaluator=st.builds(
        EvaluatorConfig,
        backend=st.sampled_from(("simulated", "threaded")),
        num_workers=st.integers(1, 64),
        measure_wall_time=st.booleans(),
    ),
    faults=fault_configs,
    checkpoint=st.builds(
        CheckpointConfig,
        path=st.one_of(st.none(), st.just("camp.ckpt")),
        every=st.integers(1, 10),
    ),
)


@settings(max_examples=50, deadline=None)
@given(config=campaign_configs)
def test_config_round_trip_is_lossless(config):
    data = config.to_dict()
    assert json.loads(json.dumps(data)) == data  # JSON-safe
    assert CampaignConfig.from_dict(data) == config


def test_config_round_trip_default():
    config = CampaignConfig()
    assert CampaignConfig.from_dict(config.to_dict()) == config


def test_from_dict_rejects_missing_and_wrong_version():
    data = CampaignConfig().to_dict()
    del data["config_version"]
    with pytest.raises(ValueError, match="version"):
        CampaignConfig.from_dict(data)
    data["config_version"] = 99
    with pytest.raises(ValueError, match="version 99"):
        CampaignConfig.from_dict(data)


def test_from_dict_rejects_unknown_keys_at_both_levels():
    data = CampaignConfig().to_dict()
    data["datasett"] = "covertype"
    with pytest.raises(ValueError, match="datasett"):
        CampaignConfig.from_dict(data)
    data = CampaignConfig().to_dict()
    data["search"]["poplation_size"] = 10
    with pytest.raises(ValueError, match="poplation_size"):
        CampaignConfig.from_dict(data)


@pytest.mark.parametrize(
    "make",
    [
        lambda: CampaignConfig(size=0),
        lambda: CampaignConfig(max_evaluations=None, wall_time_minutes=None),
        lambda: SearchConfig(population_size=1),
        lambda: SearchConfig(replacement="oldest"),
        lambda: TrainingConfig(dtype="float16"),
        lambda: EvaluatorConfig(num_workers=0),
        lambda: FaultConfig(crash_prob=1.5),
        lambda: FaultConfig(on_error="ignore"),
        lambda: CheckpointConfig(every=0),
        lambda: CampaignConfig(search="AgEBO"),  # sub-config must be typed
    ],
)
def test_invalid_configs_fail_at_definition_time(make):
    with pytest.raises((ValueError, TypeError)):
        make()


def test_replace_returns_modified_copy():
    config = tiny_config()
    extended = config.replace(max_evaluations=99)
    assert extended.max_evaluations == 99
    assert config.max_evaluations == 8
    assert extended.search == config.search


# --------------------------------------------------------------------- #
# Satellite: explicit num_workers=0 must raise, not fall back
# --------------------------------------------------------------------- #
def test_search_rejects_explicit_zero_workers():
    from repro.core import AgE

    space = ArchitectureSpace(num_nodes=2)
    ev = SimulatedEvaluator(lambda c: None, num_workers=4)
    with pytest.raises(ValueError, match="num_workers"):
        AgE(space, ev, hyperparameters={"batch_size": 64, "learning_rate": 0.01,
                                        "num_ranks": 1},
            population_size=4, sample_size=2, num_workers=0)
    # None still means "ask the evaluator".
    search = AgE(space, ev, hyperparameters={"batch_size": 64,
                                             "learning_rate": 0.01,
                                             "num_ranks": 1},
                 population_size=4, sample_size=2, num_workers=None)
    assert search.num_workers == 4


# --------------------------------------------------------------------- #
# Builder: bit-identical to hand-wiring the raw classes
# --------------------------------------------------------------------- #
def test_build_campaign_matches_legacy_wiring():
    config = tiny_config()
    history = build_campaign(config).run()

    dataset = load_dataset("covertype", size=300)
    space = ArchitectureSpace(num_nodes=2)
    evaluation = ModelEvaluation(dataset, space, epochs=1, nominal_epochs=20)
    evaluator = SimulatedEvaluator(
        evaluation, num_workers=3,
        fault_policy=FaultPolicy(on_error="penalize", max_retries=2),
    )
    legacy = make_agebo_variant(
        "AgEBO", space, evaluator,
        population_size=4, sample_size=2, seed=3, n_initial_points=3,
    ).search(max_evaluations=8)

    assert history_to_dict(history) == history_to_dict(legacy)


def test_build_campaign_rejects_unknown_names():
    with pytest.raises(ValueError, match="dataset"):
        build_campaign(tiny_config(dataset="imagenet"))
    with pytest.raises(ValueError, match="search method"):
        build_campaign(tiny_config(search=SearchConfig(method="RandomSearch")))
    with pytest.raises(ValueError, match="evaluator backend"):
        build_campaign(
            tiny_config(evaluator=EvaluatorConfig(backend="slurm"))
        )


def test_campaign_wires_fault_injector_only_when_configured():
    campaign = build_campaign(tiny_config())
    assert campaign.fault_injector is None
    campaign = build_campaign(
        tiny_config(faults=FaultConfig(on_error="retry", crash_prob=0.2))
    )
    assert campaign.fault_injector is not None
    assert campaign.fault_injector.event_bus is campaign.event_bus


# --------------------------------------------------------------------- #
# Event bus + metrics replay
# --------------------------------------------------------------------- #
def test_event_bus_filters_and_unsubscribes():
    bus = EventBus()
    seen_all, seen_pop = [], []
    handle = bus.subscribe(lambda e: seen_all.append(e))
    bus.subscribe(seen_pop.append, PopulationUpdated)
    started = CampaignStarted(method="AgEBO", dataset="covertype", num_workers=2)
    updated = PopulationUpdated(num_evaluations=1, population_size=1,
                                objective=0.5, best_objective=0.5, time=1.0)
    bus.emit(started)
    bus.emit(updated)
    assert seen_all == [started, updated]
    assert seen_pop == [updated]
    bus.unsubscribe(handle)
    bus.emit(started)
    assert seen_all == [started, updated]  # unsubscribed: no new delivery
    assert seen_pop == [updated]
    with pytest.raises(TypeError):
        bus.emit("not an event")


def test_event_round_trip_through_jsonl(tmp_path):
    path = tmp_path / "events.jsonl"
    events = [
        CampaignStarted(method="AgEBO", dataset="covertype", num_workers=4,
                        max_evaluations=10),
        JobGathered(job_id=0, time=5.0, objective=0.7, duration=4.0,
                    submit_time=0.0, start_time=1.0, end_time=5.0, worker=2,
                    failed=False, retries=0),
    ]
    with JsonlEventLog(path) as log:
        for event in events:
            log(event)
    assert load_events(path) == events


def test_campaign_event_stream_reproduces_utilization(tmp_path):
    """Replaying the JSONL log == utilization_summary on the evaluator."""
    path = tmp_path / "events.jsonl"
    campaign = build_campaign(tiny_config())
    log = campaign.subscribe(JsonlEventLog(path))
    live = campaign.subscribe(MetricsAggregator())
    campaign.run()
    log.close()

    replayed = replay_metrics(path)
    reference = utilization_summary(campaign.evaluator)
    for metrics in (live, replayed):
        assert metrics.num_workers == reference.num_workers
        assert metrics.elapsed_minutes == pytest.approx(reference.elapsed_minutes)
        assert metrics.busy_worker_minutes == pytest.approx(
            reference.busy_worker_minutes
        )
        assert metrics.utilization == pytest.approx(reference.utilization)
        assert metrics.num_jobs_done == reference.num_jobs_done
        assert metrics.mean_queue_delay == pytest.approx(reference.mean_queue_delay)
    assert replayed.summary() == live.summary()


def test_event_stream_reports_retries_under_faults(tmp_path):
    path = tmp_path / "events.jsonl"
    campaign = build_campaign(
        tiny_config(
            faults=FaultConfig(on_error="retry", max_retries=2,
                               timeout=120.0, crash_prob=0.3, fault_seed=5),
        )
    )
    log = campaign.subscribe(JsonlEventLog(path))
    campaign.run()
    log.close()
    metrics = replay_metrics(path)
    assert metrics.num_faults_injected > 0
    assert metrics.num_retries > 0
    assert metrics.counts["CampaignStarted"] == 1
    assert metrics.counts["CampaignFinished"] == 1
    assert metrics.counts["EpochEnd"] > 0


def test_metrics_aggregator_accumulates_ring_comm_bytes():
    """EpochEnd ring payloads aggregate into the simulated comm volume."""
    from repro.campaign.events import EpochEnd

    metrics = MetricsAggregator()
    metrics(EpochEnd(epoch=0, train_loss=1.0, val_accuracy=0.5,
                     num_ranks=4, ring_bytes_per_rank=600))
    metrics(EpochEnd(epoch=1, train_loss=0.9, val_accuracy=0.6,
                     num_ranks=4, ring_bytes_per_rank=600))
    metrics(EpochEnd(epoch=0, train_loss=1.1, val_accuracy=0.4))  # n=1, no ring
    assert metrics.ring_comm_bytes == 2 * 4 * 600
    assert metrics.summary()["ring_comm_bytes"] == 4800
    # Round-trips through the JSONL schema with the new field defaulted.
    row = EpochEnd(epoch=0, train_loss=1.0, val_accuracy=0.5).to_dict()
    assert row["ring_bytes_per_rank"] == 0


# --------------------------------------------------------------------- #
# Checkpoint / resume through the campaign layer
# --------------------------------------------------------------------- #
def test_kill_and_resume_is_bit_identical(tmp_path):
    """A campaign killed at N evals and resumed matches the straight run."""
    path = tmp_path / "camp.ckpt"
    full = build_campaign(tiny_config(max_evaluations=16)).run()

    interrupted = build_campaign(
        tiny_config(
            max_evaluations=8,
            checkpoint=CheckpointConfig(path=str(path), every=1),
        )
    )
    interrupted.run()

    resumed = resume_campaign(path, max_evaluations=16)
    assert resumed.config.search == interrupted.config.search
    assert resumed.config.training == interrupted.config.training
    history = resumed.run()
    assert history_to_dict(history) == history_to_dict(full)


def test_resume_overrides_only_named_fields(tmp_path):
    path = tmp_path / "camp.ckpt"
    build_campaign(
        tiny_config(checkpoint=CheckpointConfig(path=str(path), every=1))
    ).run()
    resumed = resume_campaign(path, max_evaluations=12,
                              checkpoint=CheckpointConfig(path=None))
    assert resumed.config.max_evaluations == 12
    assert resumed.config.checkpoint.path is None
    assert resumed.config.size == 300  # restored, not re-specified


def test_resume_missing_file_raises_file_not_found(tmp_path):
    with pytest.raises(FileNotFoundError):
        resume_campaign(tmp_path / "nope.ckpt")


def test_resume_rejects_pre_campaign_checkpoint_layout(tmp_path):
    """The legacy extra['cli'] pinned-key layout gets a clear error."""
    campaign = build_campaign(tiny_config())
    campaign.run()
    path = tmp_path / "old.ckpt"
    save_checkpoint(campaign.search, path,
                    extra={"cli": {"dataset": "covertype", "epochs": 1}})
    with pytest.raises(ValueError, match="pre-campaign"):
        resume_campaign(path)
    # And a checkpoint with no campaign metadata at all:
    save_checkpoint(campaign.search, path, extra={})
    with pytest.raises(ValueError, match="campaign config"):
        resume_campaign(path)


def test_checkpoint_embeds_versioned_campaign_config(tmp_path):
    path = tmp_path / "camp.ckpt"
    config = tiny_config(checkpoint=CheckpointConfig(path=str(path), every=1))
    build_campaign(config).run()
    data = json.loads(path.read_text())
    embedded = data["extra"]["campaign"]
    assert embedded["config_version"] == 1
    assert CampaignConfig.from_dict(embedded) == config


# --------------------------------------------------------------------- #
# Registries
# --------------------------------------------------------------------- #
def test_registry_register_get_and_errors():
    reg = Registry("thing")
    reg.register("a", 1)
    assert reg.get("a") == 1
    assert "a" in reg and len(reg) == 1 and list(reg) == ["a"]
    with pytest.raises(ValueError, match="already registered"):
        reg.register("a", 2)
    with pytest.raises(ValueError, match="unknown thing"):
        reg.get("b")

    @reg.register("decorated")
    def factory():
        return 42

    assert reg.get("decorated") is factory


def test_builtin_registries_are_populated():
    assert set(EVALUATORS.names()) >= {"simulated", "threaded"}
    assert set(SURROGATES.names()) >= {"forest", "knn", "random"}
    assert set(SEARCH_METHODS.names()) >= {"AgE", "AgEBO", "AgEBO-8-LR",
                                           "AgEBO-8-LR-BS"}
    assert not SEARCH_METHODS.get("AgE").uses_bo
    assert SEARCH_METHODS.get("AgEBO").uses_bo


def test_custom_search_method_runs_through_builder():
    """A user-registered method is a first-class campaign citizen."""
    from repro.core.search import AgingEvolutionBase

    def build(config, space, hp_space, evaluator):
        from repro.core import AgE

        return AgE(space, evaluator,
                   hyperparameters={"batch_size": 32, "learning_rate": 0.02,
                                    "num_ranks": 1},
                   population_size=config.search.population_size,
                   sample_size=config.search.sample_size,
                   seed=config.search.seed, label="custom")

    name = "test-custom-age"
    if name not in SEARCH_METHODS:
        SEARCH_METHODS.register(
            name, SearchMethod(name, build=build, resume=None, uses_bo=False)
        )
    campaign = build_campaign(
        tiny_config(max_evaluations=4,
                    search=SearchConfig(method=name, population_size=4,
                                        sample_size=2, seed=0))
    )
    assert isinstance(campaign.search, AgingEvolutionBase)
    assert campaign.hp_space is None
    history = campaign.run()
    assert len(history) == 4
    assert history.label == "custom"


def test_custom_surrogate_reaches_the_optimizer():
    import numpy as np

    from repro.bo import BayesianOptimizer
    from repro.searchspace.hpspace import default_dataparallel_space

    class MeanSurrogate:
        def fit(self, X, y, rng):
            self._mu = float(np.mean(y))
            return self

        def predict(self, X):
            n = len(X)
            return np.full(n, self._mu), np.ones(n)

    if "test-mean" not in SURROGATES:
        SURROGATES.register("test-mean", MeanSurrogate)
    space = default_dataparallel_space(max_ranks=4)
    opt = BayesianOptimizer(space, surrogate="test-mean", n_initial_points=2)
    opt.tell([space.sample(np.random.default_rng(0)) for _ in range(3)],
             [0.1, 0.2, 0.3])
    assert len(opt.ask(2)) == 2
    with pytest.raises(ValueError, match="unknown surrogate"):
        BayesianOptimizer(space, surrogate="gp")


# --------------------------------------------------------------------- #
# Event-schema lint (tools/check_events.py)
# --------------------------------------------------------------------- #
def test_event_schema_lint_passes(capsys):
    import importlib.util
    from pathlib import Path

    tools = Path(__file__).resolve().parent.parent / "tools" / "check_events.py"
    spec = importlib.util.spec_from_file_location("check_events", tools)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    assert module.main([]) == 0
    out = capsys.readouterr().out
    assert f"{len(EVENT_TYPES)} catalogued event types" in out
