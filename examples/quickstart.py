#!/usr/bin/env python
"""Quickstart: joint NAS + hyperparameter search in ~1 minute.

Runs a miniature AgEBO search on the Covertype-analogue benchmark through
the campaign layer: one typed :class:`~repro.campaign.CampaignConfig`
describes the whole run (dataset, search, training recipe, cluster), and
:func:`~repro.campaign.build_campaign` wires everything — including the
structured event bus, which we use here for live progress and an
in-memory metrics aggregate.

(The raw class API — ``AgEBO(...)``, ``SimulatedEvaluator(...)`` — still
works unchanged; see ``examples/custom_search_space.py`` for that layer.)

Usage:
    python examples/quickstart.py
"""

from __future__ import annotations

from repro.campaign import (
    CampaignConfig,
    EvaluatorConfig,
    MetricsAggregator,
    ProgressReporter,
    SearchConfig,
    TrainingConfig,
    build_campaign,
)


def main() -> None:
    # 1. One typed config describes the whole campaign: the synthetic
    #    Covertype analogue, the paper's architecture space shrunk to 4
    #    variable nodes so the example finishes quickly (paper: 10), real
    #    training shortened to 4 epochs but billed at the paper's 20, and
    #    a simulated 8-worker cluster.
    config = CampaignConfig(
        dataset="covertype",
        size=2000,
        num_nodes=4,
        max_evaluations=60,
        search=SearchConfig(
            method="AgEBO", population_size=10, sample_size=3, seed=42
        ),
        training=TrainingConfig(epochs=4, nominal_epochs=20),
        evaluator=EvaluatorConfig(backend="simulated", num_workers=8),
    )

    # 2. Build the campaign: dataset, spaces, evaluation function,
    #    evaluator and search all come from the config, sharing one
    #    event bus.
    campaign = build_campaign(config)
    print(campaign.dataset.summary())
    print(f"search space: {campaign.space}")

    # 3. Subscribe to the structured event stream: a progress line every
    #    10 evaluations, plus utilization/retry accounting.
    campaign.subscribe(ProgressReporter(every=10))
    metrics = campaign.subscribe(MetricsAggregator())

    # 4. Search until 60 evaluations have completed.
    history = campaign.run()

    # 5. Inspect the result.
    best = history.best()
    spec = campaign.space.decode(best.config.arch)
    print(f"\nevaluated {len(history)} architectures "
          f"in {campaign.evaluator.now:.0f} simulated minutes "
          f"({metrics.utilization:.0%} worker utilization)")
    print(f"best validation accuracy: {best.objective:.4f}")
    print(f"best hyperparameters:     batch_size={best.config.batch_size}, "
          f"learning_rate={best.config.learning_rate:.5f}, "
          f"num_ranks={best.config.num_ranks}")
    print("best architecture:")
    for i, op in enumerate(spec.node_ops, start=1):
        desc = "identity" if op.is_identity else f"Dense({op.units}, {op.activation})"
        print(f"  node {i}: {desc}")
    if spec.skips:
        print(f"  skip connections: {sorted(spec.skips)}")


if __name__ == "__main__":
    main()
