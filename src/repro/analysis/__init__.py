"""Analysis utilities that turn search histories into the paper's figures.

- :mod:`repro.analysis.trajectory` — best-so-far curves (Figs. 3, 4, 6).
- :mod:`repro.analysis.top_configs` — high-performer counting (Figs. 5, 8)
  and top-k hyperparameter tables (Table III).
- :mod:`repro.analysis.pca` — from-scratch PCA (Fig. 7).
- :mod:`repro.analysis.utilization` — node-utilization accounting (§IV-C).
"""

from repro.analysis.trajectory import best_so_far_curve, curve_on_grid, time_to_accuracy
from repro.analysis.top_configs import (
    count_unique_high_performers,
    high_performer_threshold,
    top_fraction_records,
    top_k_hyperparameter_table,
)
from repro.analysis.pca import PCA
from repro.analysis.utilization import utilization_summary
from repro.analysis.importance import hyperparameter_importance, marginal_curve
from repro.analysis.report import markdown_report

__all__ = [
    "hyperparameter_importance",
    "marginal_curve",
    "markdown_report",
    "best_so_far_curve",
    "curve_on_grid",
    "time_to_accuracy",
    "high_performer_threshold",
    "count_unique_high_performers",
    "top_k_hyperparameter_table",
    "top_fraction_records",
    "PCA",
    "utilization_summary",
]
