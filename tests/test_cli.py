"""Tests for the command-line interface."""

from __future__ import annotations

import io

import pytest

from repro.cli import build_parser, main


def run_cli(argv) -> str:
    out = io.StringIO()
    code = main(argv, out=out)
    assert code == 0
    return out.getvalue()


def test_datasets_command_lists_all():
    text = run_cli(["datasets"])
    for name in ("covertype", "airlines", "albert", "dionis"):
        assert name in text
    assert "355 classes" in text


def test_search_command_agebo_smoke():
    text = run_cli(
        [
            "search",
            "--dataset",
            "covertype",
            "--method",
            "AgEBO",
            "--size",
            "800",
            "--num-nodes",
            "2",
            "--epochs",
            "2",
            "--max-evaluations",
            "6",
            "--workers",
            "3",
            "--population",
            "4",
            "--sample",
            "2",
        ]
    )
    assert "AgEBO: " in text
    assert "evaluations in" in text
    assert "val acc" in text


def test_search_command_age_variant():
    text = run_cli(
        [
            "search",
            "--dataset",
            "airlines",
            "--method",
            "AgE",
            "--num-ranks",
            "2",
            "--size",
            "800",
            "--num-nodes",
            "2",
            "--epochs",
            "2",
            "--max-evaluations",
            "5",
            "--population",
            "4",
            "--sample",
            "2",
        ]
    )
    assert "AgE-2:" in text


def test_baseline_command_autopytorch():
    text = run_cli(
        ["baseline", "--dataset", "covertype", "--system", "autopytorch", "--size", "800"]
    )
    assert "Auto-PyTorch-like" in text
    assert "best val=" in text


def test_parser_rejects_unknown_dataset():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["search", "--dataset", "mnist"])


def test_parser_rejects_unknown_method():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["search", "--dataset", "covertype", "--method", "BOHB"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_search_requires_dataset_unless_resuming():
    with pytest.raises(SystemExit, match="--dataset"):
        main(["search", "--max-evaluations", "4"], out=io.StringIO())


def test_search_checkpoint_resume_round_trip(tmp_path):
    """--resume continues a checkpointed campaign to a history identical
    to the uninterrupted run, restoring --dataset etc. from the file."""
    base = [
        "search", "--dataset", "covertype", "--method", "AgEBO",
        "--size", "800", "--num-nodes", "2", "--epochs", "2",
        "--workers", "3", "--population", "4", "--sample", "2",
    ]
    full = tmp_path / "full.json"
    run_cli(base + ["--max-evaluations", "10", "--save-history", str(full)])

    ck = tmp_path / "camp.ckpt"
    run_cli(base + ["--max-evaluations", "5", "--checkpoint", str(ck)])

    resumed = tmp_path / "resumed.json"
    text = run_cli([
        "search", "--resume", str(ck),
        "--max-evaluations", "10", "--save-history", str(resumed),
    ])
    assert "resuming campaign" in text

    import json

    assert json.loads(full.read_text()) == json.loads(resumed.read_text())


def test_search_with_fault_injection_penalizes():
    text = run_cli([
        "search", "--dataset", "covertype", "--size", "800",
        "--num-nodes", "2", "--epochs", "2", "--max-evaluations", "8",
        "--workers", "3", "--population", "4", "--sample", "2",
        "--crash-prob", "0.4", "--fault-seed", "1", "--on-error", "penalize",
    ])
    assert "penalized" in text


def test_search_command_saves_history_and_report(tmp_path):
    hist = tmp_path / "h.json"
    rep = tmp_path / "r.md"
    text = run_cli(
        [
            "search", "--dataset", "covertype", "--method", "AgEBO",
            "--size", "800", "--num-nodes", "2", "--epochs", "2",
            "--max-evaluations", "6", "--workers", "3",
            "--population", "4", "--sample", "2",
            "--save-history", str(hist), "--report", str(rep),
        ]
    )
    assert hist.exists() and rep.exists()
    from repro.core import load_history

    loaded = load_history(hist)
    assert len(loaded) >= 6
    assert rep.read_text().startswith("# Search report")
    assert "history written" in text and "report written" in text
