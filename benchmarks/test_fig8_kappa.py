"""Figure 8: exploration/exploitation (κ) study on Covertype and Dionis.

Paper: AgEBO with κ = 0.001 (strong exploitation) finds 1-2 orders of
magnitude more unique high-performing architectures, 2-3x faster, than
κ = 1.96 (balanced) and κ = 19.6 (strong exploration).
"""

from __future__ import annotations

from common import format_table, get_scale, report, run_search
from repro.analysis import count_unique_high_performers, high_performer_threshold

KAPPAS = (0.001, 1.96, 19.6)
DATASETS = ("covertype", "dionis")


def run_experiment():
    out = {}
    for name in DATASETS:
        histories = {k: run_search(name, "AgEBO", seed=0, kappa=k)[0] for k in KAPPAS}
        threshold = high_performer_threshold(
            list(histories.values()), quantile=get_scale().hp_quantile
        )
        out[name] = {"threshold": threshold, "counts": {}}
        for k, hist in histories.items():
            times, cum = count_unique_high_performers(hist, threshold)
            out[name]["counts"][k] = {
                "total": int(cum[-1]) if cum.size else 0,
                "first_time": float(times[0]) if times.size else None,
                "best": hist.best().objective,
            }
    return out


def test_fig8_kappa(benchmark):
    out = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = []
    for name, r in out.items():
        for k in KAPPAS:
            c = r["counts"][k]
            rows.append(
                [
                    name,
                    k,
                    c["total"],
                    "-" if c["first_time"] is None else round(c["first_time"], 1),
                    round(c["best"], 4),
                ]
            )
    report(
        "fig8_kappa",
        format_table(
            "Fig. 8 — unique high performers vs UCB κ (threshold = min scale-quantile)",
            ["dataset", "kappa", "unique high performers", "first at (min)", "best val acc"],
            rows,
        ),
    )
    # Shape: strong exploitation (κ=0.001) never trails strong exploration
    # (κ=19.6) in high-performer count, and wins on at least one data set.
    wins = 0
    for name, r in out.items():
        c = r["counts"]
        assert c[0.001]["total"] >= c[19.6]["total"], name
        if c[0.001]["total"] > max(c[1.96]["total"], c[19.6]["total"]):
            wins += 1
    assert wins >= 1
