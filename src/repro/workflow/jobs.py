"""Job records flowing through the evaluator."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

import numpy as np

__all__ = ["JobState", "EvaluationResult", "Job", "job_to_dict", "job_from_dict"]


class JobState(enum.Enum):
    PENDING = "pending"  # submitted, waiting for a free worker
    RUNNING = "running"
    RETRYING = "retrying"  # a failed attempt is waiting to be re-run
    DONE = "done"
    FAILED = "failed"  # fault policy exhausted; carries a penalized result


@dataclass
class EvaluationResult:
    """What an evaluation function returns.

    Attributes
    ----------
    objective:
        The scalar to maximize (validation accuracy in the paper).
    duration:
        Evaluation duration in simulated minutes.  The
        :class:`~repro.workflow.evaluator.ThreadedEvaluator` overrides this
        with measured wall-clock when asked to.
    metadata:
        Free-form extras (parameter count, epoch histories, ...).
    """

    objective: float
    duration: float
    metadata: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError(f"duration must be >= 0, got {self.duration}")


@dataclass
class Job:
    """One evaluation tracked by an evaluator.

    ``retries`` counts completed failed attempts that were re-run under a
    retry fault policy; ``attempt`` is a monotonically increasing scheduling
    epoch (bumped on every start and on worker-failure rescheduling) used to
    invalidate stale completion events; ``error`` holds the most recent
    failure description, if any.  ``cache_hit`` marks a job whose result was
    served from an :class:`~repro.workflow.cache.EvaluationCache` without
    re-running the evaluation (such jobs are credited zero busy time).
    """

    job_id: int
    config: Any
    state: JobState = JobState.PENDING
    submit_time: float = 0.0
    start_time: float = 0.0
    end_time: float = 0.0
    worker: int = -1
    result: EvaluationResult | None = None
    retries: int = 0
    attempt: int = 0
    error: str | None = None
    cache_hit: bool = False

    @property
    def objective(self) -> float:
        if self.result is None:
            raise RuntimeError(f"job {self.job_id} has no result yet")
        return self.result.objective

    @property
    def queue_delay(self) -> float:
        """Time spent waiting for a worker."""
        return self.start_time - self.submit_time


# --------------------------------------------------------------------- #
# Checkpoint (de)serialization
# --------------------------------------------------------------------- #
def _jsonable_metadata(metadata: dict[str, Any]) -> dict[str, Any]:
    """Scalar and list-of-scalar metadata entries; everything else dropped."""
    out: dict[str, Any] = {}
    for key, value in metadata.items():
        if isinstance(value, (bool, int, float, str)):
            out[key] = value
        elif isinstance(value, (np.integer, np.floating)):
            out[key] = value.item()
        elif isinstance(value, (list, tuple)) and all(
            isinstance(v, (bool, int, float, str, np.integer, np.floating)) for v in value
        ):
            out[key] = [v.item() if isinstance(v, (np.integer, np.floating)) else v for v in value]
    return out


def _config_to_jsonable(config: Any) -> Any:
    """Encode a job config; ModelConfig gets a tagged representation."""
    if hasattr(config, "arch") and hasattr(config, "hyperparameters"):
        return {
            "__model_config__": {
                "arch": np.asarray(config.arch).tolist(),
                "hyperparameters": dict(config.hyperparameters),
            }
        }
    return config


def _config_from_jsonable(data: Any) -> Any:
    if isinstance(data, dict) and "__model_config__" in data:
        from repro.core.config import ModelConfig  # lazy: workflow must not import core eagerly

        inner = data["__model_config__"]
        return ModelConfig(
            arch=np.asarray(inner["arch"], dtype=np.int64),
            hyperparameters=dict(inner["hyperparameters"]),
        )
    return data


def job_to_dict(job: Job) -> dict[str, Any]:
    """JSON-safe snapshot of a job (used by evaluator checkpoints)."""
    return {
        "job_id": job.job_id,
        "config": _config_to_jsonable(job.config),
        "state": job.state.value,
        "submit_time": job.submit_time,
        "start_time": job.start_time,
        "end_time": job.end_time,
        "worker": job.worker,
        "retries": job.retries,
        "attempt": job.attempt,
        "error": job.error,
        "cache_hit": job.cache_hit,
        "result": None
        if job.result is None
        else {
            "objective": job.result.objective,
            "duration": job.result.duration,
            "metadata": _jsonable_metadata(job.result.metadata),
        },
    }


def job_from_dict(data: dict[str, Any]) -> Job:
    """Inverse of :func:`job_to_dict`."""
    result = data.get("result")
    return Job(
        job_id=int(data["job_id"]),
        config=_config_from_jsonable(data["config"]),
        state=JobState(data["state"]),
        submit_time=float(data["submit_time"]),
        start_time=float(data["start_time"]),
        end_time=float(data["end_time"]),
        worker=int(data["worker"]),
        retries=int(data.get("retries", 0)),
        attempt=int(data.get("attempt", 0)),
        error=data.get("error"),
        cache_hit=bool(data.get("cache_hit", False)),
        result=None
        if result is None
        else EvaluationResult(
            objective=float(result["objective"]),
            duration=float(result["duration"]),
            metadata=dict(result.get("metadata", {})),
        ),
    )
