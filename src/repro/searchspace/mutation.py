"""The AgE mutation operator.

Per the paper (§III-C): "first randomly selecting a variable node and then
choosing (again at random) a value for that node excluding the current
value".  Both op nodes and skip-connection nodes are decision variables of
the search space; by default mutation may target either (matching the
DeepHyper implementation), and ``mutate_skips=False`` restricts mutation to
op nodes for ablation.
"""

from __future__ import annotations

import numpy as np

from repro.searchspace.archspace import ArchitectureSpace

__all__ = ["mutate_architecture"]


def mutate_architecture(
    space: ArchitectureSpace,
    vector: np.ndarray,
    rng: np.random.Generator,
    mutate_skips: bool = True,
) -> np.ndarray:
    """Return a child vector differing from ``vector`` in exactly one variable."""
    space.validate(vector)
    child = np.array(vector, dtype=np.int64, copy=True)
    n_targets = space.num_variables if mutate_skips else space.num_nodes
    idx = int(rng.integers(n_targets))
    card = int(space.variable_cardinalities()[idx])
    current = int(child[idx])
    # Sample uniformly among the card-1 other values.
    offset = int(rng.integers(1, card))
    child[idx] = (current + offset) % card
    return child
