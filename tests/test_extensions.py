"""Tests for the future-work extensions: transfer warm-start and the
multi-node data-parallel cost model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bo import BayesianOptimizer
from repro.core import AgEBO, EvaluationRecord, ModelConfig, SearchHistory
from repro.core.transfer import (
    extract_hp_observations,
    rank_normalize,
    warm_start_optimizer,
)
from repro.dataparallel import MultiNodeCostModel, TrainingCostModel
from repro.searchspace import ArchitectureSpace, default_dataparallel_space
from repro.workflow import EvaluationResult, SimulatedEvaluator


# --------------------------------------------------------------------- #
# rank_normalize
# --------------------------------------------------------------------- #
def test_rank_normalize_basic():
    out = rank_normalize([0.3, 0.1, 0.9])
    np.testing.assert_allclose(out, [0.5, 0.0, 1.0])


def test_rank_normalize_ties_averaged():
    out = rank_normalize([0.5, 0.5, 1.0, 0.0])
    assert out[0] == out[1]
    assert out[3] == 0.0 and out[2] == 1.0


def test_rank_normalize_edge_sizes():
    assert rank_normalize([]).size == 0
    np.testing.assert_allclose(rank_normalize([7.0]), [0.5])


def test_rank_normalize_invariant_to_monotone_transform():
    a = np.array([0.1, 0.4, 0.8, 0.2])
    np.testing.assert_allclose(rank_normalize(a), rank_normalize(a * 100 + 3))


# --------------------------------------------------------------------- #
# extract / warm start
# --------------------------------------------------------------------- #
def make_history():
    h = SearchHistory()
    for i, (acc, n) in enumerate([(0.9, 2), (0.5, 8), (0.7, 4)]):
        h.add(
            EvaluationRecord(
                config=ModelConfig(
                    np.array([i]),
                    {"batch_size": 64, "learning_rate": 0.01, "num_ranks": n},
                ),
                objective=acc,
                duration=1.0,
                submit_time=0.0,
                start_time=0.0,
                end_time=float(i),
            )
        )
    return h


def test_extract_hp_observations_ranks_and_sorts():
    configs, values = extract_hp_observations(make_history())
    assert values == [1.0, 0.5, 0.0]  # sorted best-first, rank-normalized
    assert configs[0]["num_ranks"] == 2  # the best record's config


def test_extract_top_fraction():
    configs, values = extract_hp_observations(make_history(), top_fraction=0.34)
    assert len(configs) == 1
    assert configs[0]["num_ranks"] == 2


def test_extract_validation():
    with pytest.raises(ValueError):
        extract_hp_observations(make_history(), top_fraction=0.0)


def test_warm_start_optimizer_installs_and_skips_invalid():
    space = default_dataparallel_space()
    opt = BayesianOptimizer(space, seed=0)
    good = {"batch_size": 64, "learning_rate": 0.01, "num_ranks": 2}
    bad = {"batch_size": 100, "learning_rate": 0.01, "num_ranks": 2}  # invalid bs
    installed = warm_start_optimizer(opt, [(good, 0.9), (bad, 0.5)])
    assert installed == 1
    assert opt.num_observations == 1


def test_agebo_warm_start_skips_random_phase():
    """With enough transferred observations the first ask is model-driven."""
    space = ArchitectureSpace(num_nodes=3)

    def run(config):
        return EvaluationResult(objective=0.5, duration=1.0)

    hp_space = default_dataparallel_space()
    rng = np.random.default_rng(0)
    # Prior knowledge: num_ranks=4 region was best.
    prior = []
    for _ in range(12):
        cfg = hp_space.sample(rng)
        score = 1.0 if cfg["num_ranks"] == 4 else 0.1
        prior.append((cfg, score))
    ev = SimulatedEvaluator(run, num_workers=2)
    search = AgEBO(
        space, hp_space, ev, population_size=4, sample_size=2,
        n_initial_points=10, warm_start=prior, seed=0,
    )
    assert search.warm_started == 12
    proposals = search.optimizer.ask(10)
    ranks = [c["num_ranks"] for c in proposals]
    # Strong exploitation + transferred optimum => proposals concentrate.
    assert ranks.count(4) >= 7


def test_transfer_between_real_searches(tiny_covertype):
    """End-to-end: warm-starting from a prior run is at least harmless."""
    from repro.core import ModelEvaluation

    space = ArchitectureSpace(num_nodes=2)
    hp_space = default_dataparallel_space()

    def run_once(warm_start=None, seed=0):
        run_fn = ModelEvaluation(tiny_covertype, space, epochs=2)
        ev = SimulatedEvaluator(run_fn, num_workers=4)
        search = AgEBO(
            space, hp_space, ev, population_size=4, sample_size=2,
            seed=seed, n_initial_points=6, warm_start=warm_start,
        )
        return search.search(max_evaluations=10)

    first = run_once()
    obs = list(zip(*extract_hp_observations(first, top_fraction=0.5)))
    second = run_once(warm_start=obs, seed=1)
    assert len(second) >= 10
    assert 0.0 <= second.best().objective <= 1.0


# --------------------------------------------------------------------- #
# Multi-node cost model
# --------------------------------------------------------------------- #
def test_multinode_matches_single_node_within_node():
    single = TrainingCostModel()
    multi = MultiNodeCostModel(ranks_per_node=8)
    for n in (1, 2, 4, 8):
        a = single.training_minutes(30_000, 244_025, 256, n, 20)
        b = multi.training_minutes(30_000, 244_025, 256, n, 20)
        np.testing.assert_allclose(a, b, rtol=1e-9)


def test_multinode_counts_nodes():
    multi = MultiNodeCostModel(ranks_per_node=8)
    assert multi.num_nodes(8) == 1
    assert multi.num_nodes(9) == 2
    assert multi.num_nodes(64) == 8


def test_multinode_network_term_appears_past_one_node():
    multi = MultiNodeCostModel(ranks_per_node=8)
    within = multi.allreduce_seconds(30_000, 8)
    across = multi.allreduce_seconds(30_000, 16)
    assert across > within


def test_multinode_still_speeds_up_but_subideally():
    multi = MultiNodeCostModel(ranks_per_node=8)
    t8 = multi.training_minutes(30_000, 244_025, 256, 8, 20)
    t32 = multi.training_minutes(30_000, 244_025, 256, 32, 20)
    assert t32 < t8  # more ranks still help
    # But 4x the ranks gives < 4x the speedup (network overhead).
    assert t8 / t32 < 4.0


def test_multinode_slow_network_hurts():
    fast = MultiNodeCostModel(ranks_per_node=8, network_bandwidth_Bps=12.5e9)
    slow = MultiNodeCostModel(ranks_per_node=8, network_bandwidth_Bps=0.125e9)
    assert slow.training_minutes(30_000, 244_025, 256, 32, 20) > fast.training_minutes(
        30_000, 244_025, 256, 32, 20
    )


def test_multinode_validation():
    with pytest.raises(ValueError):
        MultiNodeCostModel(ranks_per_node=0)
    with pytest.raises(ValueError):
        MultiNodeCostModel(network_bandwidth_Bps=-1)
