"""The campaign layer: one typed config, one builder, one event spine.

This package is the single wiring layer above the raw class API
(``AgE(...)``, ``AgEBO(...)``, the evaluator constructors — all of which
keep working unchanged):

- :mod:`repro.campaign.config` — the typed config tree
  (:class:`CampaignConfig` composing search / training / evaluator /
  fault / checkpoint configs) with validation and lossless
  ``to_dict``/``from_dict``;
- :mod:`repro.campaign.registry` — registries for evaluator backends,
  search methods and BO surrogates, so new backends plug in without
  touching the CLI;
- :mod:`repro.campaign.builder` — :func:`build_campaign` /
  :func:`resume_campaign`, constructing every component from the config
  and threading one :class:`EventBus` through all layers;
- :mod:`repro.campaign.events` — the typed lifecycle events, the bus and
  the built-in subscribers (JSONL log, progress reporter, metrics
  aggregator).

Quickstart::

    from repro.campaign import CampaignConfig, SearchConfig, build_campaign

    config = CampaignConfig(dataset="covertype",
                            search=SearchConfig(method="AgEBO", seed=42))
    campaign = build_campaign(config)
    history = campaign.run()
"""

from repro.campaign.config import (
    CONFIG_VERSION,
    CampaignConfig,
    CheckpointConfig,
    EvaluatorConfig,
    FaultConfig,
    SearchConfig,
    TrainingConfig,
)
from repro.campaign.events import (
    EVENT_TYPES,
    BOTellAsk,
    CacheHit,
    CacheStore,
    CampaignEvent,
    CampaignFinished,
    CampaignStarted,
    CheckpointWritten,
    EpochEnd,
    EventBus,
    FaultInjected,
    JobGathered,
    JobRetried,
    JobSubmitted,
    JsonlEventLog,
    MetricsAggregator,
    PopulationUpdated,
    ProgressReporter,
    WorkerDied,
    load_events,
    replay_metrics,
)
from repro.campaign.registry import (
    EVALUATORS,
    SEARCH_METHODS,
    SURROGATES,
    Registry,
    SearchMethod,
)
from repro.campaign.builder import Campaign, build_campaign, resume_campaign

__all__ = [
    # config
    "CONFIG_VERSION",
    "CampaignConfig",
    "SearchConfig",
    "TrainingConfig",
    "EvaluatorConfig",
    "FaultConfig",
    "CheckpointConfig",
    # builder
    "Campaign",
    "build_campaign",
    "resume_campaign",
    # registries
    "Registry",
    "SearchMethod",
    "EVALUATORS",
    "SEARCH_METHODS",
    "SURROGATES",
    # events
    "CampaignEvent",
    "CampaignStarted",
    "CampaignFinished",
    "JobSubmitted",
    "JobGathered",
    "JobRetried",
    "WorkerDied",
    "CacheHit",
    "CacheStore",
    "PopulationUpdated",
    "BOTellAsk",
    "EpochEnd",
    "FaultInjected",
    "CheckpointWritten",
    "EVENT_TYPES",
    "EventBus",
    "JsonlEventLog",
    "ProgressReporter",
    "MetricsAggregator",
    "load_events",
    "replay_metrics",
]
