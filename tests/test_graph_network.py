"""Unit tests for the skip-connection graph network builder."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import GraphNetwork, Tensor
from repro.nn.graph_network import ArchitectureSpec, NodeOp


def make_net(node_ops, skips=frozenset(), input_dim=6, n_classes=3, seed=0):
    return GraphNetwork(
        ArchitectureSpec(tuple(node_ops), frozenset(skips)),
        input_dim,
        n_classes,
        np.random.default_rng(seed),
    )


# --------------------------------------------------------------------- #
# Spec validation
# --------------------------------------------------------------------- #
def test_nodeop_identity_requires_both_none():
    with pytest.raises(ValueError):
        NodeOp(32, None)
    with pytest.raises(ValueError):
        NodeOp(None, "relu")


def test_nodeop_rejects_nonpositive_units():
    with pytest.raises(ValueError):
        NodeOp(0, "relu")


def test_spec_rejects_consecutive_skip():
    # (1, 2) duplicates the sequential edge between node 1 and node 2.
    with pytest.raises(ValueError):
        ArchitectureSpec((NodeOp(8, "relu"), NodeOp(8, "relu")), frozenset({(1, 2)}))


def test_spec_rejects_out_of_range_skip():
    with pytest.raises(ValueError):
        ArchitectureSpec((NodeOp(8, "relu"),), frozenset({(0, 5)}))


def test_spec_active_depth_counts_non_identity():
    spec = ArchitectureSpec((NodeOp(8, "relu"), NodeOp(None, None), NodeOp(4, "tanh")))
    assert spec.active_depth() == 2


# --------------------------------------------------------------------- #
# Construction / shapes
# --------------------------------------------------------------------- #
def test_forward_output_shape():
    net = make_net([NodeOp(16, "relu"), NodeOp(8, "tanh")])
    out = net.forward(np.zeros((5, 6)))
    assert out.shape == (5, 3)


def test_all_identity_network_is_affine():
    """Identity ops with no skips collapse to a single linear map."""
    net = make_net([NodeOp(None, None)] * 3)
    x = np.random.default_rng(1).normal(size=(10, 6))
    a = net.forward(x).data
    b = net.forward(2.0 * x).data
    c = net.forward(np.zeros((10, 6))).data
    np.testing.assert_allclose(2.0 * (a - c), b - c, rtol=1e-10)


def test_param_count_no_skips():
    net = make_net([NodeOp(16, "relu"), NodeOp(8, "tanh")], input_dim=6, n_classes=3)
    expected = (6 * 16 + 16) + (16 * 8 + 8) + (8 * 3 + 3)
    assert net.num_parameters() == expected


def test_param_count_with_skip_projection():
    # Skip (0, 2): projects input (6) to width of node 1 (16).
    net = make_net(
        [NodeOp(16, "relu"), NodeOp(8, "tanh")], skips={(0, 2)}, input_dim=6, n_classes=3
    )
    base = (6 * 16 + 16) + (16 * 8 + 8) + (8 * 3 + 3)
    assert net.num_parameters() == base + (6 * 16 + 16)


def test_skip_changes_output():
    """An active skip must alter the function computed."""
    x = np.random.default_rng(2).normal(size=(4, 6))
    plain = make_net([NodeOp(16, "relu"), NodeOp(8, "tanh")], seed=3).forward(x).data
    skipped = make_net(
        [NodeOp(16, "relu"), NodeOp(8, "tanh")], skips={(0, 2)}, seed=3
    ).forward(x).data
    assert not np.allclose(plain, skipped)


def test_skip_through_identity_node_width_propagates():
    """Identity node keeps its input width; projections must target it."""
    net = make_net(
        [NodeOp(16, "relu"), NodeOp(None, None), NodeOp(8, "swish")],
        skips={(0, 3), (1, 4)},
    )
    out = net.forward(np.zeros((2, 6)))
    assert out.shape == (2, 3)


def test_skip_into_output_node():
    net = make_net([NodeOp(12, "relu"), NodeOp(12, "relu"), NodeOp(12, "relu")], skips={(1, 4)})
    assert net.forward(np.zeros((2, 6))).shape == (2, 3)


def test_input_width_mismatch_raises():
    net = make_net([NodeOp(8, "relu")])
    with pytest.raises(ValueError):
        net.forward(np.zeros((3, 7)))


def test_invalid_dims_raise():
    spec = ArchitectureSpec((NodeOp(8, "relu"),))
    with pytest.raises(ValueError):
        GraphNetwork(spec, 0, 3, np.random.default_rng(0))
    with pytest.raises(ValueError):
        GraphNetwork(spec, 5, 1, np.random.default_rng(0))


# --------------------------------------------------------------------- #
# Gradients flow everywhere
# --------------------------------------------------------------------- #
def test_all_parameters_receive_gradients():
    net = make_net(
        [NodeOp(16, "relu"), NodeOp(None, None), NodeOp(8, "swish")],
        skips={(0, 2), (0, 3), (1, 4)},
    )
    x = np.random.default_rng(0).normal(size=(8, 6))
    out = net.forward(x)
    out.sum().backward()
    for p in net.parameters():
        assert p.grad is not None, f"parameter {p.name} got no gradient"
        assert np.isfinite(p.grad).all()


def test_deterministic_build_per_seed():
    a = make_net([NodeOp(8, "relu")], seed=9)
    b = make_net([NodeOp(8, "relu")], seed=9)
    for pa, pb in zip(a.parameters(), b.parameters()):
        np.testing.assert_array_equal(pa.data, pb.data)


# --------------------------------------------------------------------- #
# Inference helpers
# --------------------------------------------------------------------- #
def test_predict_logits_batched_matches_full():
    net = make_net([NodeOp(16, "relu")])
    x = np.random.default_rng(4).normal(size=(50, 6))
    full = net.forward(x).data
    batched = net.predict_logits(x, batch_size=7)
    np.testing.assert_allclose(full, batched, rtol=1e-12)


def test_predict_logits_empty_input():
    net = make_net([NodeOp(16, "relu")])
    out = net.predict_logits(np.zeros((0, 6)))
    assert out.shape == (0, 3)


def test_predict_returns_class_indices():
    net = make_net([NodeOp(16, "relu")])
    preds = net.predict(np.random.default_rng(5).normal(size=(9, 6)))
    assert preds.shape == (9,)
    assert set(np.unique(preds)) <= {0, 1, 2}


def test_get_set_weights_roundtrip():
    net = make_net([NodeOp(16, "relu"), NodeOp(8, "tanh")], skips={(0, 2)})
    x = np.random.default_rng(6).normal(size=(4, 6))
    before = net.forward(x).data.copy()
    weights = net.get_weights()
    for p in net.parameters():
        p.data += 1.0
    assert not np.allclose(net.forward(x).data, before)
    net.set_weights(weights)
    np.testing.assert_allclose(net.forward(x).data, before)


def test_set_weights_shape_mismatch():
    net = make_net([NodeOp(16, "relu")])
    weights = net.get_weights()
    weights[0] = np.zeros((1, 1))
    with pytest.raises(ValueError):
        net.set_weights(weights)


def test_set_weights_length_mismatch():
    net = make_net([NodeOp(16, "relu")])
    with pytest.raises(ValueError):
        net.set_weights(net.get_weights()[:-1])


def test_forward_accepts_tensor_input():
    net = make_net([NodeOp(8, "relu")])
    out = net.forward(Tensor(np.zeros((2, 6))))
    assert out.shape == (2, 3)
