"""Job records flowing through the evaluator."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

__all__ = ["JobState", "EvaluationResult", "Job"]


class JobState(enum.Enum):
    PENDING = "pending"  # submitted, waiting for a free worker
    RUNNING = "running"
    DONE = "done"


@dataclass
class EvaluationResult:
    """What an evaluation function returns.

    Attributes
    ----------
    objective:
        The scalar to maximize (validation accuracy in the paper).
    duration:
        Evaluation duration in simulated minutes.  The
        :class:`~repro.workflow.evaluator.ThreadedEvaluator` overrides this
        with measured wall-clock when asked to.
    metadata:
        Free-form extras (parameter count, epoch histories, ...).
    """

    objective: float
    duration: float
    metadata: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError(f"duration must be >= 0, got {self.duration}")


@dataclass
class Job:
    """One evaluation tracked by an evaluator."""

    job_id: int
    config: Any
    state: JobState = JobState.PENDING
    submit_time: float = 0.0
    start_time: float = 0.0
    end_time: float = 0.0
    worker: int = -1
    result: EvaluationResult | None = None

    @property
    def objective(self) -> float:
        if self.result is None:
            raise RuntimeError(f"job {self.job_id} has no result yet")
        return self.result.objective

    @property
    def queue_delay(self) -> float:
        """Time spent waiting for a worker."""
        return self.start_time - self.submit_time
