"""Ask/tell asynchronous Bayesian optimizer (the AgEBO ``optimizer`` object).

Mirrors the scikit-optimize interface the paper uses:

- :meth:`tell` ingests (hyperparameter config, validation accuracy) pairs;
- :meth:`ask` returns ``k`` configurations chosen by maximizing UCB over a
  random candidate pool, batching via the constant-liar strategy so the
  whole batch can be dispatched without blocking on evaluations.

While fewer than ``n_initial_points`` observations exist, :meth:`ask`
returns random samples (the "random initialization phase" of §IV-D).
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

import numpy as np

from repro.bo.acquisition import upper_confidence_bound
from repro.bo.forest import RandomForestRegressor
from repro.bo.liar import constant_lie
from repro.bo.surrogate import KNNSurrogate
from repro.searchspace.hpspace import HyperparameterSpace

__all__ = ["BayesianOptimizer"]


class BayesianOptimizer:
    """Asynchronous BO over a :class:`HyperparameterSpace`.

    Parameters
    ----------
    space:
        The hyperparameter space (numeric encoding comes from it).
    kappa:
        UCB exploration weight; the paper's AgEBO default is 0.001
        (strong exploitation), with {1.96, 19.6} studied in Fig. 8.
    n_initial_points:
        Observations required before the surrogate is trusted.
    candidate_pool_size:
        Random candidates scored per selection.
    lie_strategy:
        Constant-liar dummy value policy (paper: ``"mean"``).
    refit_every_lie:
        If True (paper behaviour) the surrogate is refit after each lie;
        False refits once per :meth:`ask` batch (cheaper, less diverse).
    surrogate:
        ``"forest"`` (paper), ``"knn"`` (ablation) or ``"random"``
        (ablation baseline: :meth:`ask` always samples uniformly).
    """

    def __init__(
        self,
        space: HyperparameterSpace,
        kappa: float = 0.001,
        n_initial_points: int = 10,
        candidate_pool_size: int = 500,
        lie_strategy: str = "mean",
        refit_every_lie: bool = True,
        surrogate: str = "forest",
        forest: RandomForestRegressor | None = None,
        seed: int | np.random.Generator = 0,
    ) -> None:
        if kappa < 0:
            raise ValueError("kappa must be >= 0")
        if n_initial_points < 1:
            raise ValueError("n_initial_points must be >= 1")
        if candidate_pool_size < 1:
            raise ValueError("candidate_pool_size must be >= 1")
        if surrogate not in ("forest", "knn", "random"):
            # Extension point: the campaign layer's surrogate registry can
            # supply additional surrogates by name.
            from repro.campaign.registry import SURROGATES

            if surrogate not in SURROGATES:
                raise ValueError(
                    f"unknown surrogate {surrogate!r}; built-in: 'forest', 'knn', "
                    f"'random'; registered: {SURROGATES.names()}"
                )
        self.space = space
        self.kappa = kappa
        self.n_initial_points = n_initial_points
        self.candidate_pool_size = candidate_pool_size
        self.lie_strategy = lie_strategy
        self.refit_every_lie = refit_every_lie
        self.surrogate = surrogate
        self._forest_proto = forest or RandomForestRegressor(n_trees=25, max_depth=10)
        self._rng = (
            seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
        )
        self._X: list[np.ndarray] = []
        self._y: list[float] = []

    # ------------------------------------------------------------------ #
    @property
    def num_observations(self) -> int:
        return len(self._y)

    def tell(self, configs: Sequence[Mapping[str, Any]], values: Sequence[float]) -> None:
        """Record finished evaluations (objective = value, maximized)."""
        if len(configs) != len(values):
            raise ValueError(f"got {len(configs)} configs but {len(values)} values")
        for config, value in zip(configs, values):
            self.space.validate(config)
            self._X.append(self.space.to_array(config))
            self._y.append(float(value))

    def ask(self, k: int = 1) -> list[dict[str, Any]]:
        """Propose ``k`` configurations without blocking."""
        if k < 1:
            raise ValueError("k must be >= 1")
        if self.space.num_dimensions == 0:
            # Degenerate space (everything fixed): only the defaults exist.
            return [self.space.sample(self._rng) for _ in range(k)]
        if self.surrogate == "random" or self.num_observations < self.n_initial_points:
            return [self.space.sample(self._rng) for _ in range(k)]

        # Observations + room for k lies in one prefilled matrix: each refit
        # sees a contiguous slice instead of re-stacking a growing list.
        n = self.num_observations
        d = self.space.num_dimensions
        X = np.empty((n + k, d), dtype=float)
        X[:n] = self._X
        y = np.empty(n + k, dtype=float)
        y[:n] = self._y
        lie = constant_lie(y[:n], self.lie_strategy)
        candidates = np.empty((self.candidate_pool_size, d), dtype=float)
        batch: list[dict[str, Any]] = []
        model = self._fit_surrogate(X[:n], y[:n])
        for j in range(k):
            for i in range(self.candidate_pool_size):
                candidates[i] = self.space.sample_array(self._rng)
            mu, sigma = model.predict(candidates)
            scores = upper_confidence_bound(mu, sigma, self.kappa)
            best = candidates[int(np.argmax(scores))].copy()
            batch.append(self.space.from_array(best))
            X[n + j] = best
            y[n + j] = lie
            if self.refit_every_lie and len(batch) < k:
                model = self._fit_surrogate(X[: n + j + 1], y[: n + j + 1])
        return batch

    def _fit_surrogate(self, X: np.ndarray, y: np.ndarray):
        if self.surrogate == "knn":
            return KNNSurrogate().fit(X, y, self._rng)
        if self.surrogate != "forest":
            from repro.campaign.registry import SURROGATES

            return SURROGATES.get(self.surrogate)().fit(X, y, self._rng)
        forest = RandomForestRegressor(
            n_trees=self._forest_proto.n_trees,
            max_depth=self._forest_proto.max_depth,
            min_samples_split=self._forest_proto.min_samples_split,
            max_features=self._forest_proto.max_features,
            bootstrap=self._forest_proto.bootstrap,
            presort=self._forest_proto.presort,
        )
        forest.fit(X, y, self._rng)
        return forest

    # ------------------------------------------------------------------ #
    # Checkpointing: the tell-history plus the RNG state is the complete
    # mutable state — the surrogate is refit from scratch on every ask.
    def state_dict(self) -> dict[str, Any]:
        """JSON-safe snapshot of observations and RNG state."""
        return {
            "X": [np.asarray(x, dtype=float).tolist() for x in self._X],
            "y": [float(v) for v in self._y],
            "rng_state": self._rng.bit_generator.state,
        }

    def load_state(self, state: dict[str, Any]) -> None:
        """Restore a snapshot taken by :meth:`state_dict`."""
        self._X = [np.asarray(x, dtype=float) for x in state["X"]]
        self._y = [float(v) for v in state["y"]]
        self._rng.bit_generator.state = state["rng_state"]

    # ------------------------------------------------------------------ #
    def best(self) -> tuple[dict[str, Any], float]:
        """Best observed (config, value) so far."""
        if not self._y:
            raise RuntimeError("no observations yet")
        idx = int(np.argmax(self._y))
        return self.space.from_array(self._X[idx]), self._y[idx]
