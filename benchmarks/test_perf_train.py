"""Perf bench: compiled training plan vs the eager autograd tape.

Times the training hot path at three granularities — single train step,
full validation inference, and a whole :class:`ModelEvaluation` call —
with the compiled plan against the eager reference, and writes the
before/after medians to ``BENCH_train.json`` at the repo root.

Timings are recorded, never asserted.  The only way this bench fails is
the numerical equivalence gate: the compiled plan must reproduce the
eager loss and gradients to 1e-10 on the benched network.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.core import ModelEvaluation
from repro.core.config import ModelConfig
from repro.datasets import load_dataset
from repro.nn import Adam, GraphNetwork, Tensor, softmax_cross_entropy
from repro.nn.compiled import assert_plan_equivalence
from repro.perf import BenchEntry, median_time, write_bench_json
from repro.searchspace import ArchitectureSpace

REPO_ROOT = Path(__file__).resolve().parent.parent
BATCH = 256
N_FEATURES = 54
N_CLASSES = 7
STEPS_PER_REP = 20


def _make_model(seed: int = 0) -> GraphNetwork:
    rng = np.random.default_rng(seed)
    space = ArchitectureSpace(num_nodes=5)
    arch = space.random_sample(rng)
    spec = space.decode(arch)
    return GraphNetwork(spec, N_FEATURES, N_CLASSES, np.random.default_rng(seed))


def _make_batches(seed: int = 1, n: int = 4096):
    rng = np.random.default_rng(seed)
    X = rng.standard_normal((n, N_FEATURES))
    y = rng.integers(0, N_CLASSES, size=n)
    return X, y


def test_perf_train_step_and_evaluation():
    model = _make_model()
    X, y = _make_batches()
    Xb, yb = X[:BATCH], y[:BATCH]

    # --- equivalence gate (the only assertion in this bench) ----------- #
    diffs = assert_plan_equivalence(model, Xb, yb, tol=1e-10)
    assert diffs["loss_diff"] <= 1e-10 and diffs["grad_diff"] <= 1e-10

    # --- train step: eager tape vs compiled plan ----------------------- #
    def eager_steps():
        m = _make_model()
        opt = Adam(m.parameters(), lr=0.01)
        for i in range(STEPS_PER_REP):
            lo = (i * BATCH) % (X.shape[0] - BATCH)
            logits = m.forward(Tensor(X[lo : lo + BATCH]))
            loss = softmax_cross_entropy(logits, y[lo : lo + BATCH])
            opt.zero_grad()
            loss.backward()
            opt.step()

    def compiled_steps():
        m = _make_model()
        plan = m.compile()
        opt = Adam(m.parameters(), lr=0.01)
        for i in range(STEPS_PER_REP):
            lo = (i * BATCH) % (X.shape[0] - BATCH)
            plan.loss_and_grad(X[lo : lo + BATCH], y[lo : lo + BATCH])
            opt.step()

    eager_s = median_time(eager_steps) / STEPS_PER_REP
    compiled_s = median_time(compiled_steps) / STEPS_PER_REP
    entries = [
        BenchEntry(
            "train_step",
            eager_s,
            compiled_s,
            meta={"batch_size": BATCH, "steps": STEPS_PER_REP, "num_nodes": 5},
        )
    ]

    # --- full-set inference: eager forward vs plan.predict_logits ------ #
    model_inf = _make_model()
    plan_inf = model_inf.compile()
    entries.append(
        BenchEntry(
            "predict_logits_4096",
            median_time(lambda: model_inf.predict_logits(X)),
            median_time(lambda: plan_inf.predict_logits(X)),
            meta={"rows": X.shape[0]},
        )
    )

    # --- whole evaluation call: backend="eager" vs "compiled" ---------- #
    ds = load_dataset("covertype", size=1500)
    space = ArchitectureSpace(num_nodes=5)
    arch = space.random_sample(np.random.default_rng(3))
    config = ModelConfig(
        arch=arch,
        hyperparameters={"learning_rate": 0.01, "batch_size": 256, "num_ranks": 1},
    )

    def run_eval(backend: str):
        ev = ModelEvaluation(ds, space, epochs=3, nominal_epochs=20, backend=backend)
        return ev(config)

    eval_eager_s = median_time(lambda: run_eval("eager"), repeats=3)
    eval_compiled_s = median_time(lambda: run_eval("compiled"), repeats=3)
    entries.append(
        BenchEntry(
            "model_evaluation",
            eval_eager_s,
            eval_compiled_s,
            meta={"dataset": "covertype", "rows": 1500, "epochs": 3},
        )
    )

    out = write_bench_json(REPO_ROOT / "BENCH_train.json", "train", entries)
    for e in entries:
        print(f"{e.name}: ref {e.reference_s * 1e3:.2f} ms -> "
              f"opt {e.optimized_s * 1e3:.2f} ms ({e.speedup:.1f}x)")
    print(f"written: {out}")


if __name__ == "__main__":
    pytest.main([__file__, "-s"])
