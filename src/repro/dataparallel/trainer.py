"""Synchronous data-parallel training (the Horovod-equivalent loop).

Each epoch, every simulated rank draws micro-batches of ``batch_size`` from
its own shard; per-rank gradients are averaged by the ring-allreduce and a
single Adam update is applied with the linearly scaled learning rate
``n · lr``.  Because all ranks hold identical weights, this is exactly
synchronous data-parallel SGD — the same algebra Horovod executes across
real processes — so the accuracy behaviour as a function of ``(n, lr, bs)``
(including large-effective-batch degradation) emerges for real rather than
being modelled.

Two execution strategies produce that algebra:

- ``rank_mode="batched"`` (default, compiled backend): the ``n``
  micro-batches are stacked into one ``(n·bs, d)`` array and a single
  fused forward/backward recovers *per-rank* gradients directly into an
  allreduce-ready ``(n, P)`` flat matrix
  (:meth:`~repro.nn.compiled.CompiledPlan.loss_and_grads_ranked`); the
  ring/mean reduction then runs as one vectorized flat-buffer kernel and
  the reduced mean lands in the plan's double-buffered gradient views —
  one numpy dispatch chain per step, no per-rank Python loop, no
  defensive gradient copies.
- ``rank_mode="loop"`` — the reference: ``n`` separate forward/backward
  passes and the chunked-list allreduce.  The eager backend always uses
  it, as do degenerate shards (shorter than one micro-batch) and the
  ``fused`` allreduce (which needs no per-rank gradients at all).

Both modes agree to float round-off; the equivalence gate lives in
``tests/test_rank_vectorized.py``.

A ``fused`` fast path computes the same averaged gradient in one
forward/backward over the concatenated global batch; tests assert the two
paths agree to float tolerance.
"""

from __future__ import annotations

import numpy as np

from repro.dataparallel.allreduce import (
    RingReducer,
    allreduce_mean,
    allreduce_mean_flat,
    ring_allreduce_reference,
    ring_transfer_stats,
)
from repro.dataparallel.scaling import linear_scaled_lr
from repro.dataparallel.sharding import shard_indices
from repro.nn.graph_network import GraphNetwork
from repro.nn.losses import softmax_cross_entropy
from repro.nn.metrics import accuracy
from repro.nn.optimizers import Adam
from repro.nn.schedules import GradualWarmup, ReduceLROnPlateau
from repro.nn.trainer import TrainResult

__all__ = ["DataParallelTrainer"]


class DataParallelTrainer:
    """Train a model with ``num_ranks``-way synchronous data parallelism.

    Parameters
    ----------
    num_ranks:
        Number of simulated data-parallel processes ``n``.
    batch_size, learning_rate:
        *Per-rank* micro-batch size ``bs_1`` and *base* learning rate
        ``lr_1``; the trainer applies the linear scaling rule internally.
    allreduce:
        ``"ring"`` runs the simulated ring (default), ``"mean"`` the
        reference naive average, ``"fused"`` the concatenated-batch fast
        path.
    rank_mode:
        ``"batched"`` (default) vectorizes the rank dimension — one fused
        multi-rank forward/backward plus a flat-buffer reduction per step;
        ``"loop"`` runs the reference per-rank Python loop.  The choice
        never changes the numbers (both gated equivalent), only the speed;
        batched silently degrades to the loop where it does not apply
        (eager backend, ``fused`` allreduce, ``n = 1``, or shards shorter
        than one micro-batch).
    backend:
        ``"compiled"`` (default) computes per-rank gradients through the
        model's :class:`~repro.nn.compiled.CompiledPlan`; ``"eager"``
        uses the reference tape.  Both paths agree to float tolerance.
    dtype:
        Optional precision override for the training arrays (``None``
        keeps the model's dtype).
    """

    def __init__(
        self,
        num_ranks: int,
        epochs: int = 20,
        batch_size: int = 256,
        learning_rate: float = 0.01,
        warmup_epochs: int = 5,
        plateau_patience: int = 5,
        allreduce: str = "ring",
        apply_linear_scaling: bool = True,
        keep_best_weights: bool = False,
        backend: str = "compiled",
        dtype=None,
        rank_mode: str = "batched",
    ) -> None:
        if num_ranks < 1:
            raise ValueError("num_ranks must be >= 1")
        if epochs < 0:
            raise ValueError("epochs must be >= 0")
        if allreduce not in ("ring", "mean", "fused"):
            raise ValueError(f"unknown allreduce mode {allreduce!r}")
        if backend not in ("compiled", "eager"):
            raise ValueError(f"backend must be 'compiled' or 'eager', got {backend!r}")
        if rank_mode not in ("batched", "loop"):
            raise ValueError(f"rank_mode must be 'batched' or 'loop', got {rank_mode!r}")
        self.num_ranks = num_ranks
        self.epochs = epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.warmup_epochs = warmup_epochs
        self.plateau_patience = plateau_patience
        self.allreduce = allreduce
        self.apply_linear_scaling = apply_linear_scaling
        self.keep_best_weights = keep_best_weights
        self.backend = backend
        self.dtype = None if dtype is None else np.dtype(dtype)
        self.rank_mode = rank_mode
        # Optional campaign event bus; when set, fit emits one
        # repro.campaign.events.EpochEnd per epoch.
        self.event_bus = None

    def _emit_epoch(
        self,
        epoch: int,
        train_loss: float,
        val_accuracy: float,
        ring_bytes_per_rank: int = 0,
    ) -> None:
        if self.event_bus is not None:
            from repro.campaign.events import EpochEnd

            self.event_bus.emit(
                EpochEnd(
                    epoch=epoch,
                    train_loss=float(train_loss),
                    val_accuracy=float(val_accuracy),
                    num_ranks=self.num_ranks,
                    ring_bytes_per_rank=int(ring_bytes_per_rank),
                )
            )

    # ------------------------------------------------------------------ #
    def _rank_gradient(
        self, model: GraphNetwork, X: np.ndarray, y: np.ndarray, plan=None, copy: bool = True
    ) -> tuple[list[np.ndarray], float]:
        """Gradient of the mean loss on one rank's micro-batch.

        With a compiled ``plan`` the gradients land in the plan's reused
        buffers; ``copy=True`` (needed whenever per-rank gradients are
        collected before reduction) snapshots them, while the fused path
        passes ``copy=False`` and consumes the buffers immediately.
        """
        if plan is not None:
            loss_value = plan.loss_and_grad(X, y)
            grads = plan.grad_buffers
            if copy:
                grads = [g.copy() for g in grads]
            return grads, loss_value
        params = model.parameters()
        for p in params:
            p.grad = None
        loss = softmax_cross_entropy(model.forward(X), y)
        loss.backward()
        grads = [
            p.grad if p.grad is not None else np.zeros_like(p.data) for p in params
        ]
        return grads, loss.item()

    def fit(
        self,
        model: GraphNetwork,
        X_train: np.ndarray,
        y_train: np.ndarray,
        X_valid: np.ndarray,
        y_valid: np.ndarray,
        rng: np.random.Generator,
    ) -> TrainResult:
        """Run the paper's recipe under ``num_ranks``-way data parallelism."""
        n = self.num_ranks
        if X_train.shape[0] < n * self.batch_size:
            # Degenerate micro-batches still work (one short batch per shard),
            # but guard against sharding more ranks than samples.
            if X_train.shape[0] < n:
                raise ValueError(
                    f"cannot run {n} ranks on {X_train.shape[0]} training samples"
                )
        dtype = self.dtype or model.dtype
        X_train = np.ascontiguousarray(X_train, dtype=dtype)
        X_valid = np.ascontiguousarray(X_valid, dtype=dtype)
        plan = model.compile() if self.backend == "compiled" else None
        shards = shard_indices(X_train.shape[0], n, rng)
        min_shard = min(len(s) for s in shards)
        steps = max(1, min_shard // self.batch_size)
        # Index hoisting only works when every rank draws full micro-batches;
        # degenerate shards (shorter than batch_size) keep the reference
        # per-step slicing on the raw shard orders.
        hoistable = min_shard >= self.batch_size
        batched = (
            self.rank_mode == "batched"
            and plan is not None
            and n > 1
            and self.allreduce in ("ring", "mean")
            and hoistable
        )

        scaled_lr = (
            linear_scaled_lr(self.learning_rate, n)
            if self.apply_linear_scaling
            else self.learning_rate
        )
        optimizer = Adam(model.parameters(), lr=scaled_lr)
        warmup = GradualWarmup(optimizer, scaled_lr, self.warmup_epochs)
        plateau = ReduceLROnPlateau(optimizer, patience=self.plateau_patience)

        if self.allreduce == "ring" and n > 1:
            ring_bytes = ring_transfer_stats(
                n, model.num_parameters() * dtype.itemsize
            ).bytes_sent_per_rank
        else:
            ring_bytes = 0

        if batched:
            # Preallocated stacked micro-batch and the flat-buffer reducer;
            # the reduced mean lands in the plan's double-buffered gradient
            # views, which Adam consumes directly.
            stacked_rows = n * self.batch_size
            Xb = np.empty((stacked_rows, X_train.shape[1]), dtype=dtype)
            yb = np.empty(stacked_rows, dtype=y_train.dtype)
            reducer = (
                RingReducer(n, plan.num_flat_params)
                if self.allreduce == "ring"
                else None
            )

        result = TrainResult(best_val_accuracy=-np.inf, final_val_accuracy=0.0)
        best_acc = -np.inf
        for epoch in range(self.epochs):
            warmup.on_epoch_begin(epoch)
            orders = [shard[rng.permutation(len(shard))] for shard in shards]
            # Hoisted per-epoch index matrix: row r is rank r's epoch-long
            # draw, so a step's global batch is one contiguous column slice
            # instead of n per-rank fancy-index gathers.
            epoch_idx = (
                np.stack([order[: steps * self.batch_size] for order in orders])
                if hoistable
                else None
            )
            epoch_loss = 0.0
            for step in range(steps):
                lo = step * self.batch_size
                hi = lo + self.batch_size
                if batched:
                    flat_idx = epoch_idx[:, lo:hi].ravel()
                    np.take(X_train, flat_idx, axis=0, out=Xb)
                    np.take(y_train, flat_idx, axis=0, out=yb)
                    losses, rank_grads = plan.loss_and_grads_ranked(Xb, yb, n)
                    if reducer is not None:
                        reducer.reduce(rank_grads, out=plan.mean_grad_flat)
                    else:
                        allreduce_mean_flat(rank_grads, out=plan.mean_grad_flat)
                    optimizer.apply_gradients(plan.mean_grad_views)
                    epoch_loss += float(np.mean(losses))
                    continue
                if self.allreduce == "fused":
                    if epoch_idx is not None:
                        idx = epoch_idx[:, lo:hi].ravel()
                    else:
                        idx = np.concatenate([order[lo:hi] for order in orders])
                    grads, loss = self._rank_gradient(
                        model, X_train[idx], y_train[idx], plan, copy=False
                    )
                    mean_grads = grads
                else:
                    per_rank = []
                    losses = []
                    for order in orders:
                        idx = order[lo:hi]
                        g, loss_r = self._rank_gradient(
                            model, X_train[idx], y_train[idx], plan
                        )
                        per_rank.append(g)
                        losses.append(loss_r)
                    # The loop mode is the pre-vectorization reference, so it
                    # keeps the chunked-list ring (bitwise identical to the
                    # flat-buffer reducer; see tests/test_rank_vectorized.py).
                    reduce_fn = (
                        ring_allreduce_reference
                        if self.allreduce == "ring"
                        else allreduce_mean
                    )
                    mean_grads = reduce_fn(per_rank)
                    loss = float(np.mean(losses))
                optimizer.apply_gradients(mean_grads)
                epoch_loss += loss
            mean_loss = epoch_loss / steps
            if not np.isfinite(mean_loss):
                # Divergence guard: a too-hot scaled learning rate must
                # yield a penalized result, not a crashed worker.
                result.diverged = True
                result.epoch_train_losses.append(mean_loss)
                result.epoch_val_accuracies.append(0.0)
                self._emit_epoch(epoch, mean_loss, 0.0, ring_bytes)
                break
            val_logits = (
                plan.predict_logits(X_valid) if plan is not None
                else model.predict_logits(X_valid)
            )
            val_acc = accuracy(val_logits, y_valid)
            result.epoch_val_accuracies.append(val_acc)
            result.epoch_train_losses.append(mean_loss)
            self._emit_epoch(epoch, mean_loss, val_acc, ring_bytes)
            if val_acc > best_acc:
                best_acc = val_acc
                if self.keep_best_weights:
                    result.best_weights = model.get_weights()
            plateau.on_epoch_end(val_acc)

        result.best_val_accuracy = float(max(best_acc, 0.0))
        # epochs=0 (or an empty history) yields a zeroed result, not a crash.
        result.final_val_accuracy = (
            result.epoch_val_accuracies[-1] if result.epoch_val_accuracies else 0.0
        )
        return result
