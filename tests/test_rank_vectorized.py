"""Equivalence gates for the rank-vectorized data-parallel path.

Three layers are pinned to their references:

1. :meth:`CompiledPlan.loss_and_grads_ranked` (one fused multi-rank pass)
   against a loop of per-rank :meth:`CompiledPlan.loss_and_grad` calls;
2. the flat-buffer :class:`RingReducer` / :func:`ring_allreduce` against
   the chunked-list :func:`ring_allreduce_reference` and the naive mean,
   under adversarial shapes (``n`` not dividing the flattened parameter
   count, tensors smaller than ``n``, the ``n = 1`` fast path);
3. ``DataParallelTrainer(rank_mode="batched")`` against the
   ``rank_mode="loop"`` reference over full multi-epoch runs.

All gates are 1e-10 or tighter; in practice the paths agree bitwise.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataparallel import (
    DataParallelTrainer,
    FlatTopKCompressor,
    RingReducer,
    TopKCompressor,
    allreduce_mean,
    allreduce_mean_flat,
    compressed_allreduce_mean,
    compressed_allreduce_mean_flat,
    flatten_gradients,
    gradient_segments,
    ring_allreduce,
    ring_allreduce_reference,
)
from repro.nn.graph_network import GraphNetwork
from repro.searchspace import ArchitectureSpace

from conftest import make_blobs


def random_model(seed: int, d: int = 10, classes: int = 4, num_nodes: int = 4) -> GraphNetwork:
    rng = np.random.default_rng(seed)
    space = ArchitectureSpace(num_nodes=num_nodes)
    spec = space.decode(space.random_sample(rng))
    return GraphNetwork(spec, d, classes, np.random.default_rng(seed))


# --------------------------------------------------------------------- #
# 1. Batched multi-rank kernels vs the per-rank loop
# --------------------------------------------------------------------- #
@given(seed=st.integers(0, 50), num_ranks=st.sampled_from([1, 2, 3, 4, 8]))
@settings(max_examples=25, deadline=None)
def test_ranked_gradients_match_per_rank_loop(seed, num_ranks):
    """One fused multi-rank pass == n separate plan calls, per rank."""
    model = random_model(seed)
    plan = model.compile()
    rng = np.random.default_rng(seed + 1)
    bs = 16
    X = rng.standard_normal((num_ranks * bs, 10))
    y = rng.integers(0, 4, size=num_ranks * bs)

    losses, rank_grads = plan.loss_and_grads_ranked(X, y, num_ranks)
    assert losses.shape == (num_ranks,)
    assert rank_grads.shape == (num_ranks, plan.num_flat_params)
    rank_grads = rank_grads.copy()  # the plan reuses the matrix

    for r in range(num_ranks):
        lo, hi = r * bs, (r + 1) * bs
        loss_r = plan.loss_and_grad(X[lo:hi], y[lo:hi])
        packed = np.concatenate([g.ravel() for g in plan.grad_buffers])
        assert abs(loss_r - losses[r]) < 1e-10
        np.testing.assert_allclose(rank_grads[r], packed, rtol=0, atol=1e-10)


def test_ranked_rejects_indivisible_batch():
    plan = random_model(0).compile()
    X = np.zeros((10, 10))
    y = np.zeros(10, dtype=np.int64)
    with pytest.raises(ValueError):
        plan.loss_and_grads_ranked(X, y, 3)
    with pytest.raises(ValueError):
        plan.loss_and_grads_ranked(X, y, 0)


def test_rank_grad_views_alias_flat_matrix():
    """Per-layer batched gradients are views into one (n, P) matrix."""
    plan = random_model(1).compile()
    bufs = plan.rank_buffers_for(4)
    assert bufs.flat.shape == (4, plan.num_flat_params)
    for gW, gb in bufs.layer_views.values():
        assert np.shares_memory(gW, bufs.flat)
        assert np.shares_memory(gb, bufs.flat)
    # Cached per rank count.
    assert plan.rank_buffers_for(4) is bufs


def test_mean_grad_views_are_double_buffer():
    """The reduced-mean views alias mean_grad_flat, not the rank matrix."""
    plan = random_model(2).compile()
    rank_bufs = plan.rank_buffers_for(2)
    for view, (o, s, shape) in zip(plan.mean_grad_views, plan.param_segments):
        assert view.shape == shape
        assert np.shares_memory(view, plan.mean_grad_flat)
        assert not np.shares_memory(view, rank_bufs.flat)


# --------------------------------------------------------------------- #
# 2. Flat ring vs chunked-list reference vs mean — adversarial shapes
# --------------------------------------------------------------------- #
@given(seed=st.integers(0, 200), num_ranks=st.integers(1, 8))
@settings(max_examples=40, deadline=None)
def test_flat_ring_matches_reference_on_random_architectures(seed, num_ranks):
    """Gradient lists shaped like real sampled models reduce identically."""
    model = random_model(seed % 20, num_nodes=3)
    shapes = [p.data.shape for p in model.parameters()]
    rng = np.random.default_rng(seed)
    grads = [[rng.normal(size=s) for s in shapes] for _ in range(num_ranks)]
    fast = ring_allreduce(grads)
    ref = ring_allreduce_reference(grads)
    mean = allreduce_mean(grads)
    for a, b, c in zip(fast, ref, mean):
        np.testing.assert_allclose(a, b, rtol=0, atol=1e-10)
        np.testing.assert_allclose(a, c, rtol=1e-10, atol=1e-12)


@pytest.mark.parametrize(
    "shapes,num_ranks",
    [
        ([(3,), (2, 2)], 4),     # P=7: n does not divide the parameter count
        ([(2,)], 7),             # a tensor smaller than the rank count
        ([(1,)], 8),             # single scalar parameter, eight ranks
        ([(5, 3), (3,)], 1),     # n=1 fast path
        ([(13,)], 5),            # prime sizes on both axes
    ],
)
def test_flat_ring_adversarial_shapes(shapes, num_ranks):
    rng = np.random.default_rng(99)
    grads = [[rng.normal(size=s) for s in shapes] for _ in range(num_ranks)]
    fast = ring_allreduce(grads)
    ref = ring_allreduce_reference(grads)
    mean = allreduce_mean(grads)
    for a, b, c in zip(fast, ref, mean):
        np.testing.assert_array_equal(a, b)
        np.testing.assert_allclose(a, c, rtol=1e-10, atol=1e-12)


def test_ring_reducer_reuse_and_validation():
    rng = np.random.default_rng(3)
    flat = rng.normal(size=(4, 11))
    reducer = RingReducer(4, 11)
    out = np.empty(11)
    for _ in range(3):  # workspace reuse must not leak state across calls
        reducer.reduce(flat, out=out)
        np.testing.assert_allclose(out, flat.mean(axis=0), rtol=1e-12)
    with pytest.raises(ValueError):
        reducer.reduce(rng.normal(size=(3, 11)))
    with pytest.raises(ValueError):
        RingReducer(0, 5)
    with pytest.raises(ValueError):
        RingReducer(2, 0)


def test_allreduce_mean_flat_matches_list_mean():
    rng = np.random.default_rng(4)
    shapes = [(4, 3), (5,), (2, 2)]
    grads = [[rng.normal(size=s) for s in shapes] for _ in range(5)]
    flat, segments = flatten_gradients(grads)
    fm = allreduce_mean_flat(flat)
    packed = np.concatenate([t.ravel() for t in allreduce_mean(grads)])
    np.testing.assert_array_equal(fm, packed)
    assert segments == gradient_segments(grads[0])


# --------------------------------------------------------------------- #
# 3. Dtype stability (float32 must not silently upcast)
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("reduce_fn", [allreduce_mean, ring_allreduce, ring_allreduce_reference])
def test_reductions_preserve_float32(reduce_fn):
    rng = np.random.default_rng(5)
    grads = [
        [rng.normal(size=(4, 3)).astype(np.float32), rng.normal(size=(3,)).astype(np.float32)]
        for _ in range(4)
    ]
    out = reduce_fn(grads)
    assert all(g.dtype == np.float32 for g in out)
    # float64 inputs stay float64
    grads64 = [[g.astype(np.float64) for g in rank] for rank in grads]
    assert all(g.dtype == np.float64 for g in reduce_fn(grads64))


def test_flat_reductions_preserve_float32():
    rng = np.random.default_rng(6)
    flat = rng.normal(size=(4, 9)).astype(np.float32)
    assert allreduce_mean_flat(flat).dtype == np.float32
    assert RingReducer(4, 9).reduce(flat).dtype == np.float32


@pytest.mark.parametrize("rank_mode", ["batched", "loop"])
def test_trainer_float32_keeps_adam_dtype_stable(rank_mode):
    """float32 training must feed float32 gradients into the update."""
    X, y = make_blobs(np.random.default_rng(7), n=200)
    model = random_model(3, d=8, classes=3)
    trainer = DataParallelTrainer(
        num_ranks=2, epochs=2, batch_size=16, learning_rate=0.005,
        allreduce="ring", rank_mode=rank_mode, dtype=np.float32,
    )
    trainer.fit(model, X[:160], y[:160], X[160:], y[160:], np.random.default_rng(8))
    for p in model.parameters():
        assert p.grad is None or p.grad.dtype == model.dtype


# --------------------------------------------------------------------- #
# 4. Trainer: batched rank mode vs the loop reference
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("allreduce", ["ring", "mean"])
@pytest.mark.parametrize("num_ranks", [2, 4, 8])
def test_batched_trainer_matches_loop_reference(allreduce, num_ranks):
    """Multi-epoch runs agree on losses, accuracies and final weights."""
    X, y = make_blobs(np.random.default_rng(10), n=600)

    def run(rank_mode):
        model = random_model(5, d=8, classes=3)
        result = DataParallelTrainer(
            num_ranks=num_ranks, epochs=4, batch_size=16, learning_rate=0.005,
            allreduce=allreduce, rank_mode=rank_mode,
        ).fit(model, X[:480], y[:480], X[480:], y[480:], np.random.default_rng(12))
        return result, model.get_weights()

    batched, w_batched = run("batched")
    loop, w_loop = run("loop")
    np.testing.assert_allclose(
        batched.epoch_train_losses, loop.epoch_train_losses, rtol=0, atol=1e-10
    )
    assert batched.epoch_val_accuracies == loop.epoch_val_accuracies
    for a, b in zip(w_batched, w_loop):
        np.testing.assert_allclose(a, b, rtol=0, atol=1e-10)


def test_batched_trainer_matches_loop_on_eager_backend():
    """The eager backend has no batched kernels: both modes take the loop."""
    X, y = make_blobs(np.random.default_rng(13), n=300)

    def run(rank_mode):
        model = random_model(6, d=8, classes=3)
        result = DataParallelTrainer(
            num_ranks=2, epochs=2, batch_size=16, learning_rate=0.005,
            backend="eager", rank_mode=rank_mode,
        ).fit(model, X[:240], y[:240], X[240:], y[240:], np.random.default_rng(14))
        return result, model.get_weights()

    a, wa = run("batched")
    b, wb = run("loop")
    assert a.epoch_train_losses == b.epoch_train_losses
    for x, z in zip(wa, wb):
        np.testing.assert_array_equal(x, z)


def test_batched_trainer_degenerate_shards_fall_back():
    """Shards shorter than one micro-batch use the reference loop path."""
    X, y = make_blobs(np.random.default_rng(15), n=60)

    def run(rank_mode):
        model = random_model(7, d=8, classes=3)
        result = DataParallelTrainer(
            num_ranks=4, epochs=2, batch_size=32, learning_rate=0.005,
            rank_mode=rank_mode,
        ).fit(model, X[:48], y[:48], X[48:], y[48:], np.random.default_rng(16))
        return result

    a = run("batched")
    b = run("loop")
    assert a.epoch_train_losses == b.epoch_train_losses


# --------------------------------------------------------------------- #
# 5. Flat compression vs the per-rank reference
# --------------------------------------------------------------------- #
@given(ratio=st.floats(0.05, 1.0), seed=st.integers(0, 100))
@settings(max_examples=25, deadline=None)
def test_flat_compression_matches_per_rank_reference(ratio, seed):
    rng = np.random.default_rng(seed)
    shapes = [(4, 3), (7,), (3, 2)]
    num_ranks = 4
    ref_comps = [TopKCompressor(ratio) for _ in range(num_ranks)]
    segments = None
    flat_comp = None
    flat = None
    for _ in range(3):  # several rounds so error feedback must agree too
        grads = [[rng.normal(size=s) for s in shapes] for _ in range(num_ranks)]
        if flat_comp is None:
            flat, segments = flatten_gradients(grads)
            flat_comp = FlatTopKCompressor(ratio, segments, num_ranks)
        else:
            flatten_gradients(grads, out=flat)
        ref_mean = compressed_allreduce_mean(
            [c.compress(g) for c, g in zip(ref_comps, grads)]
        )
        flat_mean = compressed_allreduce_mean_flat(
            flat_comp.compress(flat), segments, num_ranks
        )
        packed = np.concatenate([t.ravel() for t in ref_mean])
        np.testing.assert_allclose(flat_mean, packed, rtol=0, atol=1e-12)


def test_flat_compressor_validation():
    segments = [(0, 6, (2, 3))]
    with pytest.raises(ValueError):
        FlatTopKCompressor(0.0, segments, 2)
    with pytest.raises(ValueError):
        FlatTopKCompressor(0.5, [], 2)
    with pytest.raises(ValueError):
        FlatTopKCompressor(0.5, segments, 0)
    comp = FlatTopKCompressor(0.5, segments, 2)
    with pytest.raises(ValueError):
        comp.compress(np.zeros((3, 6)))
    with pytest.raises(ValueError):
        compressed_allreduce_mean_flat([], segments, 2)
