"""The paper's primary contribution: AgE and AgEBO (Algorithm 1).

- :class:`ModelConfig` — one candidate: an encoded architecture ``h_a``
  plus a data-parallel hyperparameter configuration ``h_m``.
- :class:`ModelEvaluation` — the evaluation function: builds the network,
  runs autotuned data-parallel training, returns validation accuracy and a
  simulated duration.
- :class:`AgE` — aging evolution with *static* data-parallel training.
- :class:`AgEBO` — aging evolution + asynchronous BO over ``h_m``.
- :func:`make_agebo_variant` — the paper's ablations (AgEBO-8-LR,
  AgEBO-8-LR-BS, full AgEBO, AgE-n).
"""

from repro.core.config import ModelConfig
from repro.core.results import EvaluationRecord, SearchHistory
from repro.core.evaluation import ModelEvaluation
from repro.core.age import AgE
from repro.core.agebo import AgEBO
from repro.core.variants import make_age_variant, make_agebo_variant
from repro.core.serialization import (
    load_checkpoint,
    load_history,
    load_model_weights,
    save_checkpoint,
    save_history,
    save_model_weights,
)
from repro.core.transfer import extract_hp_observations

__all__ = [
    "save_history",
    "load_history",
    "save_checkpoint",
    "load_checkpoint",
    "save_model_weights",
    "load_model_weights",
    "extract_hp_observations",
    "ModelConfig",
    "EvaluationRecord",
    "SearchHistory",
    "ModelEvaluation",
    "AgE",
    "AgEBO",
    "make_age_variant",
    "make_agebo_variant",
]
