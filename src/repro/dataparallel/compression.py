"""Gradient compression for data-parallel training (extension).

Large-scale data-parallel training often compresses gradients before the
allreduce to cut network traffic.  This module implements the standard
**top-k sparsification with error feedback** (Deep Gradient Compression
style): each rank keeps only its ``k`` largest-magnitude gradient entries,
accumulates what it dropped into a local residual, and adds the residual
back before the next selection — which preserves convergence while
shipping a small fraction of the bytes.

The compressed exchange is modeled as an allgather of sparse
(index, value) pairs; :func:`compressed_transfer_bytes` feeds the cost
model with the reduced traffic so the multi-node scaling benefit can be
quantified against the dense ring.

Two implementations coexist, mirroring the allreduce module:
:class:`TopKCompressor` is the per-rank, per-tensor-list reference, while
:class:`FlatTopKCompressor` carries all ranks' state in one ``(n, P)``
flat matrix — error feedback is two whole-matrix kernels and top-k
selection one rank-batched ``argpartition`` per tensor segment — with
:func:`compressed_allreduce_mean_flat` reducing every rank's sparse
payload in one scatter-add per segment.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "FlatTopKCompressor",
    "TopKCompressor",
    "compressed_allreduce_mean",
    "compressed_allreduce_mean_flat",
    "compressed_transfer_bytes",
]

GradientList = list[np.ndarray]

#: (offset, size, shape) per tensor of a flattened gradient list — the
#: layout produced by :func:`repro.dataparallel.allreduce.gradient_segments`.
Segments = list[tuple[int, int, tuple[int, ...]]]

_INDEX_BYTES = 4
_VALUE_BYTES = 4


class TopKCompressor:
    """Per-rank top-k sparsifier with error feedback.

    Parameters
    ----------
    ratio:
        Fraction of entries kept per tensor (e.g. 0.01 ships 1%).
    """

    def __init__(self, ratio: float) -> None:
        if not 0.0 < ratio <= 1.0:
            raise ValueError(f"ratio must be in (0, 1], got {ratio}")
        self.ratio = ratio
        self._residuals: list[np.ndarray] | None = None

    def reset(self) -> None:
        self._residuals = None

    def compress(self, grads: GradientList) -> list[tuple[np.ndarray, np.ndarray, tuple[int, ...]]]:
        """Return per-tensor (indices, values, shape) of the kept entries.

        Dropped mass is stored in the residual and re-injected next call.
        """
        if self._residuals is None:
            self._residuals = [np.zeros_like(g) for g in grads]
        if len(grads) != len(self._residuals):
            raise ValueError("gradient list structure changed between calls")
        out = []
        for g, residual in zip(grads, self._residuals):
            corrected = g + residual
            flat = corrected.ravel()
            k = max(1, int(round(self.ratio * flat.size)))
            if k >= flat.size:
                idx = np.arange(flat.size)
            else:
                idx = np.argpartition(np.abs(flat), flat.size - k)[-k:]
            values = flat[idx].copy()
            # Error feedback: remember everything we did not ship.
            residual[...] = corrected
            residual.ravel()[idx] = 0.0
            out.append((idx.astype(np.int64), values, corrected.shape))
        return out


class FlatTopKCompressor:
    """Rank-batched top-k sparsifier over an ``(n, P)`` flat gradient matrix.

    Selection semantics are identical to ``n`` independent
    :class:`TopKCompressor` instances applied to the unflattened per-tensor
    lists (``k`` is chosen per tensor segment), but the state lives in one
    preallocated residual matrix: the error-feedback correction and reset
    are whole-matrix kernels, and each segment's top-k runs as a single
    ``argpartition`` over all ranks at once.

    Parameters
    ----------
    ratio:
        Fraction of entries kept per tensor segment.
    segments:
        Flat-buffer layout, one ``(offset, size, shape)`` per tensor.
    num_ranks:
        Number of rank rows the compressor carries residuals for.
    """

    def __init__(self, ratio: float, segments: Segments, num_ranks: int) -> None:
        if not 0.0 < ratio <= 1.0:
            raise ValueError(f"ratio must be in (0, 1], got {ratio}")
        if num_ranks < 1:
            raise ValueError("num_ranks must be >= 1")
        if not segments:
            raise ValueError("need at least one tensor segment")
        self.ratio = ratio
        self.segments = list(segments)
        self.num_ranks = num_ranks
        self.num_params = segments[-1][0] + segments[-1][1]
        self._residual = np.zeros((num_ranks, self.num_params))
        self._corrected = np.empty_like(self._residual)

    def reset(self) -> None:
        self._residual[...] = 0.0

    def compress(self, flat: np.ndarray) -> list[tuple[np.ndarray, np.ndarray]]:
        """Per-segment ``(indices, values)`` of every rank's kept entries.

        ``flat`` is the ``(n, P)`` per-rank gradient matrix; the returned
        indices/values are ``(n, k_t)`` arrays per tensor segment ``t``
        (indices are segment-local).  Dropped mass accumulates in the
        residual matrix and is re-injected on the next call.
        """
        if flat.shape != self._residual.shape:
            raise ValueError(
                f"expected shape {self._residual.shape}, got {flat.shape}"
            )
        corrected = self._corrected
        np.add(flat, self._residual, out=corrected)
        np.copyto(self._residual, corrected)
        out: list[tuple[np.ndarray, np.ndarray]] = []
        for offset, size, _ in self.segments:
            seg = corrected[:, offset : offset + size]
            k = max(1, int(round(self.ratio * size)))
            if k >= size:
                idx = np.tile(np.arange(size, dtype=np.int64), (self.num_ranks, 1))
            else:
                idx = np.argpartition(np.abs(seg), size - k, axis=1)[:, size - k :]
                idx = idx.astype(np.int64, copy=False)
            values = np.take_along_axis(seg, idx, axis=1).copy()
            # Error feedback: shipped entries leave the residual.
            np.put_along_axis(
                self._residual[:, offset : offset + size], idx, 0.0, axis=1
            )
            out.append((idx, values))
        return out


def compressed_allreduce_mean_flat(
    compressed: list[tuple[np.ndarray, np.ndarray]],
    segments: Segments,
    num_ranks: int,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Mean of rank-batched sparse gradients, densified into a flat vector.

    One scatter-add per tensor segment folds every rank's (index, value)
    pairs into the ``(P,)`` accumulator at once.
    """
    if num_ranks < 1:
        raise ValueError("need at least one rank")
    if len(compressed) != len(segments):
        raise ValueError(
            f"got {len(compressed)} compressed segments for {len(segments)} tensors"
        )
    total = segments[-1][0] + segments[-1][1] if segments else 0
    if out is None:
        out = np.zeros(total)
    else:
        if out.shape != (total,):
            raise ValueError(f"out has shape {out.shape}, expected {(total,)}")
        out[...] = 0.0
    for (offset, _, _), (idx, values) in zip(segments, compressed):
        np.add.at(out, (idx + offset).ravel(), values.ravel())
    out /= num_ranks
    return out


def compressed_allreduce_mean(
    compressed_per_rank: list[list[tuple[np.ndarray, np.ndarray, tuple[int, ...]]]],
) -> GradientList:
    """Mean of sparse per-rank gradients (densified reference reduction)."""
    if not compressed_per_rank:
        raise ValueError("need at least one rank")
    n_ranks = len(compressed_per_rank)
    n_tensors = len(compressed_per_rank[0])
    out: GradientList = []
    for t in range(n_tensors):
        shape = compressed_per_rank[0][t][2]
        acc = np.zeros(int(np.prod(shape)))
        for rank in compressed_per_rank:
            idx, values, rank_shape = rank[t]
            if rank_shape != shape:
                raise ValueError(f"tensor {t} shape mismatch across ranks")
            np.add.at(acc, idx, values)
        out.append((acc / n_ranks).reshape(shape))
    return out


def compressed_transfer_bytes(num_params: int, num_ranks: int, ratio: float) -> int:
    """Bytes each rank ships: allgather of k (index, value) pairs."""
    if num_ranks < 2:
        return 0
    k = max(1, int(round(ratio * num_params)))
    payload = k * (_INDEX_BYTES + _VALUE_BYTES)
    # Ring allgather ships (n-1)/n of the aggregate payload per rank.
    return int(round((num_ranks - 1) / num_ranks * payload * num_ranks))
