"""Ablation (beyond the paper): aging vs elitist population replacement.

Aging evolution (Real et al.) evicts the *oldest* population member, which
regularizes the search (every architecture must re-prove itself).  The
elitist alternative evicts the *worst*, which can lock in early noise.
Expectation: aging is competitive or better on best-accuracy; elitist
tends to reduce architecture diversity.
"""

from __future__ import annotations

from common import format_table, report
from repro.core import ModelEvaluation, make_age_variant
from repro.workflow import SimulatedEvaluator

import common


def unique_architectures(history) -> int:
    return len({r.config.key() for r in history.records})


def run_experiment():
    scale = common.get_scale()
    ds = common.get_dataset("covertype")
    space = common.get_search_space()
    out = {}
    for policy in ("aging", "elitist"):
        run_fn = ModelEvaluation(
            ds, space, epochs=scale.epochs, warmup_epochs=scale.warmup_epochs,
            nominal_epochs=20,
        )
        evaluator = SimulatedEvaluator(run_fn, num_workers=scale.num_workers)
        search = make_age_variant(
            space,
            evaluator,
            num_ranks=4,
            population_size=scale.population_size,
            sample_size=scale.sample_size,
            seed=0,
            replacement=policy,
        )
        history = search.search(
            max_evaluations=scale.max_evaluations, wall_time_minutes=scale.wall_minutes
        )
        out[policy] = {
            "best": history.best().objective,
            "unique": unique_architectures(history),
            "n_evals": len(history),
        }
    return out


def test_ablation_aging(benchmark):
    out = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = [
        [p, r["n_evals"], r["unique"], round(r["best"], 4)] for p, r in out.items()
    ]
    report(
        "ablation_aging",
        format_table(
            "Ablation — population replacement policy (AgE-4, Covertype)",
            ["replacement", "evals", "unique architectures", "best val acc"],
            rows,
        ),
    )
    assert out["aging"]["best"] >= out["elitist"]["best"] - 0.02