"""The evaluation function: real training, simulated duration.

One call = one worker node evaluating one :class:`ModelConfig`:

1. decode and build the network;
2. run ``num_ranks``-way synchronous data-parallel training with the
   linearly scaled learning rate, 20-epoch recipe (warmup + plateau);
3. return the validation accuracy as the objective, and the simulated
   training duration from :class:`~repro.dataparallel.TrainingCostModel`
   evaluated at the data set's *nominal* (paper-scale) size.

Training runs on the reduced synthetic data, so results are real; only the
clock is modelled.  Per-config seeds are derived deterministically from the
configuration content, making whole searches reproducible.
"""

from __future__ import annotations

import zlib

import numpy as np

from repro.core.config import ModelConfig
from repro.dataparallel.costmodel import TrainingCostModel
from repro.dataparallel.trainer import DataParallelTrainer
from repro.datasets.openml_like import TabularDataset
from repro.nn.graph_network import GraphNetwork
from repro.searchspace.archspace import ArchitectureSpace
from repro.workflow.jobs import EvaluationResult

__all__ = ["ModelEvaluation"]


def _config_seed(config: ModelConfig, base_seed: int) -> int:
    """Deterministic 32-bit seed from the configuration content."""
    text = repr(config.arch.tolist()) + repr(sorted(config.hyperparameters.items()))
    return (zlib.crc32(text.encode()) ^ base_seed) & 0x7FFFFFFF


class ModelEvaluation:
    """Callable run function for the evaluators.

    Parameters
    ----------
    dataset:
        Loaded benchmark (reduced arrays + nominal sizes).
    space:
        Architecture space used to decode ``config.arch``.
    cost_model:
        Training-time model for the simulated duration.
    epochs, warmup_epochs, plateau_patience:
        Training recipe (paper: 20 / 5 / 5).
    objective:
        ``"best"`` (max epoch validation accuracy, DeepHyper's default) or
        ``"final"`` (last epoch).
    allreduce:
        Gradient reduction mode for the data-parallel trainer; ``"fused"``
        is the fast algebraically equivalent path used by the benches.
    backend:
        ``"compiled"`` (default) trains through the traced
        :class:`~repro.nn.compiled.CompiledPlan`; ``"eager"`` uses the
        reference autograd tape.
    dtype:
        Model/array precision, e.g. ``"float32"`` to halve memory traffic
        (default ``"float64"``).
    """

    def __init__(
        self,
        dataset: TabularDataset,
        space: ArchitectureSpace,
        cost_model: TrainingCostModel | None = None,
        epochs: int = 20,
        warmup_epochs: int = 5,
        plateau_patience: int = 5,
        objective: str = "best",
        allreduce: str = "fused",
        base_seed: int = 0,
        keep_best_weights: bool = False,
        nominal_epochs: int | None = None,
        apply_linear_scaling: bool = True,
        backend: str = "compiled",
        dtype="float64",
    ) -> None:
        if objective not in ("best", "final"):
            raise ValueError(f"objective must be 'best' or 'final', got {objective!r}")
        if backend not in ("compiled", "eager"):
            raise ValueError(f"backend must be 'compiled' or 'eager', got {backend!r}")
        self.dataset = dataset
        self.space = space
        self.cost_model = cost_model or TrainingCostModel()
        self.epochs = epochs
        # Simulated durations are billed at the paper's epoch count even
        # when real training is shortened for bench speed.
        self.nominal_epochs = nominal_epochs if nominal_epochs is not None else epochs
        self.warmup_epochs = warmup_epochs
        self.plateau_patience = plateau_patience
        self.objective = objective
        self.allreduce = allreduce
        self.base_seed = base_seed
        self.keep_best_weights = keep_best_weights
        # Ablation knob: disable the linear scaling rule (Eq. 2) so the
        # base learning rate is used unscaled at any rank count.
        self.apply_linear_scaling = apply_linear_scaling
        self.backend = backend
        self.dtype = np.dtype(dtype)
        # Optional campaign event bus, forwarded to the per-call trainer so
        # EpochEnd events surface on the campaign stream.
        self.event_bus = None

    # ------------------------------------------------------------------ #
    def build_model(self, config: ModelConfig, rng: np.random.Generator) -> GraphNetwork:
        spec = self.space.decode(config.arch)
        return GraphNetwork(
            spec, self.dataset.n_features, self.dataset.n_classes, rng, dtype=self.dtype
        )

    def __call__(self, config: ModelConfig) -> EvaluationResult:
        rng = np.random.default_rng(_config_seed(config, self.base_seed))
        model = self.build_model(config, rng)
        num_ranks = config.num_ranks
        trainer = DataParallelTrainer(
            num_ranks=num_ranks,
            epochs=self.epochs,
            batch_size=config.batch_size,
            learning_rate=config.learning_rate,
            warmup_epochs=self.warmup_epochs,
            plateau_patience=self.plateau_patience,
            allreduce=self.allreduce,
            keep_best_weights=self.keep_best_weights,
            apply_linear_scaling=self.apply_linear_scaling,
            backend=self.backend,
            dtype=self.dtype,
        )
        trainer.event_bus = self.event_bus
        result = trainer.fit(
            model,
            self.dataset.X_train,
            self.dataset.y_train,
            self.dataset.X_valid,
            self.dataset.y_valid,
            rng,
        )
        objective = (
            result.best_val_accuracy if self.objective == "best" else result.final_val_accuracy
        )
        duration = self.cost_model.training_minutes(
            num_params=model.num_parameters(),
            train_size=self.dataset.nominal_train_size,
            batch_size=config.batch_size,
            num_ranks=num_ranks,
            epochs=self.nominal_epochs,
        )
        metadata = {
            "num_params": model.num_parameters(),
            "epoch_val_accuracies": result.epoch_val_accuracies,
            "final_val_accuracy": result.final_val_accuracy,
        }
        if self.keep_best_weights:
            metadata["best_weights"] = result.best_weights
        return EvaluationResult(objective=float(objective), duration=duration, metadata=metadata)
