"""Perf bench: rank-vectorized data-parallel training vs the per-rank loop.

Times the data-parallel hot path at two granularities — a full
``DataParallelTrainer.fit`` step (loop vs batched ``rank_mode``) at
n ∈ {2, 4, 8} ranks, and the ring allreduce alone (chunked-list
reference vs the flat-buffer :class:`RingReducer`) — and writes the
before/after medians to ``BENCH_dataparallel.json`` at the repo root.

Timings are recorded, never asserted.  The only way this bench fails is
the numerical equivalence gate: the batched mode must reproduce the
loop mode's losses and final weights to 1e-10, and the flat ring must
match the chunked reference on the benched gradient shapes.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.dataparallel import (
    DataParallelTrainer,
    RingReducer,
    flatten_gradients,
    ring_allreduce_reference,
)
from repro.nn import GraphNetwork
from repro.perf import BenchEntry, median_time, write_bench_json
from repro.searchspace import ArchitectureSpace

REPO_ROOT = Path(__file__).resolve().parent.parent
N_FEATURES = 54
N_CLASSES = 7
BATCH = 32
EPOCHS = 2
RANK_COUNTS = (2, 4, 8)


def _make_model(seed: int = 0) -> GraphNetwork:
    space = ArchitectureSpace(num_nodes=5)
    arch = space.random_sample(np.random.default_rng(seed))
    return GraphNetwork(space.decode(arch), N_FEATURES, N_CLASSES,
                        np.random.default_rng(seed))


def _make_data(seed: int = 1, n_train: int = 8192, n_val: int = 512):
    rng = np.random.default_rng(seed)
    X = rng.standard_normal((n_train + n_val, N_FEATURES))
    y = rng.integers(0, N_CLASSES, size=n_train + n_val)
    return X[:n_train], y[:n_train], X[n_train:], y[n_train:]


def _fit(num_ranks: int, rank_mode: str, model_seed: int = 3, data=None):
    X, y, Xv, yv = data
    model = _make_model(model_seed)
    trainer = DataParallelTrainer(
        num_ranks=num_ranks, epochs=EPOCHS, batch_size=BATCH,
        learning_rate=0.005, allreduce="ring", rank_mode=rank_mode,
    )
    result = trainer.fit(model, X, y, Xv, yv, np.random.default_rng(7))
    return model, result


def test_perf_dataparallel_step_and_ring():
    data = _make_data()

    # --- equivalence gates (the only assertions in this bench) --------- #
    model_loop, res_loop = _fit(8, "loop", data=data)
    model_batched, res_batched = _fit(8, "batched", data=data)
    np.testing.assert_allclose(
        res_loop.epoch_train_losses, res_batched.epoch_train_losses, atol=1e-10
    )
    for a, b in zip(model_loop.get_weights(), model_batched.get_weights()):
        np.testing.assert_allclose(a, b, atol=1e-10)

    grads = [p.data.astype(np.float64) for p in _make_model(5).parameters()]
    per_rank = [[g * (r + 1) for g in grads] for r in range(8)]
    flat, _segments = flatten_gradients(per_rank)
    reducer = RingReducer(8, flat.shape[1])
    reduced_flat = reducer.reduce(flat.copy())
    reduced_ref = ring_allreduce_reference(per_rank)
    for (offset, size, shape), ref in zip(_segments, reduced_ref):
        np.testing.assert_allclose(
            reduced_flat[offset : offset + size].reshape(shape), ref, atol=1e-10
        )

    # --- fit step: per-rank loop vs rank-vectorized batched ------------ #
    entries = []
    for n in RANK_COUNTS:
        steps = (data[0].shape[0] // n // BATCH) * EPOCHS
        loop_s = median_time(lambda n=n: _fit(n, "loop", data=data), repeats=3)
        batched_s = median_time(lambda n=n: _fit(n, "batched", data=data), repeats=3)
        entries.append(
            BenchEntry(
                f"fit_step_n{n}",
                loop_s / steps,
                batched_s / steps,
                meta={"num_ranks": n, "batch_size": BATCH, "epochs": EPOCHS,
                      "steps": steps, "allreduce": "ring"},
            )
        )

    # --- ring allreduce alone: chunked-list vs flat-buffer ------------- #
    for n in RANK_COUNTS:
        pr = per_rank[:n]
        flat_n, _ = flatten_gradients(pr)
        reducer_n = RingReducer(n, flat_n.shape[1])
        work = flat_n.copy()
        sink = np.empty(flat_n.shape[1])
        entries.append(
            BenchEntry(
                f"ring_allreduce_n{n}",
                median_time(lambda pr=pr: ring_allreduce_reference(pr), repeats=9),
                median_time(
                    lambda r=reducer_n, w=work, s=sink: r.reduce(w, out=s), repeats=9
                ),
                meta={"num_ranks": n, "num_params": flat_n.shape[1]},
            )
        )

    out = write_bench_json(REPO_ROOT / "BENCH_dataparallel.json", "dataparallel", entries)
    for e in entries:
        print(f"{e.name}: ref {e.reference_s * 1e3:.2f} ms -> "
              f"opt {e.optimized_s * 1e3:.2f} ms ({e.speedup:.1f}x)")
    print(f"written: {out}")


if __name__ == "__main__":
    pytest.main([__file__, "-s"])
