"""Unit tests for sharding, allreduce, the linear scaling rule and costs."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataparallel import (
    TrainingCostModel,
    allreduce_mean,
    linear_scaled_batch_size,
    linear_scaled_lr,
    ring_allreduce,
    ring_transfer_stats,
    shard_indices,
)


# --------------------------------------------------------------------- #
# Sharding
# --------------------------------------------------------------------- #
@given(n=st.integers(1, 200), ranks=st.integers(1, 8))
@settings(max_examples=100, deadline=None)
def test_shards_partition_exactly(n, ranks):
    if n < ranks:
        return
    shards = shard_indices(n, ranks, np.random.default_rng(0))
    together = np.concatenate(shards)
    assert together.size == n
    assert np.array_equal(np.sort(together), np.arange(n))


def test_shard_sizes_balanced():
    shards = shard_indices(103, 4, np.random.default_rng(0))
    sizes = [len(s) for s in shards]
    assert max(sizes) - min(sizes) <= 1


def test_sharding_without_rng_is_contiguous():
    shards = shard_indices(10, 2)
    np.testing.assert_array_equal(shards[0], np.arange(5))
    np.testing.assert_array_equal(shards[1], np.arange(5, 10))


def test_sharding_validation():
    with pytest.raises(ValueError):
        shard_indices(3, 5)
    with pytest.raises(ValueError):
        shard_indices(10, 0)


# --------------------------------------------------------------------- #
# Allreduce
# --------------------------------------------------------------------- #
@given(ranks=st.integers(1, 8), seed=st.integers(0, 1000))
@settings(max_examples=50, deadline=None)
def test_ring_equals_mean(ranks, seed):
    rng = np.random.default_rng(seed)
    grads = [
        [rng.normal(size=(4, 3)), rng.normal(size=(3,)), rng.normal(size=(3, 2))]
        for _ in range(ranks)
    ]
    ring = ring_allreduce(grads)
    mean = allreduce_mean(grads)
    for a, b in zip(ring, mean):
        np.testing.assert_allclose(a, b, rtol=1e-10, atol=1e-12)


def test_allreduce_single_rank_is_identity():
    g = [np.arange(6.0).reshape(2, 3)]
    out = allreduce_mean([g])
    np.testing.assert_array_equal(out[0], g[0])
    out_ring = ring_allreduce([g])
    np.testing.assert_array_equal(out_ring[0], g[0])


def test_allreduce_preserves_shapes():
    rng = np.random.default_rng(0)
    grads = [[rng.normal(size=(5, 7)), rng.normal(size=(7,))] for _ in range(3)]
    out = ring_allreduce(grads)
    assert out[0].shape == (5, 7) and out[1].shape == (7,)


def test_allreduce_alignment_checks():
    a = [np.zeros((2, 2))]
    b = [np.zeros((2, 3))]
    with pytest.raises(ValueError):
        allreduce_mean([a, b])
    with pytest.raises(ValueError):
        ring_allreduce([a, a + [np.zeros(1)]])
    with pytest.raises(ValueError):
        allreduce_mean([])


def test_ring_stats_bandwidth_optimal():
    stats = ring_transfer_stats(4, 1000)
    assert stats.message_steps == 2 * 3
    assert stats.bytes_sent_per_rank == int(round(2 * 3 / 4 * 1000))


def test_ring_stats_single_rank_no_comm():
    stats = ring_transfer_stats(1, 1000)
    assert stats.message_steps == 0
    assert stats.bytes_sent_per_rank == 0


# --------------------------------------------------------------------- #
# Linear scaling rule (Eq. 2)
# --------------------------------------------------------------------- #
def test_linear_scaling_values():
    assert linear_scaled_lr(0.01, 8) == pytest.approx(0.08)
    assert linear_scaled_batch_size(256, 4) == 1024


def test_linear_scaling_identity_at_one():
    assert linear_scaled_lr(0.01, 1) == 0.01
    assert linear_scaled_batch_size(256, 1) == 256


def test_linear_scaling_validation():
    with pytest.raises(ValueError):
        linear_scaled_lr(0.0, 2)
    with pytest.raises(ValueError):
        linear_scaled_lr(0.1, 0)
    with pytest.raises(ValueError):
        linear_scaled_batch_size(0, 2)


# --------------------------------------------------------------------- #
# Cost model
# --------------------------------------------------------------------- #
def test_cost_model_table1_calibration():
    """Default constants reproduce the Table I shape on the paper scale."""
    cm = TrainingCostModel()
    t = {n: cm.training_minutes(30_000, 244_025, 256, n, 20) for n in (1, 2, 4, 8)}
    assert 20.0 < t[1] < 33.0  # paper: 26.54 ± 7.68
    assert 2.5 < t[8] < 5.0  # paper: 3.19 ± 0.29
    # Monotone decreasing with n, near-linear speedup.
    assert t[1] > t[2] > t[4] > t[8]
    assert 6.0 < t[1] / t[8] < 8.5


def test_cost_grows_with_model_size():
    cm = TrainingCostModel()
    small = cm.training_minutes(5_000, 100_000, 256, 1, 20)
    large = cm.training_minutes(80_000, 100_000, 256, 1, 20)
    assert large > small


def test_cost_larger_batch_fewer_steps_cheaper_per_epoch():
    """Bigger per-rank batches amortize per-step overhead."""
    cm = TrainingCostModel()
    t_small = cm.training_minutes(30_000, 100_000, 32, 1, 10)
    t_large = cm.training_minutes(30_000, 100_000, 512, 1, 10)
    assert t_large < t_small


def test_cost_linear_in_epochs():
    cm = TrainingCostModel(epoch_overhead_s=0.0)
    t10 = cm.training_minutes(30_000, 100_000, 256, 2, 10)
    t20 = cm.training_minutes(30_000, 100_000, 256, 2, 20)
    np.testing.assert_allclose(t20, 2 * t10, rtol=1e-9)


def test_cost_speedup_below_ideal():
    cm = TrainingCostModel()
    for n in (2, 4, 8):
        assert 1.0 < cm.speedup(30_000, 244_025, 256, n) < n + 0.01


def test_cost_allreduce_term_grows_with_ranks():
    cm = TrainingCostModel()
    assert cm.allreduce_seconds(30_000, 1) == 0.0
    assert cm.allreduce_seconds(30_000, 8) > cm.allreduce_seconds(30_000, 2)


def test_cost_steps_per_epoch_floor():
    cm = TrainingCostModel()
    # Effective batch bigger than the data set still yields one step.
    assert cm.steps_per_epoch(100, 256, 8) == 1


def test_cost_model_validation():
    cm = TrainingCostModel()
    with pytest.raises(ValueError):
        cm.training_minutes(0, 100, 32, 1, 10)
    with pytest.raises(ValueError):
        TrainingCostModel(throughput_flops=-1)
    with pytest.raises(ValueError):
        TrainingCostModel(thread_scaling_exponent=1.0)
