"""Workflow substrate (paper substitute for the Balsam workflow system).

Provides the non-blocking ``submit`` / ``gather`` manager-worker interface
of Algorithm 1 with two interchangeable backends:

- :class:`SimulatedEvaluator` — an event-driven simulation of a W-worker
  cluster with a simulated wall clock in minutes.  Evaluation *results* are
  produced by really running the evaluation function; evaluation
  *durations* are supplied by the function (typically from
  :class:`repro.dataparallel.TrainingCostModel`).
- :class:`ThreadedEvaluator` — real concurrent execution on a thread pool,
  used to validate that the search loops are genuinely asynchronous.
- :class:`ProcessPoolEvaluator` — true multi-core execution on a process
  pool with worker-crash detection and real timeout cancellation.

All backends accept an optional :class:`EvaluationCache` that serves
duplicate configurations from memo instead of re-training them.
"""

from repro.workflow.events import EventQueue
from repro.workflow.jobs import EvaluationResult, Job, JobState
from repro.workflow.faults import FaultInjector, FaultPolicy, InjectedCrash
from repro.workflow.cache import CACHE_MODES, EvaluationCache, canonical_config_key
from repro.workflow.evaluator import (
    Evaluator,
    ProcessPoolEvaluator,
    SimulatedEvaluator,
    ThreadedEvaluator,
)

__all__ = [
    "EventQueue",
    "Job",
    "JobState",
    "EvaluationResult",
    "Evaluator",
    "SimulatedEvaluator",
    "ThreadedEvaluator",
    "ProcessPoolEvaluator",
    "EvaluationCache",
    "canonical_config_key",
    "CACHE_MODES",
    "FaultPolicy",
    "FaultInjector",
    "InjectedCrash",
]
