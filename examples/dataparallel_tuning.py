#!/usr/bin/env python
"""Why data-parallel training needs tuning (the paper's motivation).

Trains the *same* architecture under n ∈ {1, 2, 4, 8} simulated ranks with
the linear scaling rule, first at the default hyperparameters (the AgE-n
setting of Table I) and then at a BO-tuned learning rate, showing:

  1. training time (simulated, paper-scale) falls near-linearly with n;
  2. accuracy degrades past the data-set's parallelism limit;
  3. tuning the base learning rate recovers most of the loss.

Usage:
    python examples/dataparallel_tuning.py
"""

from __future__ import annotations

import numpy as np

from repro.bo import BayesianOptimizer
from repro.dataparallel import DataParallelTrainer, TrainingCostModel
from repro.datasets import load_dataset
from repro.nn import GraphNetwork
from repro.nn.graph_network import ArchitectureSpec, NodeOp
from repro.searchspace import default_dataparallel_space

SPEC = ArchitectureSpec(
    node_ops=(NodeOp(96, "relu"), NodeOp(64, "relu"), NodeOp(48, "swish")),
    skips=frozenset({(0, 2), (1, 3)}),
)


def train_once(ds, num_ranks: int, lr: float, epochs: int = 8, seed: int = 0) -> float:
    rng = np.random.default_rng(seed)
    model = GraphNetwork(SPEC, ds.n_features, ds.n_classes, rng)
    result = DataParallelTrainer(
        num_ranks=num_ranks, epochs=epochs, batch_size=128, learning_rate=lr
    ).fit(model, ds.X_train, ds.y_train, ds.X_valid, ds.y_valid, rng)
    return result.best_val_accuracy


def main() -> None:
    ds = load_dataset("covertype", size=2500)
    print(ds.summary(), "\n")
    cost = TrainingCostModel()

    rng = np.random.default_rng(0)
    model = GraphNetwork(SPEC, ds.n_features, ds.n_classes, rng)
    params = model.num_parameters()

    print("=== static hyperparameters (linear scaling rule only) ===")
    print(f"{'ranks':>5} | {'sim train time':>14} | {'speedup':>7} | {'val accuracy':>12}")
    t1 = cost.training_minutes(params, ds.nominal_train_size, 128, 1, 20)
    default_lr = 0.01
    for n in (1, 2, 4, 8):
        t = cost.training_minutes(params, ds.nominal_train_size, 128, n, 20)
        acc = train_once(ds, n, default_lr)
        print(f"{n:>5} | {t:>11.1f} min | {t1 / t:>6.2f}x | {acc:>12.4f}")

    print("\n=== BO-tuned base learning rate at n = 8 ===")
    space = default_dataparallel_space(
        tune_batch_size=False, tune_num_ranks=False, default_num_ranks=8,
        default_batch_size=128,
    )
    optimizer = BayesianOptimizer(space, kappa=0.001, n_initial_points=4, seed=1)
    for step in range(6):
        configs = optimizer.ask(2)
        scores = [train_once(ds, 8, c["learning_rate"], epochs=6) for c in configs]
        optimizer.tell(configs, scores)
    best, val = optimizer.best()
    print(f"tuned lr_1 = {best['learning_rate']:.5f} -> val accuracy {val:.4f} "
          f"(default lr {default_lr} gave {train_once(ds, 8, default_lr):.4f})")
    print("\nThe tuned base learning rate recovers accuracy at n=8 while "
          "keeping the near-linear training-time reduction — this is what "
          "AgEBO automates jointly with the architecture search.")


if __name__ == "__main__":
    main()
