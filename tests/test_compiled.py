"""Compiled-plan equivalence: the traced path must match the eager tape.

The compiled plan replays the eager tape's exact op order with fused
kernels, so losses and gradients should agree to float64 round-off
(≤ 1e-10, typically exactly 0) — on single steps and over whole
multi-epoch training runs, for architectures covering every structural
feature the tracer handles: plain chains, identity ops (slot aliasing),
multi-source skips and skips into the output node.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dataparallel import DataParallelTrainer
from repro.nn import GraphNetwork, Trainer, assert_plan_equivalence
from repro.nn.graph_network import ArchitectureSpec, NodeOp
from repro.searchspace import ArchitectureSpace

N_FEATURES = 10
N_CLASSES = 4

DENSE = NodeOp(24, "relu")
SPECS = {
    "plain_chain": ArchitectureSpec(
        node_ops=(NodeOp(16, "swish"), NodeOp(32, "tanh"), NodeOp(24, "sigmoid"))
    ),
    "identity_ops": ArchitectureSpec(
        node_ops=(NodeOp(None, None), NodeOp(16, "relu"), NodeOp(None, None), DENSE)
    ),
    "multi_skip": ArchitectureSpec(
        node_ops=(DENSE, NodeOp(16, "swish"), NodeOp(32, "tanh"), NodeOp(24, "relu")),
        skips=frozenset({(0, 2), (0, 3), (1, 4), (2, 4)}),
    ),
    "skip_to_output": ArchitectureSpec(
        node_ops=(NodeOp(16, "sigmoid"), NodeOp(None, None), NodeOp(32, "relu")),
        skips=frozenset({(0, 2), (1, 4), (2, 4)}),
    ),
}


def _data(seed: int = 0, n: int = 400):
    rng = np.random.default_rng(seed)
    X = rng.standard_normal((n, N_FEATURES))
    y = rng.integers(0, N_CLASSES, size=n)
    return X, y


@pytest.mark.parametrize("name", sorted(SPECS))
def test_single_step_equivalence(name):
    model = GraphNetwork(SPECS[name], N_FEATURES, N_CLASSES, np.random.default_rng(1))
    X, y = _data()
    diffs = assert_plan_equivalence(model, X[:64], y[:64], tol=1e-10)
    assert diffs["loss_diff"] <= 1e-10
    assert diffs["grad_diff"] <= 1e-10


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
def test_sampled_architecture_equivalence(seed):
    space = ArchitectureSpace(num_nodes=5)
    arch = space.random_sample(np.random.default_rng(seed))
    model = GraphNetwork(space.decode(arch), N_FEATURES, N_CLASSES, np.random.default_rng(seed))
    X, y = _data(seed)
    assert_plan_equivalence(model, X[:128], y[:128], tol=1e-10)


@pytest.mark.parametrize("name", ["identity_ops", "multi_skip"])
def test_five_epoch_training_equivalence(name):
    """Losses, per-epoch accuracies and final weights match over a full run."""
    X, y = _data(7)
    Xv, yv = _data(8, n=200)

    results = {}
    weights = {}
    for backend in ("eager", "compiled"):
        model = GraphNetwork(SPECS[name], N_FEATURES, N_CLASSES, np.random.default_rng(5))
        trainer = Trainer(epochs=5, batch_size=64, learning_rate=0.01, backend=backend)
        results[backend] = trainer.fit(model, X, y, Xv, yv, np.random.default_rng(9))
        weights[backend] = model.get_weights()

    eager, compiled = results["eager"], results["compiled"]
    assert np.allclose(eager.epoch_train_losses, compiled.epoch_train_losses, atol=1e-10, rtol=0)
    assert eager.epoch_val_accuracies == compiled.epoch_val_accuracies
    assert eager.best_val_accuracy == compiled.best_val_accuracy
    for we, wc in zip(weights["eager"], weights["compiled"]):
        np.testing.assert_allclose(we, wc, atol=1e-10, rtol=0)


def test_dataparallel_backend_parity():
    """Multi-rank training agrees between backends (per-rank grads are
    snapshotted out of the plan's reused buffers before reduction)."""
    X, y = _data(11)
    Xv, yv = _data(12, n=200)
    results = {}
    weights = {}
    for backend in ("eager", "compiled"):
        model = GraphNetwork(SPECS["multi_skip"], N_FEATURES, N_CLASSES, np.random.default_rng(2))
        trainer = DataParallelTrainer(
            num_ranks=2, epochs=3, batch_size=64, learning_rate=0.01,
            allreduce="ring", backend=backend,
        )
        results[backend] = trainer.fit(model, X, y, Xv, yv, np.random.default_rng(3))
        weights[backend] = model.get_weights()
    assert results["eager"].epoch_val_accuracies == results["compiled"].epoch_val_accuracies
    for we, wc in zip(weights["eager"], weights["compiled"]):
        np.testing.assert_allclose(we, wc, atol=1e-10, rtol=0)


def test_plan_is_cached_and_retraceable():
    model = GraphNetwork(SPECS["plain_chain"], N_FEATURES, N_CLASSES, np.random.default_rng(0))
    assert model.compile() is model.compile()


def test_compiled_predict_logits_matches_eager():
    model = GraphNetwork(SPECS["skip_to_output"], N_FEATURES, N_CLASSES, np.random.default_rng(4))
    X, _ = _data(13, n=500)
    plan = model.compile()
    np.testing.assert_array_equal(plan.predict_logits(X), model.predict_logits(X))
