"""Materialize a searched architecture into a trainable network.

The AgEBO-Tabular search space (paper §III-A) is a chain of up to ``m``
*variable nodes* (each either a dense layer ``Dense(units, activation)`` or
an identity op) with optional *skip connections*.  Node ``i`` always
receives the output of node ``i-1``; a skip from an earlier node ``s``
(``s ∈ {i-4, i-3, i-2}``, the three previous non-consecutive nodes,
including the input node 0) passes ``h_s`` through a linear projection to
the width of ``h_{i-1}``, sums it with ``h_{i-1}``, and applies ReLU before
feeding node ``i``.  The output node is a logits layer that receives the
same skip treatment.

This module is intentionally independent of the search-space encoding: it
consumes a plain :class:`ArchitectureSpec` so it can also build
hand-designed networks (baselines, tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nn.autograd import Tensor, no_grad
from repro.nn.layers import Dense

__all__ = ["NodeOp", "ArchitectureSpec", "GraphNetwork"]


@dataclass(frozen=True)
class NodeOp:
    """Operation of one variable node.

    ``units is None`` encodes the identity op (the 31st layer type); then
    ``activation`` must also be ``None``.
    """

    units: int | None
    activation: str | None

    def __post_init__(self) -> None:
        if (self.units is None) != (self.activation is None):
            raise ValueError("identity op requires both units and activation to be None")
        if self.units is not None and self.units <= 0:
            raise ValueError(f"units must be positive, got {self.units}")

    @property
    def is_identity(self) -> bool:
        return self.units is None


@dataclass(frozen=True)
class ArchitectureSpec:
    """A decoded architecture: node ops plus active skip connections.

    Attributes
    ----------
    node_ops:
        Ops for variable nodes 1..m, in order.
    skips:
        Set of ``(source, destination)`` pairs over graph-node indices where
        0 is the input node, ``1..m`` are variable nodes and ``m+1`` is the
        output node.  Only pairs with ``destination - source >= 2`` are
        valid (consecutive nodes are always connected).
    """

    node_ops: tuple[NodeOp, ...]
    skips: frozenset[tuple[int, int]] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        m = len(self.node_ops)
        for src, dst in self.skips:
            if not (0 <= src <= m and 2 <= dst <= m + 1):
                raise ValueError(f"skip ({src},{dst}) out of range for {m} nodes")
            if dst - src < 2:
                raise ValueError(f"skip ({src},{dst}) duplicates the sequential edge")

    @property
    def num_nodes(self) -> int:
        return len(self.node_ops)

    def active_depth(self) -> int:
        """Number of non-identity dense layers."""
        return sum(0 if op.is_identity else 1 for op in self.node_ops)


class GraphNetwork:
    """Trainable network built from an :class:`ArchitectureSpec`.

    Parameters
    ----------
    spec:
        Decoded architecture.
    input_dim, n_classes:
        Tabular input width and number of output classes.
    rng:
        Generator for all weight initialization, making a build reproducible.
    dtype:
        Parameter/activation precision (float64 default, float32 optional).
        Weights are drawn in float64 and cast, so the same seed produces
        the same network at either precision.
    """

    def __init__(
        self,
        spec: ArchitectureSpec,
        input_dim: int,
        n_classes: int,
        rng: np.random.Generator,
        dtype=np.float64,
    ) -> None:
        if input_dim <= 0 or n_classes <= 1:
            raise ValueError(f"invalid dims: input_dim={input_dim}, n_classes={n_classes}")
        self.spec = spec
        self.input_dim = input_dim
        self.n_classes = n_classes
        self.dtype = np.dtype(dtype)
        if self.dtype.kind != "f":
            raise ValueError(f"dtype must be a float type, got {self.dtype}")
        self._plan = None  # lazily built CompiledPlan (see compile())

        m = spec.num_nodes
        # Width of each graph node's output tensor, propagated through
        # identity ops.  Index 0 is the input node.
        widths = [input_dim]
        self._node_layers: list[Dense | None] = []
        for i, op in enumerate(spec.node_ops, start=1):
            in_width = widths[i - 1]
            if op.is_identity:
                self._node_layers.append(None)
                widths.append(in_width)
            else:
                layer = Dense(
                    in_width, op.units, op.activation, rng, name=f"node{i}", dtype=self.dtype
                )
                self._node_layers.append(layer)
                widths.append(op.units)
        self._widths = widths

        # Skip projections: map h_src's width to h_{dst-1}'s width (the
        # tensor it is summed with).  Built only for active skips; a skip
        # whose source width already matches still uses a projection, per
        # the paper ("passes the tensor ... through a linear layer").
        self._projections: dict[tuple[int, int], Dense] = {}
        for src, dst in sorted(spec.skips):
            target_width = widths[dst - 1]
            self._projections[(src, dst)] = Dense(
                widths[src], target_width, None, rng, name=f"proj{src}-{dst}", dtype=self.dtype
            )

        self._output = Dense(widths[m], n_classes, None, rng, name="output", dtype=self.dtype)

    # ------------------------------------------------------------------ #
    def parameters(self) -> list[Tensor]:
        params: list[Tensor] = []
        for layer in self._node_layers:
            if layer is not None:
                params.extend(layer.parameters())
        for proj in self._projections.values():
            params.extend(proj.parameters())
        params.extend(self._output.parameters())
        return params

    def num_parameters(self) -> int:
        """Total scalar parameter count (drives the training-time model)."""
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------ #
    def forward(self, x: np.ndarray | Tensor) -> Tensor:
        """Compute logits for a ``(batch, input_dim)`` design matrix."""
        h = x if isinstance(x, Tensor) else Tensor(np.asarray(x, dtype=self.dtype))
        if h.shape[-1] != self.input_dim:
            raise ValueError(f"expected input width {self.input_dim}, got {h.shape[-1]}")
        outputs: list[Tensor] = [h]  # outputs[i] is graph node i's output
        m = self.spec.num_nodes
        for i in range(1, m + 2):  # variable nodes then output node
            incoming = outputs[i - 1]
            skip_sources = [s for (s, d) in self._projections if d == i]
            if skip_sources:
                acc = incoming
                for s in sorted(skip_sources):
                    acc = acc + self._projections[(s, i)](outputs[s])
                incoming = acc.relu()
            if i <= m:
                layer = self._node_layers[i - 1]
                outputs.append(incoming if layer is None else layer(incoming))
            else:
                return self._output(incoming)
        raise AssertionError("unreachable")

    __call__ = forward

    def compile(self) -> "CompiledPlan":
        """Trace this architecture into a :class:`~repro.nn.compiled.CompiledPlan`.

        The plan is built once and cached; it shares this network's
        parameter tensors, so optimizer updates (which mutate ``p.data``
        in place) are visible to subsequent plan executions and
        :meth:`get_weights`/:meth:`set_weights` keep working.
        """
        if self._plan is None:
            from repro.nn.compiled import CompiledPlan

            self._plan = CompiledPlan(self)
        return self._plan

    def predict_logits(self, x: np.ndarray, batch_size: int = 4096) -> np.ndarray:
        """Inference-mode logits, batched to bound peak memory."""
        with no_grad():
            chunks = [
                self.forward(x[i : i + batch_size]).data
                for i in range(0, x.shape[0], batch_size)
            ]
        return np.concatenate(chunks, axis=0) if chunks else np.zeros((0, self.n_classes))

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Predicted class indices."""
        return self.predict_logits(x).argmax(axis=1)

    # ------------------------------------------------------------------ #
    def get_weights(self) -> list[np.ndarray]:
        """Copy out all parameter arrays (checkpointing)."""
        return [p.data.copy() for p in self.parameters()]

    def set_weights(self, weights: list[np.ndarray]) -> None:
        """Load parameter arrays previously produced by :meth:`get_weights`."""
        params = self.parameters()
        if len(weights) != len(params):
            raise ValueError(f"expected {len(params)} arrays, got {len(weights)}")
        for p, w in zip(params, weights):
            if p.data.shape != w.shape:
                raise ValueError(f"shape mismatch: {p.data.shape} vs {w.shape}")
            p.data[...] = w
