"""Command-line interface: run searches and baselines without writing code.

The ``search`` command is a thin adapter: argparse flags are folded into a
typed :class:`repro.campaign.CampaignConfig` and handed to
:func:`repro.campaign.build_campaign` (or
:func:`~repro.campaign.resume_campaign`), which does all the wiring.
Checkpoints embed the campaign config itself, so ``--resume`` restores
every knob — present and future — without a pinned argument list.

Examples
--------
List the benchmarks::

    python -m repro.cli datasets

Run a miniature AgEBO search::

    python -m repro.cli search --dataset covertype --method AgEBO \
        --max-evaluations 40 --workers 8 --epochs 4

Run the AgE baseline with 4 static ranks::

    python -m repro.cli search --dataset airlines --method AgE --num-ranks 4

Checkpoint a campaign and resume it after a crash (continues to a
bit-identical final history)::

    python -m repro.cli search --dataset covertype --checkpoint camp.ckpt \
        --max-evaluations 64
    python -m repro.cli search --resume camp.ckpt --max-evaluations 64

Record the structured event stream of a campaign::

    python -m repro.cli search --dataset covertype --events events.jsonl

Fit the AutoGluon-like ensemble::

    python -m repro.cli baseline --dataset albert --system autogluon
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis import utilization_summary
from repro.campaign import (
    CampaignConfig,
    CheckpointConfig,
    EvaluatorConfig,
    FaultConfig,
    JsonlEventLog,
    ProgressReporter,
    SearchConfig,
    TrainingConfig,
    build_campaign,
    resume_campaign,
)
from repro.campaign.registry import EVALUATORS
from repro.core.variants import AGEBO_VARIANTS
from repro.datasets import DATASET_SPECS, dataset_names
from repro.workflow.cache import CACHE_MODES

__all__ = ["main", "build_parser", "config_from_args"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="AgEBO-Tabular reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list the available benchmarks")

    p_search = sub.add_parser("search", help="run a NAS / joint search")
    p_search.add_argument("--dataset", choices=dataset_names(), default=None,
                          help="required unless --resume restores it")
    p_search.add_argument(
        "--method", choices=("AgE",) + AGEBO_VARIANTS, default="AgEBO"
    )
    p_search.add_argument("--num-ranks", type=int, default=1,
                          help="static ranks for --method AgE")
    p_search.add_argument("--size", type=int, default=2000, help="data set rows")
    p_search.add_argument("--num-nodes", type=int, default=5,
                          help="architecture-space depth (paper: 10)")
    p_search.add_argument("--workers", type=int, default=8)
    p_search.add_argument("--epochs", type=int, default=5)
    p_search.add_argument("--max-evaluations", type=int, default=50)
    p_search.add_argument("--wall-minutes", type=float, default=None,
                          help="simulated wall-clock budget")
    p_search.add_argument("--population", type=int, default=10)
    p_search.add_argument("--sample", type=int, default=3)
    p_search.add_argument("--kappa", type=float, default=0.001)
    p_search.add_argument("--seed", type=int, default=0)
    p_search.add_argument("--dtype", choices=("float32", "float64"), default="float64",
                          help="training precision (float32 halves memory traffic)")
    p_search.add_argument("--backend", choices=tuple(EVALUATORS.names()),
                          default="simulated",
                          help="evaluator backend (simulated clock, thread pool, "
                               "or true multi-core process pool)")
    p_search.add_argument("--cache", choices=CACHE_MODES, default="off",
                          help="evaluation memoization: 'exact' serves duplicate "
                               "configurations from memo without re-training")
    p_search.add_argument("--train-backend", choices=("compiled", "eager"),
                          default="compiled",
                          help="training execution path (compiled plan vs eager tape)")
    p_search.add_argument("--top", type=int, default=5, help="top-k models to print")
    p_search.add_argument("--save-history", type=str, default=None,
                          help="write the search history to this JSON file")
    p_search.add_argument("--report", type=str, default=None,
                          help="write a markdown campaign report to this file")
    # Structured events
    p_search.add_argument("--events", type=str, default=None,
                          help="write the campaign's JSONL event log to this file")
    p_search.add_argument("--progress", action="store_true",
                          help="print per-evaluation progress lines")
    # Fault tolerance
    p_search.add_argument("--on-error", choices=("raise", "penalize", "retry"),
                          default="penalize",
                          help="evaluation-failure policy (default: penalize)")
    p_search.add_argument("--max-retries", type=int, default=2,
                          help="retries before penalizing (--on-error retry)")
    p_search.add_argument("--retry-backoff", type=float, default=0.0,
                          help="base exponential backoff between retries (minutes)")
    p_search.add_argument("--timeout", type=float, default=None,
                          help="per-job timeout in simulated minutes")
    p_search.add_argument("--failure-objective", type=float, default=0.0,
                          help="objective recorded for penalized evaluations")
    # Fault injection (testing / demos)
    p_search.add_argument("--crash-prob", type=float, default=0.0)
    p_search.add_argument("--hang-prob", type=float, default=0.0)
    p_search.add_argument("--corrupt-prob", type=float, default=0.0)
    p_search.add_argument("--hang-factor", type=float, default=20.0)
    p_search.add_argument("--fault-seed", type=int, default=0)
    # Checkpoint / resume
    p_search.add_argument("--checkpoint", type=str, default=None,
                          help="write a resumable checkpoint to this file")
    p_search.add_argument("--checkpoint-every", type=int, default=1,
                          help="checkpoint every N completed iterations")
    p_search.add_argument("--resume", type=str, default=None,
                          help="resume a checkpointed campaign (the campaign "
                               "config is restored from the checkpoint; budgets "
                               "may be extended)")

    p_base = sub.add_parser("baseline", help="run an AutoML baseline")
    p_base.add_argument("--dataset", choices=dataset_names(), required=True)
    p_base.add_argument("--system", choices=("autogluon", "autopytorch"),
                        default="autogluon")
    p_base.add_argument("--size", type=int, default=2000)
    p_base.add_argument("--seed", type=int, default=0)
    return parser


def config_from_args(args) -> CampaignConfig:
    """Fold the ``search`` subcommand's flags into a typed campaign config."""
    return CampaignConfig(
        dataset=args.dataset,
        size=args.size,
        num_nodes=args.num_nodes,
        max_evaluations=args.max_evaluations,
        wall_time_minutes=args.wall_minutes,
        search=SearchConfig(
            method=args.method,
            population_size=args.population,
            sample_size=args.sample,
            seed=args.seed,
            num_ranks=args.num_ranks,
            kappa=args.kappa,
        ),
        training=TrainingConfig(
            epochs=args.epochs,
            nominal_epochs=20,
            backend=args.train_backend,
            dtype=args.dtype,
        ),
        evaluator=EvaluatorConfig(
            backend=args.backend, num_workers=args.workers, cache=args.cache
        ),
        faults=FaultConfig(
            on_error=args.on_error,
            max_retries=args.max_retries,
            retry_backoff=args.retry_backoff,
            timeout=args.timeout,
            failure_objective=args.failure_objective,
            crash_prob=args.crash_prob,
            hang_prob=args.hang_prob,
            corrupt_prob=args.corrupt_prob,
            hang_factor=args.hang_factor,
            fault_seed=args.fault_seed,
        ),
        checkpoint=CheckpointConfig(path=args.checkpoint, every=args.checkpoint_every),
    )


def _cmd_datasets(out) -> int:
    for name in dataset_names():
        spec = DATASET_SPECS[name]
        print(
            f"{name:<10} {spec.n_features:>3} features, {spec.n_classes:>3} classes, "
            f"nominal {spec.nominal_rows:,} rows",
            file=out,
        )
    return 0


def _cmd_search(args, out) -> int:
    if args.resume:
        # Budgets, checkpointing and outputs come from this invocation;
        # everything else is restored from the embedded campaign config.
        try:
            campaign = resume_campaign(
                args.resume,
                max_evaluations=args.max_evaluations,
                wall_time_minutes=args.wall_minutes,
                checkpoint=CheckpointConfig(
                    path=args.checkpoint, every=args.checkpoint_every
                ),
            )
        except FileNotFoundError:
            raise SystemExit(f"search: checkpoint not found: {args.resume}")
        except ValueError as exc:
            raise SystemExit(f"search: cannot resume from {args.resume}: {exc}")
        print(f"resuming campaign from {args.resume}", file=out)
    else:
        if args.dataset is None:
            raise SystemExit("search: --dataset is required unless --resume restores it")
        try:
            campaign = build_campaign(config_from_args(args))
        except ValueError as exc:
            raise SystemExit(f"search: {exc}")
    print(campaign.dataset.summary(), file=out)

    event_log = None
    if args.events:
        event_log = campaign.subscribe(JsonlEventLog(args.events))
    if args.progress:
        campaign.subscribe(ProgressReporter(out=out))

    try:
        history = campaign.run()
    finally:
        if event_log is not None:
            event_log.close()

    evaluator = campaign.evaluator
    util = utilization_summary(evaluator)
    failures = f", {history.num_failures} penalized" if history.num_failures else ""
    clock = "simulated" if campaign.config.evaluator.backend == "simulated" else "wall-clock"
    cache_note = ""
    if evaluator.cache is not None:
        cache_note = (
            f", cache hit-rate {evaluator.cache.hit_rate:.0%} "
            f"({evaluator.cache.hits} hits)"
        )
    print(
        f"\n{history.label}: {len(history)} evaluations in "
        f"{evaluator.now:.1f} {clock} minutes "
        f"({util.utilization:.0%} utilization{failures}{cache_note})",
        file=out,
    )
    print(f"{'rank':<5} {'val acc':<9} {'bs':<5} {'lr':<9} {'n':<3} duration", file=out)
    for i, record in enumerate(history.top_k(args.top), start=1):
        hp = record.config.hyperparameters
        print(
            f"{i:<5} {record.objective:<9.4f} {hp['batch_size']:<5} "
            f"{hp['learning_rate']:<9.5f} {hp['num_ranks']:<3} "
            f"{record.duration:.1f} min",
            file=out,
        )
    if args.events:
        print(f"event log written to {args.events}", file=out)
    if args.save_history:
        from repro.core import save_history

        save_history(history, args.save_history)
        print(f"history written to {args.save_history}", file=out)
    if args.report:
        from pathlib import Path

        from repro.analysis import markdown_report

        Path(args.report).write_text(markdown_report(history, campaign.hp_space))
        print(f"report written to {args.report}", file=out)
    return 0


def _cmd_baseline(args, out) -> int:
    from repro.baselines import AutoGluonLike, AutoPyTorchLike
    from repro.datasets import load_dataset

    ds = load_dataset(args.dataset, size=args.size)
    print(ds.summary(), file=out)
    if args.system == "autogluon":
        system = AutoGluonLike(preset="medium", seed=args.seed).fit(ds)
        report = system.evaluate(ds)
        print(
            f"AutoGluon-like: val={report.validation_accuracy:.4f} "
            f"test={report.test_accuracy:.4f} "
            f"inference={report.inference_seconds * 1e3:.1f} ms "
            f"({report.n_base_models} base models)",
            file=out,
        )
    else:
        system = AutoPyTorchLike(n_candidates=8, min_epochs=2, max_epochs=10,
                                 seed=args.seed).fit(ds)
        print(
            f"Auto-PyTorch-like: best val={system.best_val_accuracy_:.4f} "
            f"config={system.best_config_}",
            file=out,
        )
    return 0


def main(argv: list[str] | None = None, out=None) -> int:
    out = out or sys.stdout
    args = build_parser().parse_args(argv)
    if args.command == "datasets":
        return _cmd_datasets(out)
    if args.command == "search":
        return _cmd_search(args, out)
    if args.command == "baseline":
        return _cmd_baseline(args, out)
    raise AssertionError("unreachable")


if __name__ == "__main__":
    raise SystemExit(main())
