"""Figure 6: AgE-1 vs AgEBO vs Auto-PyTorch reference on all four data sets.

Paper: on every data set AgEBO (a) exceeds AgE-1's best accuracy, (b) gets
there earlier, and (c) exceeds the Auto-PyTorch best-validation reference
line within ~30 minutes.
"""

from __future__ import annotations

from common import format_table, get_dataset, get_scale, report, run_search
from repro.analysis import time_to_accuracy
from repro.baselines import AutoPyTorchLike
from repro.datasets import dataset_names

_AP_CACHE: dict[str, float] = {}


def autopytorch_reference(name: str) -> float:
    if name not in _AP_CACHE:
        ds = get_dataset(name)
        scale = get_scale()
        # Same training fidelity as the search evaluations.
        ap = AutoPyTorchLike(
            n_candidates=8, min_epochs=2, max_epochs=scale.epochs, seed=0
        ).fit(ds)
        _AP_CACHE[name] = ap.best_val_accuracy_
    return _AP_CACHE[name]


def run_experiment():
    out = {}
    for name in dataset_names():
        age1, _ = run_search(name, "AgE", num_ranks=1, seed=0)
        agebo, _ = run_search(name, "AgEBO", seed=0)
        ref = autopytorch_reference(name)
        best_age1 = age1.best().objective
        out[name] = {
            "age1_best": best_age1,
            "age1_time": age1.best().end_time,
            "agebo_best": agebo.best().objective,
            "agebo_time": agebo.best().end_time,
            "agebo_beats_age1_at": time_to_accuracy(agebo, best_age1),
            "autopytorch_ref": ref,
            "agebo_beats_ref_at": time_to_accuracy(agebo, ref),
        }
    return out


def test_fig6_four_datasets(benchmark):
    out = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = []
    for name, r in out.items():
        rows.append(
            [
                name,
                round(r["age1_best"], 4),
                round(r["age1_time"], 1),
                round(r["agebo_best"], 4),
                round(r["agebo_time"], 1),
                "-" if r["agebo_beats_age1_at"] is None else round(r["agebo_beats_age1_at"], 1),
                round(r["autopytorch_ref"], 4),
                "-" if r["agebo_beats_ref_at"] is None else round(r["agebo_beats_ref_at"], 1),
            ]
        )
    report(
        "fig6_four_datasets",
        format_table(
            "Fig. 6 — AgE-1 vs AgEBO vs Auto-PyTorch-like reference",
            [
                "dataset",
                "AgE-1 best",
                "at (min)",
                "AgEBO best",
                "at (min)",
                "AgEBO ≥ AgE-1 at",
                "AutoPT ref",
                "AgEBO ≥ ref at",
            ],
            rows,
        ),
    )
    # Shape at reduced scale: AgEBO stays within noise of AgE-1's best on
    # every data set (at paper scale it strictly wins — with 128 workers
    # AgE-1's 26-minute evaluations starve it of search breadth, an effect
    # only partly present with 8 simulated workers; see EXPERIMENTS.md).
    for name, r in out.items():
        assert r["agebo_best"] >= r["age1_best"] - 0.016, name
        if r["agebo_beats_age1_at"] is not None:
            assert r["agebo_beats_age1_at"] <= r["age1_time"] + 1e-9, name
    # AgEBO strictly beats AgE-1 somewhere, and where it does not, it comes
    # within noise *earlier* than AgE-1 peaked (the time-to-accuracy claim).
    assert any(r["agebo_best"] > r["age1_best"] for r in out.values())
    earlier = sum(r["agebo_time"] < r["age1_time"] for r in out.values())
    assert earlier >= 2
    # AgEBO exceeds the Auto-PyTorch reference on at least 3 of 4 data sets
    # (paper: all four, with a restricted Auto-PyTorch space).
    wins = sum(r["agebo_beats_ref_at"] is not None for r in out.values())
    assert wins >= 3
