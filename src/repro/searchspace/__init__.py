"""Search spaces for joint NAS + hyperparameter search.

- :class:`ArchitectureSpace` — the paper's 37-decision-variable DAG space of
  fully connected networks with skip connections (§III-A).
- :class:`HyperparameterSpace` — the mixed-integer data-parallel training
  space over (batch size, learning rate, number of ranks) (§IV).
- Dimension types (:class:`Real`, :class:`Integer`, :class:`Categorical`)
  shared by the hyperparameter space and the BO surrogate encoding.
"""

from repro.searchspace.dimensions import Categorical, Dimension, Integer, Real
from repro.searchspace.archspace import ArchitectureSpace
from repro.searchspace.hpspace import HyperparameterSpace, default_dataparallel_space
from repro.searchspace.mutation import mutate_architecture

__all__ = [
    "Dimension",
    "Real",
    "Integer",
    "Categorical",
    "ArchitectureSpace",
    "HyperparameterSpace",
    "default_dataparallel_space",
    "mutate_architecture",
]
