"""§IV-C: node utilization of AgE vs AgEBO (paper: both ≈94%).

The asynchronous constant-liar BO must generate hyperparameter
configurations fast enough that workers never idle waiting for the
manager; the evidence is that AgEBO's worker utilization matches AgE's.
"""

from __future__ import annotations

from common import format_table, report, run_search
from repro.analysis import utilization_summary


def run_experiment():
    out = {}
    for label, kwargs in [
        ("AgE-1", dict(variant="AgE", num_ranks=1)),
        ("AgE-4", dict(variant="AgE", num_ranks=4)),
        ("AgEBO", dict(variant="AgEBO")),
    ]:
        _, evaluator = run_search("covertype", seed=0, **kwargs)
        out[label] = utilization_summary(evaluator)
    return out


def test_utilization(benchmark):
    out = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = [
        [
            label,
            s.num_workers,
            round(s.elapsed_minutes, 1),
            s.num_jobs_done,
            f"{s.utilization:.1%}",
            round(s.mean_queue_delay, 2),
        ]
        for label, s in out.items()
    ]
    report(
        "utilization",
        format_table(
            "§IV-C — simulated node utilization (paper: ≈94% for AgE and AgEBO)",
            ["method", "workers", "elapsed (min)", "jobs", "utilization", "queue delay (min)"],
            rows,
        ),
    )
    for label, s in out.items():
        assert s.utilization > 0.7, label
    # AgEBO's BO overhead must not cost utilization relative to AgE.
    assert abs(out["AgEBO"].utilization - out["AgE-4"].utilization) < 0.2
