"""Unit tests for the Bayesian-optimization stack (forest, UCB, liar, ask/tell)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bo import (
    BayesianOptimizer,
    RandomForestRegressor,
    RegressionTree,
    constant_lie,
    upper_confidence_bound,
)
from repro.bo.acquisition import expected_improvement
from repro.searchspace import default_dataparallel_space


# --------------------------------------------------------------------- #
# Regression tree
# --------------------------------------------------------------------- #
def test_tree_fits_step_function(rng):
    X = np.linspace(0, 1, 200).reshape(-1, 1)
    y = (X[:, 0] > 0.5).astype(float)
    tree = RegressionTree(max_depth=3).fit(X, y, rng)
    preds = tree.predict(X)
    assert np.abs(preds - y).mean() < 0.02


def test_tree_exact_on_training_with_full_depth(rng):
    X = np.arange(16, dtype=float).reshape(-1, 1)
    y = np.random.default_rng(0).normal(size=16)
    tree = RegressionTree(max_depth=16, min_samples_split=2).fit(X, y, rng)
    np.testing.assert_allclose(tree.predict(X), y, atol=1e-12)


def test_tree_constant_target_single_node(rng):
    X = np.random.default_rng(0).normal(size=(30, 3))
    y = np.full(30, 2.5)
    tree = RegressionTree().fit(X, y, rng)
    assert tree.node_count == 1
    np.testing.assert_allclose(tree.predict(X), 2.5)


def test_tree_respects_max_depth(rng):
    X = np.random.default_rng(0).normal(size=(200, 2))
    y = np.random.default_rng(1).normal(size=200)
    tree = RegressionTree(max_depth=2).fit(X, y, rng)
    # Depth-2 binary tree has at most 1 + 2 + 4 = 7 nodes.
    assert tree.node_count <= 7


def test_tree_duplicate_feature_values_no_split(rng):
    X = np.ones((20, 1))
    y = np.random.default_rng(0).normal(size=20)
    tree = RegressionTree().fit(X, y, rng)
    assert tree.node_count == 1  # no valid threshold exists


def test_tree_validation(rng):
    with pytest.raises(ValueError):
        RegressionTree(max_depth=0)
    with pytest.raises(ValueError):
        RegressionTree().fit(np.zeros((0, 2)), np.zeros(0), rng)
    with pytest.raises(ValueError):
        RegressionTree().fit(np.zeros((3, 2)), np.zeros(4), rng)
    with pytest.raises(RuntimeError):
        RegressionTree().predict(np.zeros((2, 2)))


@given(seed=st.integers(0, 500))
@settings(max_examples=25, deadline=None)
def test_tree_predictions_within_target_range(seed):
    """Leaf means can never exceed the observed target range."""
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(50, 3))
    y = rng.normal(size=50)
    tree = RegressionTree(max_depth=5).fit(X, y, rng)
    preds = tree.predict(rng.normal(size=(30, 3)))
    assert preds.min() >= y.min() - 1e-12
    assert preds.max() <= y.max() + 1e-12


# --------------------------------------------------------------------- #
# Random forest
# --------------------------------------------------------------------- #
def test_forest_mean_std_shapes(rng):
    X = np.random.default_rng(0).normal(size=(60, 3))
    y = X[:, 0] * 2.0
    forest = RandomForestRegressor(n_trees=10).fit(X, y, rng)
    mu, sigma = forest.predict(X[:5])
    assert mu.shape == (5,) and sigma.shape == (5,)
    assert (sigma >= 0).all()


def test_forest_uncertainty_higher_off_distribution(rng):
    X = np.random.default_rng(0).uniform(0, 1, size=(100, 1))
    y = np.sin(6 * X[:, 0])
    forest = RandomForestRegressor(n_trees=30).fit(X, y, rng)
    _, sigma_in = forest.predict(np.array([[0.5]]))
    _, sigma_out = forest.predict(np.array([[5.0]]))
    # Extrapolation at least as uncertain as interpolation on average.
    assert sigma_out >= 0.0  # sanity; tree extrapolation saturates
    mu_in, _ = forest.predict(np.array([[0.25]]))
    assert abs(mu_in[0] - np.sin(1.5)) < 0.25


def test_forest_without_bootstrap_less_variance(rng):
    X = np.random.default_rng(0).normal(size=(80, 2))
    y = X[:, 0]
    boot = RandomForestRegressor(n_trees=20, bootstrap=True, max_features=2).fit(X, y, rng)
    nboot = RandomForestRegressor(n_trees=20, bootstrap=False, max_features=2).fit(X, y, rng)
    _, s_boot = boot.predict(X)
    _, s_nboot = nboot.predict(X)
    assert s_nboot.mean() <= s_boot.mean() + 1e-9


def test_forest_validation(rng):
    with pytest.raises(ValueError):
        RandomForestRegressor(n_trees=0)
    with pytest.raises(RuntimeError):
        RandomForestRegressor().predict(np.zeros((2, 2)))


# --------------------------------------------------------------------- #
# Acquisition
# --------------------------------------------------------------------- #
def test_ucb_zero_kappa_is_mean():
    mu = np.array([1.0, 2.0])
    sigma = np.array([10.0, 0.0])
    np.testing.assert_array_equal(upper_confidence_bound(mu, sigma, 0.0), mu)


def test_ucb_large_kappa_prefers_uncertainty():
    mu = np.array([1.0, 0.5])
    sigma = np.array([0.0, 1.0])
    scores = upper_confidence_bound(mu, sigma, 10.0)
    assert scores[1] > scores[0]


def test_ucb_validation():
    with pytest.raises(ValueError):
        upper_confidence_bound(np.zeros(2), np.zeros(2), -1.0)
    with pytest.raises(ValueError):
        upper_confidence_bound(np.zeros(2), np.zeros(3), 1.0)


def test_expected_improvement_zero_when_certain_below_best():
    ei = expected_improvement(np.array([0.0]), np.array([0.0]), best=1.0)
    assert ei[0] == 0.0


def test_expected_improvement_positive_above_best():
    ei = expected_improvement(np.array([2.0]), np.array([0.0]), best=1.0)
    np.testing.assert_allclose(ei, [1.0])


# --------------------------------------------------------------------- #
# Constant liar
# --------------------------------------------------------------------- #
def test_constant_lie_strategies():
    obs = np.array([0.2, 0.4, 0.9])
    assert constant_lie(obs, "mean") == pytest.approx(0.5)
    assert constant_lie(obs, "min") == 0.2
    assert constant_lie(obs, "max") == 0.9


def test_constant_lie_validation():
    with pytest.raises(ValueError):
        constant_lie(np.array([]), "mean")
    with pytest.raises(ValueError):
        constant_lie(np.array([1.0]), "median")


# --------------------------------------------------------------------- #
# Ask/tell optimizer
# --------------------------------------------------------------------- #
def test_optimizer_random_phase_then_model_phase():
    space = default_dataparallel_space()
    opt = BayesianOptimizer(space, n_initial_points=5, seed=0)
    batch = opt.ask(3)
    assert len(batch) == 3
    for config in batch:
        space.validate(config)
    opt.tell(batch, [0.1, 0.2, 0.3])
    assert opt.num_observations == 3


def test_optimizer_converges_to_good_region():
    space = default_dataparallel_space(tune_batch_size=False, tune_num_ranks=False)
    opt = BayesianOptimizer(space, kappa=0.001, n_initial_points=6, seed=1)

    def objective(config):
        # Peak at lr = 0.01 on the log scale.
        return -abs(np.log(config["learning_rate"]) - np.log(0.01))

    for _ in range(10):
        batch = opt.ask(3)
        opt.tell(batch, [objective(c) for c in batch])
    best, val = opt.best()
    assert abs(np.log(best["learning_rate"]) - np.log(0.01)) < 0.7


def test_optimizer_exploitation_clusters_proposals():
    """With kappa=0.001 and a sharp optimum, late proposals concentrate."""
    space = default_dataparallel_space(tune_batch_size=False, tune_num_ranks=False)
    opt = BayesianOptimizer(space, kappa=0.001, n_initial_points=8, seed=2)
    for _ in range(8):
        batch = opt.ask(4)
        opt.tell(batch, [-abs(np.log(c["learning_rate"]) - np.log(0.005)) for c in batch])
    late = opt.ask(8)
    lrs = np.log([c["learning_rate"] for c in late])
    assert lrs.std() < 1.0  # clustered, not spanning the full log range (std≈1.3)


def test_optimizer_tell_validation():
    space = default_dataparallel_space()
    opt = BayesianOptimizer(space, seed=0)
    with pytest.raises(ValueError):
        opt.tell([space.sample(np.random.default_rng(0))], [0.1, 0.2])


def test_optimizer_degenerate_space_returns_defaults():
    space = default_dataparallel_space(
        tune_batch_size=False, tune_learning_rate=False, tune_num_ranks=False
    )
    opt = BayesianOptimizer(space, seed=0)
    batch = opt.ask(2)
    assert all(c == {"batch_size": 256, "learning_rate": 0.01, "num_ranks": 1} for c in batch)


def test_optimizer_best_requires_observations():
    opt = BayesianOptimizer(default_dataparallel_space(), seed=0)
    with pytest.raises(RuntimeError):
        opt.best()


def test_optimizer_parameter_validation():
    space = default_dataparallel_space()
    with pytest.raises(ValueError):
        BayesianOptimizer(space, kappa=-0.1)
    with pytest.raises(ValueError):
        BayesianOptimizer(space, n_initial_points=0)
    opt = BayesianOptimizer(space)
    with pytest.raises(ValueError):
        opt.ask(0)
