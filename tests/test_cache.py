"""EvaluationCache: canonical hashing, backend semantics, determinism.

The headline acceptance criterion: a seeded AgE campaign with
``cache="exact"`` reproduces the cache-off search history *bit-identically*
(the simulated backend replays memoized durations on the simulated clock)
while reporting a nonzero hit-rate — duplicates cost zero busy time but the
timeline is unchanged.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import AgE
from repro.core.config import ModelConfig
from repro.core.serialization import history_to_dict
from repro.searchspace import ArchitectureSpace
from repro.workflow import (
    EvaluationCache,
    EvaluationResult,
    ProcessPoolEvaluator,
    SimulatedEvaluator,
    ThreadedEvaluator,
    canonical_config_key,
)


def arch_eval(config):
    """Deterministic pure function of the candidate config."""
    arch = np.asarray(config.arch)
    h = int(np.sum(arch * np.arange(1, arch.size + 1)))
    return EvaluationResult(
        objective=0.3 + 0.6 * ((h * 37) % 101) / 101.0,
        duration=1.0 + (h % 5),
        metadata={"h": h},
    )


def int_eval(config):
    h = (int(config) * 2654435761) % 997
    return EvaluationResult(objective=(h % 100) / 100.0, duration=1.0 + (h % 7))


# --------------------------------------------------------------------- #
# Canonical hashing
# --------------------------------------------------------------------- #
def test_key_is_order_independent_for_dicts():
    a = {"learning_rate": 0.01, "batch_size": 64, "num_ranks": 2}
    b = {"num_ranks": 2, "batch_size": 64, "learning_rate": 0.01}
    assert canonical_config_key(a) == canonical_config_key(b)
    c = dict(a, learning_rate=0.02)
    assert canonical_config_key(a) != canonical_config_key(c)


def test_key_normalizes_numpy_scalars_and_arrays():
    a = {"x": np.int64(3), "arr": np.array([1, 2, 3])}
    b = {"x": 3, "arr": [1, 2, 3]}
    assert canonical_config_key(a) == canonical_config_key(b)


def test_key_model_config_structural_equality():
    cfg_a = ModelConfig(
        arch=np.array([1, 0, 2], dtype=np.int64),
        hyperparameters={"batch_size": 64, "learning_rate": 0.01},
    )
    cfg_b = ModelConfig(
        arch=np.array([1, 0, 2], dtype=np.int64),
        hyperparameters={"learning_rate": 0.01, "batch_size": 64},
    )
    assert canonical_config_key(cfg_a) == canonical_config_key(cfg_b)
    cfg_c = ModelConfig(
        arch=np.array([1, 0, 3], dtype=np.int64),
        hyperparameters=dict(cfg_a.hyperparameters),
    )
    assert canonical_config_key(cfg_a) != canonical_config_key(cfg_c)


# --------------------------------------------------------------------- #
# Cache object semantics
# --------------------------------------------------------------------- #
def test_cache_counters_and_first_store_wins():
    cache = EvaluationCache()
    assert cache.lookup({"x": 1}) is None
    assert cache.misses == 1 and cache.hit_rate == 0.0
    assert cache.store({"x": 1}, EvaluationResult(0.5, 2.0))
    assert not cache.store({"x": 1}, EvaluationResult(0.9, 9.0))  # first wins
    hit = cache.lookup({"x": 1})
    assert hit.objective == 0.5 and hit.duration == 2.0
    assert cache.hits == 1 and cache.stores == 1 and len(cache) == 1
    assert cache.hit_rate == 0.5
    assert {"x": 1} in cache and {"x": 2} not in cache


def test_cache_returns_fresh_copies():
    cache = EvaluationCache()
    cache.store({"x": 1}, EvaluationResult(0.5, 2.0, metadata={"k": 1}))
    first = cache.lookup({"x": 1})
    first.metadata["k"] = 999
    assert cache.lookup({"x": 1}).metadata["k"] == 1


def test_cache_state_roundtrip():
    cache = EvaluationCache()
    cache.store({"x": 1}, EvaluationResult(0.5, 2.0, metadata={"h": 7}))
    cache.lookup({"x": 1})
    cache.lookup({"x": 2})
    restored = EvaluationCache()
    restored.load_state(cache.state_dict())
    assert len(restored) == 1
    assert (restored.hits, restored.misses, restored.stores) == (1, 1, 1)
    assert restored.lookup({"x": 1}).metadata == {"h": 7}
    with pytest.raises(ValueError, match="version"):
        EvaluationCache().load_state({"version": 99})


# --------------------------------------------------------------------- #
# Simulated backend: timeline replay, zero busy credit, checkpointing
# --------------------------------------------------------------------- #
def test_sim_cache_replays_duration_on_simulated_clock():
    cache = EvaluationCache()
    ev = SimulatedEvaluator(int_eval, num_workers=1, cache=cache)
    ev.submit([3, 3])
    finished = []
    while ev.num_in_flight:
        finished.extend(ev.gather())
    first, dup = sorted(finished, key=lambda j: j.job_id)
    assert not first.cache_hit and dup.cache_hit
    # Identical result, and the duplicate still occupied the worker for
    # the memoized duration — the timeline matches a cache-off run.
    assert dup.objective == first.objective
    assert dup.result.duration == first.result.duration
    assert dup.start_time == first.end_time
    assert dup.end_time == first.end_time + first.result.duration
    # ...but only the real evaluation counts as busy time.
    assert ev._busy_time == first.result.duration
    assert cache.hits == 1 and cache.stores == 1


def test_sim_cache_state_roundtrips_through_evaluator_checkpoint():
    cache = EvaluationCache()
    ev = SimulatedEvaluator(int_eval, num_workers=2, cache=cache)
    ev.submit([1, 2, 1])
    while ev.num_in_flight:
        ev.gather()
    state = ev.state_dict()
    # Restoring into a cache-less evaluator revives the memo.
    resumed = SimulatedEvaluator(int_eval, num_workers=2)
    resumed.load_state(state)
    assert resumed.cache is not None
    assert len(resumed.cache) == len(cache)
    assert resumed.cache.hits == cache.hits
    jobs = resumed.submit([2])  # duplicate of a pre-checkpoint evaluation
    while resumed.num_in_flight:
        resumed.gather()
    assert jobs[0].cache_hit


def test_sim_cache_on_off_histories_bit_identical_with_nonzero_hits():
    """Acceptance: seeded AgE, cache on vs off -> identical history; the
    cached run reports hits and strictly less busy time."""
    space = ArchitectureSpace(num_nodes=2)

    def run_search(cache):
        ev = SimulatedEvaluator(arch_eval, num_workers=3, cache=cache)
        search = AgE(space, ev, population_size=4, sample_size=2, seed=13)
        history = search.search(max_evaluations=60)
        return history, ev

    history_off, ev_off = run_search(cache=None)
    cache = EvaluationCache()
    history_on, ev_on = run_search(cache=cache)

    assert cache.hits > 0, "tiny space must produce duplicate candidates"
    da, db = history_to_dict(history_off), history_to_dict(history_on)
    assert len(da["records"]) == len(db["records"]) >= 60
    assert da == db  # bit-identical: configs, objectives, timestamps
    assert ev_on.now == ev_off.now  # same simulated timeline
    assert ev_on._busy_time < ev_off._busy_time  # hits cost no compute


# --------------------------------------------------------------------- #
# Wall-clock backends: hits finalized at submit with zero duration
# --------------------------------------------------------------------- #
def test_threaded_cache_hit_finalized_at_submit():
    cache = EvaluationCache()
    ev = ThreadedEvaluator(int_eval, num_workers=2, cache=cache)
    try:
        ev.submit([5])
        while ev.num_in_flight:
            ev.gather()
        busy_before = ev._busy_time
        jobs = ev.submit([5])
        finished = []
        while ev.num_in_flight:
            finished.extend(ev.gather())
        assert jobs[0].cache_hit
        assert finished[0].job_id == jobs[0].job_id
        assert finished[0].objective == int_eval(5).objective
        assert finished[0].start_time == finished[0].end_time  # zero wall time
        assert ev._busy_time == busy_before  # zero busy credit
        assert cache.hits == 1
    finally:
        ev.shutdown()


def test_process_cache_hit_skips_dispatch():
    cache = EvaluationCache()
    with ProcessPoolEvaluator(int_eval, num_workers=2, cache=cache) as ev:
        ev.submit([5])
        while ev.num_in_flight:
            ev.gather()
        jobs = ev.submit([5])
        finished = []
        while ev.num_in_flight:
            finished.extend(ev.gather())
    assert jobs[0].cache_hit
    assert finished[0].objective == int_eval(5).objective
    assert cache.hits == 1 and cache.stores == 1


# --------------------------------------------------------------------- #
# Campaign surface: config validation, builder wiring, metrics
# --------------------------------------------------------------------- #
def test_evaluator_config_validates_cache_mode():
    from repro.campaign import EvaluatorConfig

    assert EvaluatorConfig(cache="exact").cache == "exact"
    with pytest.raises(ValueError, match="cache"):
        EvaluatorConfig(cache="bogus")


def test_builder_constructs_cache_and_backend():
    from repro.campaign import CampaignConfig, EvaluatorConfig, SearchConfig, build_campaign

    config = CampaignConfig(
        dataset="covertype",
        size=200,
        max_evaluations=4,
        search=SearchConfig(method="AgE", population_size=3, sample_size=2),
        evaluator=EvaluatorConfig(backend="simulated", num_workers=2, cache="exact"),
    )
    campaign = build_campaign(config)
    assert isinstance(campaign.evaluator.cache, EvaluationCache)
    off = build_campaign(config.replace(evaluator=EvaluatorConfig(num_workers=2)))
    assert off.evaluator.cache is None


def test_metrics_aggregator_reports_cache_hit_rate():
    from repro.campaign import CacheHit, CacheStore, EventBus, JobGathered, MetricsAggregator

    bus = EventBus()
    metrics = MetricsAggregator()
    bus.subscribe(metrics)
    for job_id in (0, 1):
        bus.emit(
            JobGathered(
                job_id=job_id, time=1.0, objective=0.5, duration=1.0,
                submit_time=0.0, start_time=0.0, end_time=1.0, worker=0,
                failed=False, retries=0,
            )
        )
    bus.emit(CacheStore(job_id=0, key="k", time=1.0))
    bus.emit(CacheHit(job_id=1, key="k", time=1.0))
    assert metrics.num_cache_hits == 1
    assert metrics.num_cache_stores == 1
    assert metrics.cache_hit_rate == 0.5
    summary = metrics.summary()
    assert summary["num_cache_hits"] == 1
    assert summary["num_cache_stores"] == 1
    assert summary["cache_hit_rate"] == 0.5
