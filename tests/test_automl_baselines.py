"""Tests for the AutoGluon-like and Auto-PyTorch-like AutoML systems."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import AutoGluonLike, AutoPyTorchLike
from repro.baselines.autopytorch_like import FunnelConfig
from repro.datasets import load_dataset


@pytest.fixture(scope="module")
def ds():
    return load_dataset("covertype", size=1000)


@pytest.fixture(scope="module")
def fitted_ag(ds):
    return AutoGluonLike(preset="medium", seed=0).fit(ds)


def test_autogluon_like_fits_and_reports(fitted_ag, ds):
    report = fitted_ag.evaluate(ds)
    assert 0.5 < report.test_accuracy <= 1.0
    assert report.inference_seconds > 0.0
    assert report.n_base_models >= 1
    assert len(report.model_names) == len(report.weights)
    assert abs(sum(report.weights) - 1.0) < 1e-9


def test_autogluon_like_beats_single_tree(fitted_ag, ds):
    from repro.baselines import ClassificationTree

    tree = ClassificationTree(ds.n_classes, max_depth=8).fit(
        ds.X_train, ds.y_train, np.random.default_rng(0)
    )
    assert fitted_ag.evaluate(ds).test_accuracy >= tree.score(ds.X_test, ds.y_test) - 0.03


def test_autogluon_like_skips_gbm_on_many_classes():
    many = load_dataset("dionis", size=4000)
    ag = AutoGluonLike(preset="medium", seed=0)
    models = ag._candidate_models(many)
    assert "gbm" not in models
    few = load_dataset("airlines", size=500)
    assert "gbm" in ag._candidate_models(few)


def test_autogluon_like_requires_fit(ds):
    with pytest.raises(RuntimeError):
        AutoGluonLike(preset="medium").evaluate(ds)
    with pytest.raises(RuntimeError):
        AutoGluonLike(preset="medium").predict(ds.X_test)


def test_autogluon_like_preset_validation():
    with pytest.raises(ValueError):
        AutoGluonLike(preset="turbo")


def test_funnel_config_shapes():
    cfg = FunnelConfig(max_units=128, num_layers=3, learning_rate=1e-3, batch_size=64)
    layers = cfg.hidden_layers()
    assert len(layers) == 3
    assert layers[0] == 128
    assert layers[-1] <= layers[0]
    assert all(isinstance(w, int) for w in layers)


def test_autopytorch_like_runs_halving(ds):
    ap = AutoPyTorchLike(n_candidates=4, min_epochs=2, max_epochs=6, seed=0).fit(ds)
    assert ap.best_config_ is not None
    assert 0.3 < ap.best_val_accuracy_ <= 1.0
    # Candidate counts halve across rungs.
    counts = [r["n_candidates"] for r in ap.rung_history_]
    assert counts[0] == 4
    assert all(counts[i] >= counts[i + 1] for i in range(len(counts) - 1))
    # Fidelity increases across rungs.
    epochs = [r["epochs"] for r in ap.rung_history_]
    assert all(epochs[i] <= epochs[i + 1] for i in range(len(epochs) - 1))


def test_autopytorch_like_validation():
    with pytest.raises(ValueError):
        AutoPyTorchLike(n_candidates=1)
    with pytest.raises(ValueError):
        AutoPyTorchLike(min_epochs=10, max_epochs=5)


def test_autopytorch_like_deterministic(ds):
    a = AutoPyTorchLike(n_candidates=4, min_epochs=2, max_epochs=4, seed=5).fit(ds)
    b = AutoPyTorchLike(n_candidates=4, min_epochs=2, max_epochs=4, seed=5).fit(ds)
    assert a.best_val_accuracy_ == b.best_val_accuracy_
    assert a.best_config_ == b.best_config_
