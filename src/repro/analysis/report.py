"""Markdown report generation for finished search campaigns.

Produces a self-contained summary a user can commit next to a saved
history: headline metrics, the best-so-far trajectory at fixed quantiles
of the elapsed time, the top-k models with their data-parallel
hyperparameters, and (when the space is provided) hyperparameter
importances.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.importance import hyperparameter_importance
from repro.analysis.top_configs import top_k_hyperparameter_table
from repro.analysis.trajectory import curve_on_grid
from repro.core.results import SearchHistory
from repro.searchspace.hpspace import HyperparameterSpace

__all__ = ["markdown_report"]


def _md_table(headers: list[str], rows: list[list]) -> str:
    def fmt(v) -> str:
        if isinstance(v, float):
            return f"{v:.4g}"
        return str(v)

    lines = ["| " + " | ".join(headers) + " |", "|" + "---|" * len(headers)]
    for row in rows:
        lines.append("| " + " | ".join(fmt(v) for v in row) + " |")
    return "\n".join(lines)


def markdown_report(
    history: SearchHistory,
    hp_space: HyperparameterSpace | None = None,
    top_k: int = 5,
    trajectory_points: int = 6,
) -> str:
    """Render a campaign summary as GitHub-flavoured markdown."""
    if len(history) == 0:
        raise ValueError("cannot report on an empty history")
    if top_k < 1 or trajectory_points < 2:
        raise ValueError("top_k must be >= 1 and trajectory_points >= 2")

    best = history.best()
    objectives = history.objectives()
    durations = history.durations()
    end = float(history.end_times().max())

    parts = [f"# Search report — {history.label or 'unnamed'}", ""]
    parts.append(
        _md_table(
            ["evaluations", "best objective", "mean objective", "mean duration (min)",
             "elapsed (sim min)"],
            [[
                len(history),
                float(best.objective),
                float(objectives.mean()),
                float(durations.mean()),
                end,
            ]],
        )
    )

    parts.append("\n## Best-so-far trajectory\n")
    grid = np.linspace(end / trajectory_points, end, trajectory_points)
    curve = curve_on_grid(history, grid)
    parts.append(
        _md_table(
            ["sim minutes", "best objective so far"],
            [
                [round(float(t), 1), "-" if np.isnan(v) else float(v)]
                for t, v in zip(grid, curve)
            ],
        )
    )

    parts.append(f"\n## Top {top_k} models\n")
    top_rows = top_k_hyperparameter_table(history, k=top_k)
    if top_rows:
        headers = list(top_rows[0].keys())
        parts.append(_md_table(headers, [[r[h] for h in headers] for r in top_rows]))

    if hp_space is not None and hp_space.num_dimensions > 0 and len(history) >= 5:
        parts.append("\n## Hyperparameter importance\n")
        importance = hyperparameter_importance(history, hp_space)
        parts.append(
            _md_table(
                ["hyperparameter", "importance"],
                [
                    [name, f"{value:.1%}"]
                    for name, value in sorted(importance.items(), key=lambda kv: -kv[1])
                ],
            )
        )
    return "\n".join(parts) + "\n"
