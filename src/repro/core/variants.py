"""Factories for the paper's search variants.

- ``AgE-n`` (Table I / Fig. 3): static data-parallel training with ``n``
  ranks, defaults scaled by the linear scaling rule inside the trainer.
- ``AgEBO-8-LR`` (Fig. 4): tune learning rate only, ``n = 8`` fixed.
- ``AgEBO-8-LR-BS`` (Fig. 4): tune learning rate + batch size, ``n = 8``.
- ``AgEBO`` (everywhere): tune all three hyperparameters.
"""

from __future__ import annotations

from repro.core.age import AgE
from repro.core.agebo import AgEBO
from repro.searchspace.archspace import ArchitectureSpace
from repro.searchspace.hpspace import default_dataparallel_space
from repro.workflow.evaluator import Evaluator

__all__ = ["make_age_variant", "make_agebo_variant", "variant_hp_space", "AGEBO_VARIANTS"]

AGEBO_VARIANTS = ("AgEBO", "AgEBO-8-LR", "AgEBO-8-LR-BS")


def variant_hp_space(variant: str, max_ranks: int = 8):
    """The hyperparameter space of a named AgEBO variant (also used by
    ``--resume``, which must rebuild the space a checkpoint was run with)."""
    if variant == "AgEBO":
        return default_dataparallel_space(max_ranks=max_ranks)
    if variant == "AgEBO-8-LR":
        return default_dataparallel_space(
            tune_batch_size=False, tune_num_ranks=False, default_num_ranks=8
        )
    if variant == "AgEBO-8-LR-BS":
        return default_dataparallel_space(tune_num_ranks=False, default_num_ranks=8)
    raise ValueError(f"unknown variant {variant!r}; expected one of {AGEBO_VARIANTS}")


def make_age_variant(
    space: ArchitectureSpace,
    evaluator: Evaluator,
    num_ranks: int = 1,
    batch_size: int = 256,
    learning_rate: float = 0.01,
    **kwargs,
) -> AgE:
    """Build ``AgE-n``.

    The base (n=1) batch size and learning rate are stored; the
    data-parallel trainer applies the linear scaling rule at train time.
    """
    return AgE(
        space,
        evaluator,
        hyperparameters={
            "batch_size": batch_size,
            "learning_rate": learning_rate,
            "num_ranks": num_ranks,
        },
        label=f"AgE-{num_ranks}",
        **kwargs,
    )


def make_agebo_variant(
    variant: str,
    space: ArchitectureSpace,
    evaluator: Evaluator,
    max_ranks: int = 8,
    kappa: float = 0.001,
    **kwargs,
) -> AgEBO:
    """Build one of the Fig. 4 AgEBO ablation variants by name."""
    hp_space = variant_hp_space(variant, max_ranks=max_ranks)
    return AgEBO(space, hp_space, evaluator, kappa=kappa, label=variant, **kwargs)
