"""Persistence for search campaigns and trained models.

A 3-hour 129-node campaign must be inspectable offline and resumable; this
module serializes :class:`SearchHistory` to JSON (architecture vectors,
hyperparameters, objectives, cluster timings, scalar metadata) and model
weights to ``.npz``.  Loaded histories feed the same analysis tools as live
ones, and their records can warm-start a new search's population and BO.

It also defines the **checkpoint** schema: a JSON snapshot of the complete
search state — AgE population, full history, numpy RNG states, BO
tell-history, and the simulated evaluator's clock/queues/pending events —
written atomically so a killed campaign can resume bit-identically via
``AgEBO.resume`` / ``AgE.resume`` or the CLI ``--resume`` flag.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any

import numpy as np

from repro.core.config import ModelConfig
from repro.core.results import EvaluationRecord, SearchHistory
from repro.nn.graph_network import GraphNetwork

__all__ = [
    "history_to_dict",
    "history_from_dict",
    "record_to_dict",
    "record_from_dict",
    "save_history",
    "load_history",
    "save_checkpoint",
    "load_checkpoint",
    "save_model_weights",
    "load_model_weights",
    "CHECKPOINT_VERSION",
]

_FORMAT_VERSION = 1
CHECKPOINT_VERSION = 1


def _scalar_metadata(metadata: dict[str, Any], lists: bool = False) -> dict[str, Any]:
    out = {}
    for key, value in metadata.items():
        if isinstance(value, (bool, int, float, str)):
            out[key] = value
        elif isinstance(value, (np.integer, np.floating)):
            out[key] = value.item()
        elif lists and isinstance(value, (list, tuple)) and all(
            isinstance(v, (bool, int, float, str, np.integer, np.floating)) for v in value
        ):
            out[key] = [v.item() if isinstance(v, (np.integer, np.floating)) else v for v in value]
    return out


def record_to_dict(record: EvaluationRecord, rich_metadata: bool = False) -> dict[str, Any]:
    """JSON-safe representation of one evaluation record.

    ``rich_metadata=True`` (checkpoints) additionally keeps list-of-scalar
    metadata such as per-epoch accuracy curves; the default matches the
    version-1 history format (scalars only).
    """
    return {
        "arch": record.config.arch.tolist(),
        "hyperparameters": record.config.hyperparameters,
        "objective": record.objective,
        "duration": record.duration,
        "submit_time": record.submit_time,
        "start_time": record.start_time,
        "end_time": record.end_time,
        "metadata": _scalar_metadata(record.metadata, lists=rich_metadata),
    }


def record_from_dict(row: dict[str, Any]) -> EvaluationRecord:
    """Inverse of :func:`record_to_dict`."""
    return EvaluationRecord(
        config=ModelConfig(
            arch=np.asarray(row["arch"], dtype=np.int64),
            hyperparameters=dict(row["hyperparameters"]),
        ),
        objective=float(row["objective"]),
        duration=float(row["duration"]),
        submit_time=float(row["submit_time"]),
        start_time=float(row["start_time"]),
        end_time=float(row["end_time"]),
        metadata=dict(row.get("metadata", {})),
    )


def history_to_dict(history: SearchHistory) -> dict[str, Any]:
    """JSON-safe representation of a history (scalar metadata only)."""
    return {
        "version": _FORMAT_VERSION,
        "label": history.label,
        "records": [record_to_dict(record) for record in history.records],
    }


def history_from_dict(data: dict[str, Any]) -> SearchHistory:
    """Inverse of :func:`history_to_dict`."""
    if data.get("version") != _FORMAT_VERSION:
        raise ValueError(f"unsupported history format version {data.get('version')!r}")
    history = SearchHistory(label=data.get("label", ""))
    for row in data["records"]:
        history.add(record_from_dict(row))
    return history


def save_history(history: SearchHistory, path: str | Path) -> Path:
    """Write a history to a JSON file; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(history_to_dict(history), indent=1))
    return path


def load_history(path: str | Path) -> SearchHistory:
    """Read a history saved by :func:`save_history`."""
    return history_from_dict(json.loads(Path(path).read_text()))


# --------------------------------------------------------------------- #
# Checkpoints: the full, resumable search state
# --------------------------------------------------------------------- #
def save_checkpoint(search: Any, path: str | Path, extra: dict[str, Any] | None = None) -> Path:
    """Atomically write the complete state of a search to ``path``.

    ``search`` is any :class:`~repro.core.search.AgingEvolutionBase`
    subclass exposing ``state_dict()``.  The file is written to a ``.tmp``
    sibling and renamed, so a crash mid-checkpoint never corrupts the last
    good checkpoint.  ``extra`` (or the search's ``checkpoint_metadata``
    attribute) is stored verbatim for callers such as the CLI that need to
    rebuild the dataset/space context on resume.
    """
    path = Path(path)
    data = {
        "version": CHECKPOINT_VERSION,
        "algorithm": type(search).__name__,
        "search": search.state_dict(),
    }
    metadata = extra if extra is not None else getattr(search, "checkpoint_metadata", None)
    if metadata:
        data["extra"] = metadata
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(data))
    os.replace(tmp, path)
    return path


def load_checkpoint(path: str | Path) -> dict[str, Any]:
    """Read and validate a checkpoint written by :func:`save_checkpoint`."""
    data = json.loads(Path(path).read_text())
    if data.get("version") != CHECKPOINT_VERSION:
        raise ValueError(f"unsupported checkpoint version {data.get('version')!r}")
    if "search" not in data:
        raise ValueError(f"{path} is not a search checkpoint")
    return data


def save_model_weights(model: GraphNetwork, path: str | Path) -> Path:
    """Write a network's parameters to ``.npz`` (ordered as parameters())."""
    path = Path(path)
    arrays = {f"param_{i}": w for i, w in enumerate(model.get_weights())}
    np.savez(path, **arrays)
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_model_weights(model: GraphNetwork, path: str | Path) -> GraphNetwork:
    """Load ``.npz`` weights into a structurally identical network."""
    with np.load(Path(path)) as data:
        weights = [data[f"param_{i}"] for i in range(len(data.files))]
    model.set_weights(weights)
    return model
