"""From-scratch neural network substrate (paper substitute for TensorFlow).

Provides a reverse-mode autograd engine over numpy arrays, dense layers,
the activation set used by the AgEBO-Tabular search space (identity, swish,
relu, tanh, sigmoid), Adam/SGD optimizers, the gradual-warmup and
reduce-on-plateau schedules used in the paper's training recipe, and the
skip-connection graph network builder that materializes an architecture
sampled from :class:`repro.searchspace.ArchitectureSpace`.
"""

from repro.nn.autograd import Tensor, is_grad_enabled, no_grad
from repro.nn.activations import ACTIVATIONS, apply_activation
from repro.nn.initializers import glorot_uniform, he_normal, zeros_init
from repro.nn.layers import Dense, Layer
from repro.nn.losses import l2_regularization, softmax_cross_entropy
from repro.nn.metrics import accuracy, top_k_accuracy
from repro.nn.optimizers import SGD, Adam, Optimizer
from repro.nn.schedules import GradualWarmup, ReduceLROnPlateau
from repro.nn.graph_network import GraphNetwork
from repro.nn.compiled import CompiledPlan, assert_plan_equivalence
from repro.nn.trainer import Trainer, TrainResult

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "ACTIVATIONS",
    "apply_activation",
    "glorot_uniform",
    "he_normal",
    "zeros_init",
    "Dense",
    "Layer",
    "softmax_cross_entropy",
    "l2_regularization",
    "accuracy",
    "top_k_accuracy",
    "Optimizer",
    "SGD",
    "Adam",
    "GradualWarmup",
    "ReduceLROnPlateau",
    "GraphNetwork",
    "CompiledPlan",
    "assert_plan_equivalence",
    "Trainer",
    "TrainResult",
]
