"""Search-trajectory analysis (the thick lines of Figs. 3, 4 and 6)."""

from __future__ import annotations

import numpy as np

from repro.core.results import SearchHistory

__all__ = ["best_so_far_curve", "curve_on_grid", "time_to_accuracy"]


def best_so_far_curve(history: SearchHistory) -> tuple[np.ndarray, np.ndarray]:
    """(completion times, running-max objective), sorted by time."""
    return history.best_so_far()


def curve_on_grid(
    history: SearchHistory, grid: np.ndarray, fill: float = np.nan
) -> np.ndarray:
    """Best-so-far objective sampled at the given time grid.

    Grid points before the first completion get ``fill``.  This puts
    multiple searches on a common time axis for tabular comparison.
    """
    times, objs = history.best_so_far()
    grid = np.asarray(grid, dtype=float)
    if times.size == 0:
        return np.full(grid.shape, fill)
    idx = np.searchsorted(times, grid, side="right") - 1
    out = np.where(idx >= 0, objs[np.clip(idx, 0, None)], fill)
    return out


def time_to_accuracy(history: SearchHistory, threshold: float) -> float | None:
    """Earliest simulated minute at which best-so-far reached ``threshold``."""
    return history.time_to_reach(threshold)
