"""Tests for the markdown report generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import markdown_report
from repro.core import EvaluationRecord, ModelConfig, SearchHistory
from repro.searchspace import default_dataparallel_space


def make_history(n=12, label="demo-run"):
    rng = np.random.default_rng(0)
    space = default_dataparallel_space()
    h = SearchHistory(label=label)
    for i in range(n):
        hp = space.sample(rng)
        h.add(
            EvaluationRecord(
                config=ModelConfig(rng.integers(0, 4, size=3), hp),
                objective=float(rng.uniform(0.5, 0.9)),
                duration=float(rng.uniform(1, 5)),
                submit_time=float(i),
                start_time=float(i),
                end_time=float(i + 1),
            )
        )
    return h


def test_report_contains_sections():
    text = markdown_report(make_history(), default_dataparallel_space())
    assert text.startswith("# Search report — demo-run")
    assert "## Best-so-far trajectory" in text
    assert "## Top 5 models" in text
    assert "## Hyperparameter importance" in text
    assert "learning_rate" in text


def test_report_headline_numbers():
    h = make_history()
    text = markdown_report(h)
    assert str(len(h)) in text
    assert f"{h.best().objective:.4g}" in text


def test_report_without_space_skips_importance():
    text = markdown_report(make_history())
    assert "Hyperparameter importance" not in text


def test_report_small_history_skips_importance():
    text = markdown_report(make_history(n=3), default_dataparallel_space(), top_k=2)
    assert "Hyperparameter importance" not in text  # needs >= 5 evaluations
    assert "## Top 2 models" in text


def test_report_trajectory_is_monotone():
    text = markdown_report(make_history(), trajectory_points=4)
    lines = [l for l in text.splitlines() if l.startswith("|") and "." in l]
    # Extract the trajectory values (second column of the trajectory table).
    traj = []
    in_traj = False
    for line in text.splitlines():
        if line.startswith("## Best-so-far"):
            in_traj = True
            continue
        if in_traj and line.startswith("## "):
            break
        if in_traj and line.startswith("|") and "sim minutes" not in line and "---" not in line:
            value = line.split("|")[2].strip()
            if value != "-":
                traj.append(float(value))
    assert traj == sorted(traj)


def test_report_validation():
    with pytest.raises(ValueError):
        markdown_report(SearchHistory())
    with pytest.raises(ValueError):
        markdown_report(make_history(), top_k=0)
    with pytest.raises(ValueError):
        markdown_report(make_history(), trajectory_points=1)


def test_report_is_valid_markdown_tables():
    text = markdown_report(make_history(), default_dataparallel_space())
    for line in text.splitlines():
        if line.startswith("|") and not line.startswith("|---"):
            # Every table row has a consistent pipe structure.
            assert line.endswith("|")
