"""Simulated ring-allreduce over per-rank gradients.

:func:`ring_allreduce` reproduces the Baidu/Horovod ring algorithm —
reduce-scatter followed by allgather over flattened chunks — so that tests
can verify it is numerically equivalent (up to float associativity) to the
naive mean in :func:`allreduce_mean`, and so :func:`ring_transfer_stats`
can feed the communication term of the training cost model with the
actual transferred byte counts.

Two implementations of the ring coexist:

- :func:`ring_allreduce_reference` — the original chunked-list form: one
  Python loop over ranks per round, one ``.copy()`` per send.  Kept
  permanently as the readable reference the fast path is gated against.
- :class:`RingReducer` — the vectorized flat-buffer form.  All ``n`` rank
  gradients live in one ``(n, P)`` matrix; each chunk is padded to a
  common width so that every reduce-scatter/allgather round becomes a
  single fancy-indexed gather + scatter over an ``(n, n, c)`` view of one
  preallocated float64 workspace.  Chunk boundaries, padding-free lanes
  and the per-element association order are identical to the reference,
  so the two paths agree bit for bit (the test-suite gate is 1e-10).

Both public reductions accumulate in float64 (the reference semantics)
and cast the result back to the input dtype, so float32 training never
silently upcasts its optimizer state.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "allreduce_mean",
    "allreduce_mean_flat",
    "flatten_gradients",
    "gradient_segments",
    "ring_allreduce",
    "ring_allreduce_reference",
    "ring_transfer_stats",
    "RingReducer",
    "RingStats",
]

GradientList = list[np.ndarray]

#: One (offset, size, shape) triple per tensor of a flattened gradient list.
Segments = list[tuple[int, int, tuple[int, ...]]]


def gradient_segments(grads: GradientList) -> Segments:
    """The (offset, size, shape) layout of ``grads`` inside a flat buffer."""
    segments: Segments = []
    offset = 0
    for g in grads:
        segments.append((offset, g.size, g.shape))
        offset += g.size
    return segments


def flatten_gradients(
    grads_per_rank: list[GradientList],
    out: np.ndarray | None = None,
    dtype=np.float64,
) -> tuple[np.ndarray, Segments]:
    """Pack aligned per-rank gradient lists into one ``(n, P)`` matrix."""
    _check_alignment(grads_per_rank)
    segments = gradient_segments(grads_per_rank[0])
    total = segments[-1][0] + segments[-1][1] if segments else 0
    n = len(grads_per_rank)
    if out is None:
        out = np.empty((n, total), dtype=dtype)
    elif out.shape != (n, total):
        raise ValueError(f"out has shape {out.shape}, expected {(n, total)}")
    for r, grads in enumerate(grads_per_rank):
        row = out[r]
        for (offset, size, _), g in zip(segments, grads):
            row[offset : offset + size] = g.ravel()
    return out, segments


def _unflatten(flat: np.ndarray, segments: Segments, dtype) -> GradientList:
    return [
        flat[offset : offset + size].reshape(shape).astype(dtype)
        for offset, size, shape in segments
    ]


def allreduce_mean(grads_per_rank: list[GradientList]) -> GradientList:
    """Elementwise mean of aligned gradient lists (the reference reduction).

    Accumulates in float64 in ascending rank order; the result is cast back
    to each input tensor's dtype.
    """
    _check_alignment(grads_per_rank)
    n = len(grads_per_rank)
    if n == 1:
        return [g.copy() for g in grads_per_rank[0]]
    out: GradientList = []
    for tensors in zip(*grads_per_rank):
        acc = tensors[0].astype(np.float64, copy=True)
        for t in tensors[1:]:
            acc += t
        out.append((acc / n).astype(tensors[0].dtype))
    return out


def allreduce_mean_flat(flat: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
    """Row mean of an ``(n, P)`` flat gradient matrix.

    Accumulates in float64 in ascending rank order — the exact association
    order of :func:`allreduce_mean` — then casts into ``out`` (allocated in
    ``flat``'s dtype when not supplied).
    """
    if flat.ndim != 2:
        raise ValueError(f"expected an (n, P) matrix, got shape {flat.shape}")
    n = flat.shape[0]
    if n < 1:
        raise ValueError("need at least one rank")
    if out is None:
        out = np.empty(flat.shape[1], dtype=flat.dtype)
    if n == 1:
        out[:] = flat[0]
        return out
    acc = flat[0].astype(np.float64, copy=True)
    for r in range(1, n):
        acc += flat[r]
    acc /= n
    out[:] = acc
    return out


@dataclass(frozen=True)
class RingStats:
    """Communication accounting for one ring-allreduce."""

    num_ranks: int
    message_steps: int  # sequential communication rounds
    bytes_sent_per_rank: int  # payload each rank ships over the ring


def ring_transfer_stats(num_ranks: int, total_bytes: int) -> RingStats:
    """Bytes/steps of a ring allreduce of a ``total_bytes`` buffer.

    Each of the ``2(n-1)`` rounds moves one ``total_bytes / n`` chunk per
    rank, for ``2 (n-1)/n · total_bytes`` shipped per rank — the classic
    bandwidth-optimal figure.
    """
    if num_ranks < 1:
        raise ValueError("num_ranks must be >= 1")
    if num_ranks == 1:
        return RingStats(1, 0, 0)
    steps = 2 * (num_ranks - 1)
    per_rank = int(round(2 * (num_ranks - 1) / num_ranks * total_bytes))
    return RingStats(num_ranks, steps, per_rank)


class RingReducer:
    """Vectorized flat-buffer ring allreduce for repeated ``(n, P)`` reductions.

    The constructor precomputes everything shape-dependent — the linspace
    chunk bounds of the reference, the scatter map from flat positions into
    the padded ``(n, n·c)`` workspace, and the per-round source/destination
    index vectors — so :meth:`reduce` runs ``2(n-1)`` rounds of pure
    fancy-indexed array arithmetic with zero per-step allocation.

    Padding lanes (chunk positions past a chunk's true length) only ever
    combine with other padding lanes, and are re-zeroed each call, so they
    never contaminate a result.
    """

    def __init__(self, num_ranks: int, num_params: int) -> None:
        if num_ranks < 1:
            raise ValueError("num_ranks must be >= 1")
        if num_params < 1:
            raise ValueError("num_params must be >= 1")
        self.num_ranks = n = num_ranks
        self.num_params = P = num_params
        if n == 1:
            return
        bounds = np.linspace(0, P, n + 1).astype(np.intp)
        sizes = np.diff(bounds)
        c = int(sizes.max())
        chunk_of = np.repeat(np.arange(n), sizes)
        within = np.arange(P) - bounds[chunk_of]
        # Position of flat element p inside one padded workspace row.
        self._scatter = chunk_of * c + within
        pad = np.ones(n * c, dtype=bool)
        pad[self._scatter] = False
        self._pad_cols = np.flatnonzero(pad)
        # Chunks are contiguous in both the flat vector and the workspace,
        # so pack/unpack run as n slice copies instead of a P-element
        # fancy-indexed scatter/gather.
        self._copy_spans = [
            (slice(bounds[k], bounds[k + 1]), slice(k * c, k * c + int(sizes[k])))
            for k in range(n)
        ]
        self._work = np.zeros((n, n * c))
        self._chunk_width = c
        self._src = np.arange(n)
        self._dst = (self._src + 1) % n

    def reduce(self, flat: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Ring-mean over the rank axis of ``flat``; returns a ``(P,)`` vector.

        The result is computed in float64 and cast into ``out`` (allocated
        in ``flat``'s dtype when not supplied).
        """
        n, P = self.num_ranks, self.num_params
        if flat.shape != (n, P):
            raise ValueError(f"expected shape {(n, P)}, got {flat.shape}")
        if out is None:
            out = np.empty(P, dtype=flat.dtype)
        if n == 1:
            out[:] = flat[0]
            return out
        work = self._work
        for flat_span, work_span in self._copy_spans:
            work[:, work_span] = flat[:, flat_span]  # upcasts to float64
        if self._pad_cols.size:
            work[:, self._pad_cols] = 0.0
        rounds = work.reshape(n, n, self._chunk_width)
        src, dst = self._src, self._dst
        # Reduce-scatter: rank r ships chunk (r - step) mod n to rank r+1.
        # The fancy-indexed gather on the right-hand side snapshots the
        # pre-round values, exactly like the reference's explicit sends.
        for step in range(n - 1):
            k = (src - step) % n
            rounds[dst, k] += rounds[src, k]
        # Allgather: circulate each completed chunk around the ring.
        for step in range(n - 1):
            k = (src + 1 - step) % n
            rounds[dst, k] = rounds[src, k]
        work[0] /= n  # divide in float64, then cast into ``out``
        for flat_span, work_span in self._copy_spans:
            out[flat_span] = work[0, work_span]
        return out


def ring_allreduce(grads_per_rank: list[GradientList]) -> GradientList:
    """Average gradients via the vectorized flat-buffer ring.

    Packs the per-rank lists into one ``(n, P)`` float64 matrix, runs
    :class:`RingReducer`, and unflattens the mean back to the input
    tensors' shapes and dtype.  Bit-identical to
    :func:`ring_allreduce_reference` (same chunk bounds, same per-element
    association order).
    """
    flat, segments = flatten_gradients(grads_per_rank)
    n = len(grads_per_rank)
    dtype = grads_per_rank[0][0].dtype if grads_per_rank[0] else np.float64
    if n == 1:
        return [g.copy() for g in grads_per_rank[0]]
    mean = RingReducer(n, flat.shape[1]).reduce(flat)
    return _unflatten(mean, segments, dtype)


def ring_allreduce_reference(grads_per_rank: list[GradientList]) -> GradientList:
    """Average gradients via an explicit chunked-list simulated ring.

    The per-rank gradient lists are flattened into one buffer per rank and
    the ring proceeds in ``2(n-1)`` rounds: ``n-1`` reduce-scatter rounds in
    which rank ``r`` sends chunk ``(r - step) mod n`` to rank ``r+1``, then
    ``n-1`` allgather rounds circulating the fully reduced chunks.  The
    mean (sum / n) is computed chunk-wise, then unflattened.

    This is the readable reference :func:`ring_allreduce` (and the flat
    :class:`RingReducer` under it) is gated against.
    """
    _check_alignment(grads_per_rank)
    n = len(grads_per_rank)
    if n == 1:
        return [g.copy() for g in grads_per_rank[0]]

    shapes = [g.shape for g in grads_per_rank[0]]
    sizes = [g.size for g in grads_per_rank[0]]
    dtype = grads_per_rank[0][0].dtype
    buffers = [
        np.concatenate([g.ravel().astype(np.float64) for g in grads]) for grads in grads_per_rank
    ]
    total = buffers[0].size
    bounds = np.linspace(0, total, n + 1).astype(np.intp)
    chunks = [slice(bounds[i], bounds[i + 1]) for i in range(n)]

    # Reduce-scatter: after n-1 rounds, rank r holds the full sum of chunk
    # (r + 1) mod n.
    for step in range(n - 1):
        sends = [buffers[r][chunks[(r - step) % n]].copy() for r in range(n)]
        for r in range(n):
            dst = (r + 1) % n
            buffers[dst][chunks[(r - step) % n]] += sends[r]

    # Allgather: circulate each completed chunk around the ring.
    for step in range(n - 1):
        sends = [buffers[r][chunks[(r + 1 - step) % n]].copy() for r in range(n)]
        for r in range(n):
            dst = (r + 1) % n
            buffers[dst][chunks[(r + 1 - step) % n]] = sends[r]

    mean = buffers[0] / n
    out: GradientList = []
    offset = 0
    for shape, size in zip(shapes, sizes):
        out.append(mean[offset : offset + size].reshape(shape).astype(dtype))
        offset += size
    return out


def _check_alignment(grads_per_rank: list[GradientList]) -> None:
    if not grads_per_rank:
        raise ValueError("need at least one rank")
    ref = grads_per_rank[0]
    for r, grads in enumerate(grads_per_rank[1:], start=1):
        if len(grads) != len(ref):
            raise ValueError(f"rank {r} has {len(grads)} tensors, rank 0 has {len(ref)}")
        for i, (a, b) in enumerate(zip(ref, grads)):
            if a.shape != b.shape:
                raise ValueError(f"tensor {i} shape mismatch: {a.shape} vs {b.shape}")
