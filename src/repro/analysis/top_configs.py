"""High-performer counting and best-hyperparameter tables.

Figures 5 and 8 count *unique* architectures whose validation accuracy
exceeds a threshold computed as the minimum across methods of each
method's 0.99-quantile of validation accuracies.  Table III lists the
data-parallel hyperparameters of the top-5 models per data set.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.core.results import EvaluationRecord, SearchHistory

__all__ = [
    "high_performer_threshold",
    "count_unique_high_performers",
    "top_k_hyperparameter_table",
    "top_fraction_records",
]


def high_performer_threshold(
    histories: Sequence[SearchHistory], quantile: float = 0.99
) -> float:
    """Min over histories of the per-history objective quantile (paper §IV-B)."""
    if not histories:
        raise ValueError("need at least one history")
    if not 0.0 < quantile <= 1.0:
        raise ValueError("quantile must be in (0, 1]")
    values = []
    for h in histories:
        objs = h.objectives()
        if objs.size == 0:
            raise ValueError(f"history {h.label!r} is empty")
        values.append(float(np.quantile(objs, quantile)))
    return min(values)


def count_unique_high_performers(
    history: SearchHistory, threshold: float
) -> tuple[np.ndarray, np.ndarray]:
    """Cumulative count of unique architectures above ``threshold`` over time.

    Returns (completion times, counts); uniqueness is on the encoded
    architecture vector, so re-discovering the same network (by different
    hyperparameters) is counted once.
    """
    records = sorted(history.records, key=lambda r: r.end_time)
    seen: set[tuple] = set()
    times: list[float] = []
    counts: list[int] = []
    for r in records:
        if r.objective >= threshold:
            key = r.config.key()
            if key not in seen:
                seen.add(key)
                times.append(r.end_time)
                counts.append(len(seen))
    return np.asarray(times), np.asarray(counts, dtype=np.int64)


def top_k_hyperparameter_table(history: SearchHistory, k: int = 5) -> list[dict[str, Any]]:
    """Table III rows: hyperparameters + accuracy of the top-``k`` models."""
    rows = []
    for r in history.top_k(k):
        row = dict(sorted(r.config.hyperparameters.items()))
        row["validation_accuracy"] = r.objective
        rows.append(row)
    return rows


def top_fraction_records(
    history: SearchHistory, fraction: float = 0.01, minimum: int = 1
) -> list[EvaluationRecord]:
    """The top ``fraction`` of records by objective (Fig. 7's top 1%)."""
    if not 0.0 < fraction <= 1.0:
        raise ValueError("fraction must be in (0, 1]")
    k = max(minimum, int(round(fraction * len(history))))
    return history.top_k(k)
