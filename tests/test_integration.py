"""Integration tests: full searches with real training on the simulated cluster.

These exercise the complete stack — dataset → search space → evaluation
(real data-parallel training) → simulated cluster → search loop → analysis
— at a miniature scale, asserting the paper's qualitative relationships.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import high_performer_threshold, utilization_summary
from repro.core import ModelEvaluation, make_age_variant, make_agebo_variant
from repro.searchspace import ArchitectureSpace
from repro.workflow import SimulatedEvaluator, ThreadedEvaluator


@pytest.fixture(scope="module")
def setting(tiny_covertype):
    return tiny_covertype, ArchitectureSpace(num_nodes=3)


def run_search(ds, space, make_search, max_evals=25, workers=4, epochs=3):
    run = ModelEvaluation(ds, space, epochs=epochs, nominal_epochs=20)
    ev = SimulatedEvaluator(run, num_workers=workers)
    search = make_search(space, ev)
    history = search.search(max_evaluations=max_evals)
    return history, ev


def test_age1_full_pipeline(setting):
    ds, space = setting
    hist, ev = run_search(
        ds,
        space,
        lambda s, e: make_age_variant(s, e, num_ranks=1, population_size=6, sample_size=2, seed=0),
    )
    assert len(hist) >= 25
    assert 0.3 < hist.best().objective <= 1.0
    assert ev.now > 0


def test_agebo_full_pipeline(setting):
    ds, space = setting
    hist, ev = run_search(
        ds,
        space,
        lambda s, e: make_agebo_variant(
            "AgEBO", s, e, population_size=6, sample_size=2, seed=0, n_initial_points=6
        ),
    )
    assert len(hist) >= 25
    # BO explored ranks; durations must reflect the rank choice.
    by_rank = {}
    for r in hist:
        by_rank.setdefault(r.config.num_ranks, []).append(r.duration)
    if len(by_rank) >= 2:
        ranks = sorted(by_rank)
        assert np.mean(by_rank[ranks[-1]]) < np.mean(by_rank[ranks[0]])


def test_agebo_evaluates_more_architectures_than_age1_per_simtime(setting):
    """The headline claim: autotuned DP training packs more evaluations
    into the same simulated wall time."""
    ds, space = setting
    budget = 120.0  # simulated minutes

    def run(make):
        run_fn = ModelEvaluation(ds, space, epochs=2, nominal_epochs=20)
        ev = SimulatedEvaluator(run_fn, num_workers=4)
        search = make(space, ev)
        return search.search(wall_time_minutes=budget)

    hist_age1 = run(
        lambda s, e: make_age_variant(s, e, num_ranks=1, population_size=6, sample_size=2, seed=0)
    )
    hist_age8 = run(
        lambda s, e: make_age_variant(s, e, num_ranks=8, population_size=6, sample_size=2, seed=0)
    )
    assert len(hist_age8) > len(hist_age1)


def test_utilization_is_high(setting):
    ds, space = setting
    hist, ev = run_search(
        ds,
        space,
        lambda s, e: make_age_variant(s, e, num_ranks=2, population_size=6, sample_size=2, seed=1),
        max_evals=30,
    )
    summary = utilization_summary(ev)
    assert summary.utilization > 0.75  # paper reports ≈0.94 at full scale


def test_threshold_and_top_configs_on_real_history(setting):
    ds, space = setting
    hist, _ = run_search(
        ds,
        space,
        lambda s, e: make_age_variant(s, e, num_ranks=1, population_size=6, sample_size=2, seed=2),
        max_evals=20,
    )
    thr = high_performer_threshold([hist], quantile=0.9)
    assert 0.0 < thr <= 1.0


def test_threaded_evaluator_runs_same_search(setting):
    """The search loop is backend-agnostic: real threads work too."""
    ds, space = setting
    run_fn = ModelEvaluation(ds, space, epochs=2)
    ev = ThreadedEvaluator(run_fn, num_workers=2)
    try:
        search = make_age_variant(
            space, ev, num_ranks=1, population_size=4, sample_size=2, seed=0
        )
        hist = search.search(max_evaluations=6)
        assert len(hist) >= 6
        assert all(0.0 <= r.objective <= 1.0 for r in hist)
    finally:
        ev.shutdown()


def test_search_reproducibility_end_to_end(setting):
    ds, space = setting

    def once():
        hist, _ = run_search(
            ds,
            space,
            lambda s, e: make_agebo_variant(
                "AgEBO", s, e, population_size=5, sample_size=2, seed=7, n_initial_points=4
            ),
            max_evals=12,
            epochs=2,
        )
        return hist.objectives()

    np.testing.assert_array_equal(once(), once())
