"""Evaluation memoization: canonical config hashing and the result cache.

AgE's mutation loop routinely resamples architectures that were already
trained (small spaces, aging populations), and each duplicate costs a full
training run.  :class:`EvaluationCache` memoizes finished
:class:`~repro.workflow.jobs.EvaluationResult` records keyed by a
canonical, order-independent hash of the candidate configuration
``(arch, hyperparameters)`` so every evaluator backend can return a
duplicate's result without re-training.

Semantics (kept deliberately uniform across backends):

- A *hit* returns the memoized result verbatim — objective, declared
  duration and metadata — so gathered records are indistinguishable from a
  recomputation of a deterministic run function.
- The job that hit is credited **zero busy time** ("finalized with
  ``duration=0``"): no compute happened, so ``utilization()`` stays honest.
- The :class:`~repro.workflow.evaluator.SimulatedEvaluator` replays the
  memoized duration on the simulated clock (the worker stays reserved until
  ``start + duration``), which keeps the campaign timeline — and therefore
  the search history — bit-identical with the cache on or off.  The
  wall-clock backends short-circuit instead: a hit finishes at submit time.
- Only successful (non-penalized) results are stored; failures always
  re-run.

The cache is manipulated exclusively from the manager thread (``submit`` /
``gather``), so it needs no locking, and its full contents round-trip
through evaluator checkpoints via :meth:`EvaluationCache.state_dict`.

Determinism caveat: a hit skips the run-function call, so *stateful* run
functions (e.g. a :class:`~repro.workflow.faults.FaultInjector`, whose RNG
advances per call) observe a shorter call sequence than a cache-off run.
Bit-identical cache-on/off histories are guaranteed for deterministic run
functions only.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

import numpy as np

from repro.workflow.jobs import EvaluationResult

__all__ = ["EvaluationCache", "canonical_config_key", "CACHE_MODES"]

#: Accepted values of the ``cache`` knob on evaluator configs / the CLI.
CACHE_MODES = ("off", "exact")


def _canonicalize(value: Any) -> Any:
    """JSON-ready, order-independent form of a configuration value.

    Mappings are reduced to sorted-key objects (insertion order never
    matters), sets are sorted, numpy arrays/scalars become lists/scalars,
    and ``ModelConfig``-shaped objects (anything with ``arch`` +
    ``hyperparameters``) get a tagged structural encoding so equal
    configurations hash equal regardless of how they were built.
    """
    if hasattr(value, "arch") and hasattr(value, "hyperparameters"):
        return {
            "__model_config__": {
                "arch": np.asarray(value.arch).tolist(),
                "hp": _canonicalize(dict(value.hyperparameters)),
            }
        }
    if isinstance(value, dict):
        return {str(k): _canonicalize(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canonicalize(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted(_canonicalize(v) for v in value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.integer, np.floating, np.bool_)):
        return value.item()
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    # Last resort for exotic config objects: their repr.  Stable as long
    # as the object's repr is (documented requirement for custom configs).
    return repr(value)


def canonical_config_key(config: Any) -> str:
    """Canonical order-independent digest of a candidate configuration.

    Two configs that differ only in dict key order (or numpy vs builtin
    scalar types) map to the same key; any value difference changes it.
    """
    payload = json.dumps(
        _canonicalize(config), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class EvaluationCache:
    """Exact-match memoization of finished evaluation results.

    ``lookup`` / ``store`` count hits, misses and stores so campaigns can
    report a hit rate; :meth:`state_dict` / :meth:`load_state` serialize
    the whole cache (entries + counters) into evaluator checkpoints.
    """

    def __init__(self) -> None:
        self._entries: dict[str, EvaluationResult] = {}
        self.hits = 0
        self.misses = 0
        self.stores = 0

    # ------------------------------------------------------------------ #
    def key(self, config: Any) -> str:
        return canonical_config_key(config)

    def lookup(self, config: Any) -> EvaluationResult | None:
        """The memoized result for ``config``, or None (counts hit/miss)."""
        cached = self._entries.get(self.key(config))
        if cached is None:
            self.misses += 1
            return None
        self.hits += 1
        # Fresh metadata dict: callers (and SearchHistory records) must not
        # alias the cached entry's mutable state.
        return EvaluationResult(
            objective=cached.objective,
            duration=cached.duration,
            metadata=dict(cached.metadata),
        )

    def store(self, config: Any, result: EvaluationResult) -> bool:
        """Memoize a successful result; first store per key wins.

        Returns True when a new entry was written (False for an already
        cached key — e.g. identical configs that were in flight together).
        """
        key = self.key(config)
        if key in self._entries:
            return False
        self._entries[key] = EvaluationResult(
            objective=result.objective,
            duration=result.duration,
            metadata=dict(result.metadata),
        )
        self.stores += 1
        return True

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, config: Any) -> bool:
        return self.key(config) in self._entries

    @property
    def hit_rate(self) -> float:
        """Hits over lookups so far (0.0 before any lookup)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    # ------------------------------------------------------------------ #
    # Checkpointing
    # ------------------------------------------------------------------ #
    def state_dict(self) -> dict[str, Any]:
        """JSON-safe snapshot of all entries and counters."""
        from repro.workflow.jobs import _jsonable_metadata

        return {
            "version": 1,
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "entries": {
                key: {
                    "objective": r.objective,
                    "duration": r.duration,
                    "metadata": _jsonable_metadata(r.metadata),
                }
                for key, r in self._entries.items()
            },
        }

    def load_state(self, state: dict[str, Any]) -> None:
        """Restore a snapshot taken by :meth:`state_dict`."""
        if state.get("version") != 1:
            raise ValueError(
                f"unsupported evaluation-cache state version {state.get('version')!r}"
            )
        self.hits = int(state["hits"])
        self.misses = int(state["misses"])
        self.stores = int(state["stores"])
        self._entries = {
            key: EvaluationResult(
                objective=float(row["objective"]),
                duration=float(row["duration"]),
                metadata=dict(row.get("metadata", {})),
            )
            for key, row in state["entries"].items()
        }
