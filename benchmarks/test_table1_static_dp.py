"""Table I: AgE with static data-parallel training (n = 1, 2, 4, 8).

Paper result (Covertype): evaluated-architecture count grows with n
(632 → 4221), mean training time falls near-linearly (26.5 → 3.2 min),
validation accuracy peaks at n ∈ {2, 4} (0.925) and degrades at n = 8
(0.902).
"""

from __future__ import annotations

from common import format_table, mean_std, report, run_search

RANKS = (1, 2, 4, 8)


def run_experiment():
    rows = []
    raw = {}
    for n in RANKS:
        history, _ = run_search("covertype", "AgE", num_ranks=n, seed=0)
        t_mean, t_std = mean_std(history.durations())
        rows.append(
            [
                f"AgE-{n}",
                len(history),
                f"{t_mean:.2f} ± {t_std:.2f}",
                round(history.best().objective, 4),
            ]
        )
        raw[n] = (len(history), t_mean, history.best().objective)
    return rows, raw


def test_table1_static_dp(benchmark):
    rows, raw = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report(
        "table1_static_dp",
        format_table(
            "Table I — AgE with static data-parallel training (Covertype)",
            ["variant", "num architectures", "train time (sim min)", "best val accuracy"],
            rows,
        ),
    )
    counts = {n: raw[n][0] for n in RANKS}
    times = {n: raw[n][1] for n in RANKS}
    # Shape assertions from the paper: more ranks → more architectures
    # evaluated in the same budget, at shorter per-architecture times.
    assert counts[8] > counts[1]
    assert times[1] > times[2] > times[4] > times[8]
    # Near-linear time scaling (within 2x of ideal at n=8).
    assert times[1] / times[8] > 4.0
