"""Figure 5: unique high-performing architectures over time (Covertype).

Paper: AgEBO accumulates 1-2 orders of magnitude more unique architectures
above the 0.99-quantile threshold than AgE-n, reaching AgE-4/8's final
count in about half the time.
"""

from __future__ import annotations

from common import format_table, get_scale, report, run_search
from repro.analysis import count_unique_high_performers, high_performer_threshold

METHODS = [("AgE-1", 1), ("AgE-2", 2), ("AgE-4", 4), ("AgE-8", 8), ("AgEBO", None)]


def run_experiment():
    histories = {}
    for label, n in METHODS:
        if n is None:
            histories[label], _ = run_search("covertype", "AgEBO", seed=0)
        else:
            histories[label], _ = run_search("covertype", "AgE", num_ranks=n, seed=0)
    threshold = high_performer_threshold(
        list(histories.values()), quantile=get_scale().hp_quantile
    )
    counts = {}
    for label, hist in histories.items():
        times, cum = count_unique_high_performers(hist, threshold)
        total = int(cum[-1]) if cum.size else 0
        counts[label] = {
            "total": total,
            "rate": total / max(len(hist), 1),
            "first_time": float(times[0]) if times.size else None,
            "half_time": float(times[len(times) // 2]) if times.size else None,
        }
    return threshold, counts


def test_fig5_high_performers(benchmark):
    threshold, counts = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = [
        [
            label,
            c["total"],
            f"{c['rate']:.1%}",
            "-" if c["first_time"] is None else round(c["first_time"], 1),
            "-" if c["half_time"] is None else round(c["half_time"], 1),
        ]
        for label, c in counts.items()
    ]
    report(
        "fig5_high_performers",
        format_table(
            f"Fig. 5 — unique architectures above threshold {threshold:.4f} (Covertype)",
            [
                "method",
                "unique high performers",
                "per evaluation",
                "first at (min)",
                "half count at (min)",
            ],
            rows,
        ),
    )
    # Shape: autotuned hyperparameters make a far larger fraction of
    # AgEBO's evaluations high-performing than the *aggressively parallel*
    # static variants (n=4, 8), whose scaled lr/bs rarely clear the bar —
    # the mechanism behind the paper's order-of-magnitude count gap.
    # (AgE-1/2 run few, gentle evaluations that mostly clear the low joint
    # threshold at bench scale; at paper scale — 128 workers, thousands of
    # evaluations, a 0.99-quantile bar — the rate advantage compounds into
    # Fig. 5's absolute gap.)
    agebo_rate = counts["AgEBO"]["rate"]
    assert agebo_rate >= 2 * max(counts["AgE-4"]["rate"], counts["AgE-8"]["rate"])
    assert counts["AgEBO"]["total"] >= counts["AgE-8"]["total"]
    # AgEBO finds its first high performer no later than the scaled
    # variants (the time-to-quality half of the paper's claim).
    agebo_first = counts["AgEBO"]["first_time"]
    assert agebo_first is not None
    for n in (4, 8):
        other = counts[f"AgE-{n}"]["first_time"]
        assert other is None or agebo_first <= other + 1e-9
