"""Named registries for pluggable campaign components.

New backends register here and become available to
:func:`repro.campaign.build_campaign` (and therefore the CLI) without
touching either:

- :data:`EVALUATORS` — ``name -> (run_function, EvaluatorConfig,
  FaultPolicy) -> Evaluator``;
- :data:`SEARCH_METHODS` — ``name ->`` :class:`SearchMethod` (build +
  resume factories);
- :data:`SURROGATES` — ``name -> () -> surrogate`` with a
  ``fit(X, y, rng) -> model`` / ``predict(X) -> (mu, sigma)`` interface;
  :class:`repro.bo.optimizer.BayesianOptimizer` consults this registry
  for surrogate names it does not know natively.

The built-in entries are registered by :mod:`repro.campaign.builder`
(imported by the package ``__init__``, so any ``repro.campaign`` import
sees them).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterator

__all__ = ["Registry", "SearchMethod", "EVALUATORS", "SEARCH_METHODS", "SURROGATES"]


class Registry:
    """A named string-keyed registry with decorator-style registration."""

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._entries: dict[str, Any] = {}

    def register(self, name: str, value: Any = None):
        """Register ``value`` under ``name``; usable as a decorator."""
        if not isinstance(name, str) or not name:
            raise ValueError(f"{self.kind} name must be a non-empty string")

        def _add(obj: Any) -> Any:
            if name in self._entries and self._entries[name] is not obj:
                raise ValueError(f"{self.kind} {name!r} is already registered")
            self._entries[name] = obj
            return obj

        return _add if value is None else _add(value)

    def get(self, name: str) -> Any:
        try:
            return self._entries[name]
        except KeyError:
            raise ValueError(
                f"unknown {self.kind} {name!r}; registered: {self.names()}"
            ) from None

    def names(self) -> list[str]:
        return sorted(self._entries)

    def __contains__(self, name: object) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Registry({self.kind!r}, entries={self.names()})"


@dataclass(frozen=True)
class SearchMethod:
    """One registered search method.

    ``build(config, space, hp_space, evaluator)`` constructs a fresh
    search; ``resume(path, config, space, hp_space, run_function,
    evaluator)`` rebuilds one from a checkpoint.  ``uses_bo`` tells the
    builder whether to construct the variant's hyperparameter space.
    """

    name: str
    build: Callable
    resume: Callable
    uses_bo: bool = True


EVALUATORS = Registry("evaluator backend")
SEARCH_METHODS = Registry("search method")
SURROGATES = Registry("surrogate")
