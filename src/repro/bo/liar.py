"""Constant-liar strategy for multipoint (asynchronous) acquisition.

To emit a batch of configurations without waiting for their evaluations,
the optimizer pretends each selected point has already returned a dummy
objective value (the *lie*), refits the surrogate, and selects the next
point.  The paper uses the mean of all observed validation accuracies as
the lie; min ("pessimistic", encourages spread) and max ("optimistic",
encourages clustering) are provided for the liar-strategy ablation bench.
"""

from __future__ import annotations

import numpy as np

__all__ = ["constant_lie", "LIE_STRATEGIES"]

LIE_STRATEGIES = ("mean", "min", "max")


def constant_lie(observed: np.ndarray, strategy: str = "mean") -> float:
    """Dummy objective value for pending points.

    Parameters
    ----------
    observed:
        Objective values collected so far (must be non-empty).
    strategy:
        One of ``"mean"`` (paper default), ``"min"``, ``"max"``.
    """
    observed = np.asarray(observed, dtype=float)
    if observed.size == 0:
        raise ValueError("constant lie requires at least one observation")
    if strategy == "mean":
        return float(observed.mean())
    if strategy == "min":
        return float(observed.min())
    if strategy == "max":
        return float(observed.max())
    raise ValueError(f"unknown lie strategy {strategy!r}; expected one of {LIE_STRATEGIES}")
