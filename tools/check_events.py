#!/usr/bin/env python
"""Event-schema lint: every emitted event must be in the catalogue.

Two checks, both cheap and dependency-free:

1. **Catalogue completeness** — every ``CampaignEvent`` subclass defined in
   :mod:`repro.campaign.events` is listed in ``EVENT_TYPES``.
2. **Emission sites** — every ``<bus>.emit(SomeEvent(...))`` call under
   ``src/`` constructs an event type declared in the catalogue.  Emission
   sites are found by AST walk, so renamed or ad-hoc event classes fail the
   lint instead of silently producing unreplayable JSONL logs.

Usage::

    PYTHONPATH=src python tools/check_events.py [src_dir]

Exit status is non-zero when any check fails.  CI runs this next to the
examples smoke job.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path


def find_emit_sites(path: Path) -> list[tuple[str, int, str]]:
    """All ``(file, line, event_name)`` for ``*.emit(Name(...))`` calls."""
    tree = ast.parse(path.read_text(), filename=str(path))
    sites: list[tuple[str, int, str]] = []
    for node in ast.walk(tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "emit"
            and node.args
        ):
            continue
        arg = node.args[0]
        if isinstance(arg, ast.Call) and isinstance(arg.func, ast.Name):
            sites.append((str(path), arg.lineno, arg.func.id))
    return sites


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    src = Path(argv[0]) if argv else Path(__file__).resolve().parent.parent / "src"

    from repro.campaign import events as events_module
    from repro.campaign.events import EVENT_TYPES, CampaignEvent

    errors: list[str] = []

    # 1. Catalogue completeness.
    defined = {
        name: obj
        for name, obj in vars(events_module).items()
        if isinstance(obj, type)
        and issubclass(obj, CampaignEvent)
        and obj is not CampaignEvent
    }
    for name in sorted(set(defined) - set(EVENT_TYPES)):
        errors.append(
            f"{events_module.__file__}: event class {name} is defined but "
            "missing from EVENT_TYPES"
        )
    for name in sorted(set(EVENT_TYPES) - set(defined)):
        errors.append(f"EVENT_TYPES lists {name} but no such class is defined")

    # 2. Every emission site constructs a catalogued event.
    num_sites = 0
    for py in sorted(src.rglob("*.py")):
        for file, line, name in find_emit_sites(py):
            num_sites += 1
            if name not in EVENT_TYPES:
                errors.append(
                    f"{file}:{line}: emits {name}(...), which is not declared "
                    "in the event catalogue (repro.campaign.events.EVENT_TYPES)"
                )

    if errors:
        print(f"event-schema lint: {len(errors)} problem(s)")
        for error in errors:
            print(f"  {error}")
        return 1
    print(
        f"event-schema lint: OK — {len(EVENT_TYPES)} catalogued event types, "
        f"{num_sites} emission sites checked"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
