"""Batch normalization (extension layer; Auto-PyTorch's funnel nets use it).

``BatchNorm1d`` normalizes each feature over the batch during training and
by running statistics at inference, with learnable scale γ and shift β.
Built entirely from the autograd primitives (column means, square, sqrt,
reciprocal), so gradients flow through the normalization statistics exactly
as in framework implementations.
"""

from __future__ import annotations

import numpy as np

from repro.nn.autograd import Tensor, is_grad_enabled
from repro.nn.layers import Layer

__all__ = ["BatchNorm1d"]


class BatchNorm1d(Layer):
    """Per-feature batch normalization for ``(batch, features)`` tensors.

    Parameters
    ----------
    num_features:
        Width of the normalized axis.
    momentum:
        Running-statistics update rate (``running = (1-m)·running + m·batch``).
    eps:
        Variance floor for numerical stability.

    Notes
    -----
    Training vs inference mode follows the autograd state: inside
    :func:`repro.nn.no_grad` the layer applies running statistics and
    does not update them, matching the trainers' inference passes.
    """

    def __init__(self, num_features: int, momentum: float = 0.1, eps: float = 1e-5) -> None:
        if num_features < 1:
            raise ValueError("num_features must be >= 1")
        if not 0.0 < momentum <= 1.0:
            raise ValueError("momentum must be in (0, 1]")
        if eps <= 0:
            raise ValueError("eps must be positive")
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.gamma = Tensor(np.ones(num_features), requires_grad=True, name="bn.gamma")
        self.beta = Tensor(np.zeros(num_features), requires_grad=True, name="bn.beta")
        self.running_mean = np.zeros(num_features)
        self.running_var = np.ones(num_features)
        self._updates = 0

    def parameters(self) -> list[Tensor]:
        return [self.gamma, self.beta]

    def __call__(self, x: Tensor) -> Tensor:
        if x.ndim != 2 or x.shape[1] != self.num_features:
            raise ValueError(
                f"expected (batch, {self.num_features}) input, got {x.shape}"
            )
        if is_grad_enabled():
            mu = x.mean_axis0()
            centered = x - mu
            var = centered.pow2().mean_axis0()
            inv_std = (var + self.eps).sqrt().reciprocal()
            normalized = centered * inv_std
            # Update running statistics from the batch values (data only).
            m = self.momentum
            self.running_mean = (1 - m) * self.running_mean + m * mu.data
            self.running_var = (1 - m) * self.running_var + m * var.data
            self._updates += 1
        else:
            inv = 1.0 / np.sqrt(self.running_var + self.eps)
            normalized = (x - self.running_mean) * inv
        return normalized * self.gamma + self.beta
