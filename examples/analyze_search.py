#!/usr/bin/env python
"""Post-hoc analysis of a search campaign.

Runs a short AgEBO search on the Dionis-analogue (355 classes), persists
the history to JSON, reloads it, and applies the analysis toolbox:

  - best-so-far trajectory,
  - hyperparameter importance (fANOVA-lite marginal variances),
  - PCA of the top configurations,
  - transfer-ready observations for a future warm start.

Usage:
    python examples/analyze_search.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro.analysis import PCA, hyperparameter_importance, top_fraction_records
from repro.core import (
    ModelEvaluation,
    extract_hp_observations,
    load_history,
    make_agebo_variant,
    save_history,
)
from repro.datasets import load_dataset
from repro.searchspace import ArchitectureSpace, default_dataparallel_space
from repro.workflow import SimulatedEvaluator


def main() -> None:
    ds = load_dataset("dionis", size=4000)
    print(ds.summary())

    space = ArchitectureSpace(num_nodes=4)
    evaluation = ModelEvaluation(ds, space, epochs=4, warmup_epochs=2, nominal_epochs=20)
    evaluator = SimulatedEvaluator(evaluation, num_workers=8, on_error="penalize")
    search = make_agebo_variant(
        "AgEBO", space, evaluator, population_size=10, sample_size=3, seed=11
    )
    history = search.search(max_evaluations=40)

    # Persist and reload — analysis below runs on the *loaded* history,
    # demonstrating offline inspection of a finished campaign.
    path = Path(tempfile.gettempdir()) / "agebo_dionis_history.json"
    save_history(history, path)
    loaded = load_history(path)
    print(f"\nsaved + reloaded {len(loaded)} evaluations from {path}")

    times, objs = loaded.best_so_far()
    print("\nbest-so-far trajectory (sim minutes -> val acc):")
    for t, o in list(zip(times, objs))[:: max(1, len(times) // 6)]:
        print(f"  {t:7.1f} -> {o:.4f}")

    importance = hyperparameter_importance(loaded, default_dataparallel_space(), seed=0)
    print("\nhyperparameter importance (marginal variance, normalized):")
    for name, value in sorted(importance.items(), key=lambda kv: -kv[1]):
        print(f"  {name:<14} {value:.2%}")

    top = top_fraction_records(loaded, fraction=0.2, minimum=5)
    onehots = np.stack([space.to_onehot(r.config.arch) for r in top])
    pca = PCA(2).fit(onehots)
    print(
        f"\nPCA of top-{len(top)} architectures: 2-D projection conserves "
        f"{pca.explained_variance_ratio_.sum():.0%} variance"
    )

    configs, values = extract_hp_observations(loaded, top_fraction=0.5)
    print(f"{len(configs)} rank-normalized observations ready to warm-start a "
          f"related search (see AgEBO(warm_start=...)).")
    best = loaded.best()
    print(f"\nbest model: val acc {best.objective:.4f} with "
          f"bs={best.config.batch_size}, lr={best.config.learning_rate:.5f}, "
          f"n={best.config.num_ranks}")


if __name__ == "__main__":
    main()
