"""Figure 7: PCA projection of the top-1% configurations per data set.

Paper: projecting the 37 architecture decisions (one-hot) and the 3
data-parallel hyperparameters of the top-1% configurations to 2-D
conserves >80% variance for H_m and shows data-set-specific clusters for
both H_a and H_m.
"""

from __future__ import annotations

import numpy as np

from common import format_table, get_search_space, report, run_search
from repro.analysis import PCA, top_fraction_records
from repro.datasets import dataset_names


def collect_matrices():
    space = get_search_space()
    arch_rows, hp_rows, labels = [], [], []
    for name in dataset_names():
        history, _ = run_search(name, "AgEBO", seed=0)
        top = top_fraction_records(history, fraction=0.05, minimum=5)
        for r in top:
            arch_rows.append(space.to_onehot(r.config.arch))
            hp = r.config.hyperparameters
            hp_rows.append(
                [np.log10(hp["learning_rate"]), np.log2(hp["batch_size"]), np.log2(hp["num_ranks"])]
            )
            labels.append(name)
    return np.stack(arch_rows), np.array(hp_rows), np.array(labels)


def cluster_separation(Z: np.ndarray, labels: np.ndarray) -> float:
    """Between-centroid spread over mean within-cluster spread."""
    names = np.unique(labels)
    centroids = np.stack([Z[labels == n].mean(axis=0) for n in names])
    within = np.mean(
        [np.linalg.norm(Z[labels == n] - c, axis=1).mean() for n, c in zip(names, centroids)]
    )
    between = np.linalg.norm(centroids - centroids.mean(axis=0), axis=1).mean()
    return float(between / max(within, 1e-12))


def run_experiment():
    arch, hp, labels = collect_matrices()
    pca_a = PCA(2).fit(arch)
    pca_m = PCA(2).fit(hp)
    return {
        "arch_var": float(pca_a.explained_variance_ratio_.sum()),
        "hp_var": float(pca_m.explained_variance_ratio_.sum()),
        "arch_sep": cluster_separation(pca_a.transform(arch), labels),
        "hp_sep": cluster_separation(pca_m.transform(hp), labels),
        "n_points": len(labels),
    }


def test_fig7_pca(benchmark):
    out = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report(
        "fig7_pca",
        format_table(
            "Fig. 7 — PCA of top configurations (H_a one-hot, H_m) across data sets",
            ["space", "2-D conserved variance", "cluster separation (between/within)"],
            [
                ["H_a (architecture)", round(out["arch_var"], 3), round(out["arch_sep"], 3)],
                ["H_m (hyperparameters)", round(out["hp_var"], 3), round(out["hp_sep"], 3)],
            ],
        )
        + f"\npoints: {out['n_points']} (top configurations pooled over 4 data sets)",
    )
    # H_m lives in 3-D, so 2 components conserve most variance (paper >80%).
    assert out["hp_var"] > 0.8
    # Data sets occupy distinguishable regions of hyperparameter space.
    assert out["hp_sep"] > 0.3
