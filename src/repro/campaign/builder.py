"""Build a complete campaign from a :class:`CampaignConfig`.

:func:`build_campaign` is the single wiring layer: it constructs the
dataset, the architecture / hyperparameter spaces, the evaluation
function, the (optional) fault injector, the evaluator backend and the
search method — all from one typed config — threads a shared
:class:`~repro.campaign.events.EventBus` through every layer, and returns
a :class:`Campaign` whose :meth:`Campaign.run` executes the search.

Construction is intentionally *identical* to hand-wiring the raw classes
(same defaults, same seed flow), so a campaign built here produces a
bit-identical :class:`~repro.core.results.SearchHistory` to the same seeds
run through the class API directly.

:func:`resume_campaign` rebuilds a campaign from a checkpoint that stores
its own ``CampaignConfig`` (written by ``Campaign.run`` /
``search.checkpoint``), so every knob — including ones added later — is
restored without a pinned key list.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable

from repro.bo.forest import RandomForestRegressor
from repro.bo.surrogate import KNNSurrogate
from repro.campaign.config import CONFIG_VERSION, CampaignConfig
from repro.campaign.events import (
    CampaignFinished,
    CampaignStarted,
    EventBus,
)
from repro.campaign.registry import (
    EVALUATORS,
    SEARCH_METHODS,
    SURROGATES,
    SearchMethod,
)
from repro.core.age import AgE
from repro.core.agebo import AgEBO
from repro.core.evaluation import ModelEvaluation
from repro.core.results import SearchHistory
from repro.core.variants import AGEBO_VARIANTS, variant_hp_space
from repro.datasets import dataset_names, load_dataset
from repro.searchspace.archspace import ArchitectureSpace
from repro.workflow.cache import EvaluationCache
from repro.workflow.evaluator import (
    ProcessPoolEvaluator,
    SimulatedEvaluator,
    ThreadedEvaluator,
)
from repro.workflow.faults import FaultInjector, FaultPolicy

__all__ = ["Campaign", "build_campaign", "resume_campaign"]


# --------------------------------------------------------------------- #
# Built-in registry entries
# --------------------------------------------------------------------- #
def _make_cache(cfg) -> EvaluationCache | None:
    """The evaluator's memoization cache, or None when ``cache="off"``."""
    return EvaluationCache() if cfg.cache == "exact" else None


EVALUATORS.register(
    "simulated",
    lambda run_function, cfg, policy: SimulatedEvaluator(
        run_function,
        num_workers=cfg.num_workers,
        fault_policy=policy,
        cache=_make_cache(cfg),
    ),
)
EVALUATORS.register(
    "threaded",
    lambda run_function, cfg, policy: ThreadedEvaluator(
        run_function,
        num_workers=cfg.num_workers,
        measure_wall_time=cfg.measure_wall_time,
        fault_policy=policy,
        cache=_make_cache(cfg),
    ),
)
EVALUATORS.register(
    "process",
    lambda run_function, cfg, policy: ProcessPoolEvaluator(
        run_function,
        num_workers=cfg.num_workers,
        measure_wall_time=cfg.measure_wall_time,
        fault_policy=policy,
        cache=_make_cache(cfg),
    ),
)

SURROGATES.register("forest", lambda: RandomForestRegressor(n_trees=25, max_depth=10))
SURROGATES.register("knn", lambda: KNNSurrogate())
SURROGATES.register("random", lambda: None)  # handled natively by the optimizer


def _build_age(config: CampaignConfig, space, hp_space, evaluator) -> AgE:
    s = config.search
    return AgE(
        space,
        evaluator,
        hyperparameters={
            "batch_size": s.batch_size,
            "learning_rate": s.learning_rate,
            "num_ranks": s.num_ranks,
        },
        population_size=s.population_size,
        sample_size=s.sample_size,
        seed=s.seed,
        mutate_skips=s.mutate_skips,
        replacement=s.replacement,
        label=f"AgE-{s.num_ranks}",
    )


def _resume_age(path, config, space, hp_space, run_function, evaluator) -> AgE:
    return AgE.resume(path, space, run_function, evaluator=evaluator)


def _build_agebo(config: CampaignConfig, space, hp_space, evaluator) -> AgEBO:
    s = config.search
    return AgEBO(
        space,
        hp_space,
        evaluator,
        population_size=s.population_size,
        sample_size=s.sample_size,
        kappa=s.kappa,
        n_initial_points=s.n_initial_points,
        lie_strategy=s.lie_strategy,
        surrogate=s.surrogate,
        seed=s.seed,
        mutate_skips=s.mutate_skips,
        replacement=s.replacement,
        label=s.method,
    )


def _resume_agebo(path, config, space, hp_space, run_function, evaluator) -> AgEBO:
    return AgEBO.resume(path, space, hp_space, run_function, evaluator=evaluator)


SEARCH_METHODS.register(
    "AgE", SearchMethod("AgE", build=_build_age, resume=_resume_age, uses_bo=False)
)
for _variant in AGEBO_VARIANTS:
    SEARCH_METHODS.register(
        _variant,
        SearchMethod(_variant, build=_build_agebo, resume=_resume_agebo, uses_bo=True),
    )


# --------------------------------------------------------------------- #
@dataclass
class Campaign:
    """Everything :func:`build_campaign` wired together, ready to run."""

    config: CampaignConfig
    dataset: Any
    space: ArchitectureSpace
    hp_space: Any  # HyperparameterSpace for BO methods, None for AgE
    evaluation: ModelEvaluation
    run_function: Callable  # evaluation, possibly wrapped by a FaultInjector
    evaluator: Any
    search: Any
    event_bus: EventBus

    @property
    def fault_injector(self) -> FaultInjector | None:
        return self.run_function if isinstance(self.run_function, FaultInjector) else None

    def subscribe(self, callback, event_type=None):
        """Shorthand for ``campaign.event_bus.subscribe``."""
        return self.event_bus.subscribe(callback, event_type)

    def run(
        self,
        max_evaluations: int | None = None,
        wall_time_minutes: float | None = None,
    ) -> SearchHistory:
        """Run the campaign to its configured budgets (overridable here)."""
        cfg = self.config
        if max_evaluations is None and wall_time_minutes is None:
            max_evaluations = cfg.max_evaluations
            wall_time_minutes = cfg.wall_time_minutes
        self.event_bus.emit(
            CampaignStarted(
                method=cfg.search.method,
                dataset=cfg.dataset,
                num_workers=cfg.evaluator.num_workers,
                max_evaluations=max_evaluations,
                wall_time_minutes=wall_time_minutes,
            )
        )
        history = self.search.search(
            max_evaluations=max_evaluations,
            wall_time_minutes=wall_time_minutes,
            checkpoint_path=cfg.checkpoint.path,
            checkpoint_every=cfg.checkpoint.every,
        )
        best = history.best().objective if len(history) else float("-inf")
        self.event_bus.emit(
            CampaignFinished(
                num_evaluations=len(history),
                best_objective=best,
                elapsed_minutes=self.evaluator.now,
            )
        )
        return history


# --------------------------------------------------------------------- #
def _build_run_function(config: CampaignConfig, dataset, space, event_bus):
    t = config.training
    evaluation = ModelEvaluation(
        dataset,
        space,
        epochs=t.epochs,
        nominal_epochs=t.nominal_epochs,
        warmup_epochs=t.warmup_epochs,
        plateau_patience=t.plateau_patience,
        objective=t.objective,
        allreduce=t.allreduce,
        base_seed=t.base_seed,
        apply_linear_scaling=t.apply_linear_scaling,
        backend=t.backend,
        dtype=t.dtype,
    )
    evaluation.event_bus = event_bus
    f = config.faults
    run_function: Callable = evaluation
    if f.injects:
        run_function = FaultInjector(
            evaluation,
            crash_prob=f.crash_prob,
            hang_prob=f.hang_prob,
            corrupt_prob=f.corrupt_prob,
            hang_factor=f.hang_factor,
            seed=f.fault_seed,
        )
        run_function.event_bus = event_bus
    return evaluation, run_function


def _fault_policy(config: CampaignConfig) -> FaultPolicy:
    f = config.faults
    return FaultPolicy(
        on_error=f.on_error,
        max_retries=f.max_retries,
        retry_backoff=f.retry_backoff,
        timeout=f.timeout,
        failure_objective=f.failure_objective,
        failure_duration=f.failure_duration,
    )


def _validate_names(config: CampaignConfig) -> None:
    if config.dataset not in dataset_names():
        raise ValueError(
            f"unknown dataset {config.dataset!r}; available: {dataset_names()}"
        )
    SEARCH_METHODS.get(config.search.method)  # raises with known names
    EVALUATORS.get(config.evaluator.backend)
    SURROGATES.get(config.search.surrogate)


def build_campaign(
    config: CampaignConfig, event_bus: EventBus | None = None
) -> Campaign:
    """Construct a ready-to-run campaign from a typed config.

    Every component comes from the config (datasets, spaces, evaluation,
    fault handling, evaluator backend, search method); a shared event bus
    is threaded through all of them.  Pass an existing ``event_bus`` to
    attach subscribers before any construction-time events fire.
    """
    _validate_names(config)
    bus = event_bus if event_bus is not None else EventBus()

    dataset = load_dataset(config.dataset, size=config.size)
    space = ArchitectureSpace(num_nodes=config.num_nodes)
    evaluation, run_function = _build_run_function(config, dataset, space, bus)

    evaluator = EVALUATORS.get(config.evaluator.backend)(
        run_function, config.evaluator, _fault_policy(config)
    )
    evaluator.event_bus = bus

    method = SEARCH_METHODS.get(config.search.method)
    hp_space = (
        variant_hp_space(config.search.method, max_ranks=config.search.max_ranks)
        if method.uses_bo
        else None
    )
    search = method.build(config, space, hp_space, evaluator)
    search.event_bus = bus
    # Checkpoints carry the full campaign config; resume_campaign rebuilds
    # everything from it — no pinned argument list anywhere.
    search.checkpoint_metadata = {"campaign": config.to_dict()}

    return Campaign(
        config=config,
        dataset=dataset,
        space=space,
        hp_space=hp_space,
        evaluation=evaluation,
        run_function=run_function,
        evaluator=evaluator,
        search=search,
        event_bus=bus,
    )


def resume_campaign(
    path: str | Path,
    event_bus: EventBus | None = None,
    **overrides: Any,
) -> Campaign:
    """Rebuild a campaign from a checkpoint written by a campaign run.

    The checkpoint's embedded :class:`CampaignConfig` supplies every knob;
    ``overrides`` replace top-level config fields (typically the budgets —
    ``max_evaluations``, ``wall_time_minutes`` — or ``checkpoint``) before
    the campaign is rebuilt.  The restored search continues bit-identically
    to an uninterrupted run.
    """
    from repro.core.serialization import load_checkpoint

    data = load_checkpoint(path)
    extra = data.get("extra", {})
    if "campaign" not in extra:
        if "cli" in extra:
            raise ValueError(
                f"checkpoint {path} was written by the pre-campaign CLI "
                "(pinned argparse keys under extra['cli']); that layout is no "
                "longer supported — re-run the campaign to produce a "
                f"config-version-{CONFIG_VERSION} checkpoint"
            )
        raise ValueError(
            f"checkpoint {path} does not embed a campaign config; "
            "it was not written through the campaign layer"
        )
    config = CampaignConfig.from_dict(extra["campaign"])
    if overrides:
        config = dataclasses.replace(config, **overrides)

    _validate_names(config)
    bus = event_bus if event_bus is not None else EventBus()
    dataset = load_dataset(config.dataset, size=config.size)
    space = ArchitectureSpace(num_nodes=config.num_nodes)
    evaluation, run_function = _build_run_function(config, dataset, space, bus)
    evaluator = EVALUATORS.get(config.evaluator.backend)(
        run_function, config.evaluator, _fault_policy(config)
    )
    evaluator.event_bus = bus

    method = SEARCH_METHODS.get(config.search.method)
    hp_space = (
        variant_hp_space(config.search.method, max_ranks=config.search.max_ranks)
        if method.uses_bo
        else None
    )
    search = method.resume(path, config, space, hp_space, run_function, evaluator)
    search.event_bus = bus
    search.checkpoint_metadata = {"campaign": config.to_dict()}

    return Campaign(
        config=config,
        dataset=dataset,
        space=space,
        hp_space=hp_space,
        evaluation=evaluation,
        run_function=run_function,
        evaluator=evaluator,
        search=search,
        event_bus=bus,
    )
