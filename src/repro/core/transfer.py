"""Transfer learning across searches (paper future-work item 3).

The paper's conclusion proposes "meta-learning and transfer learning
approaches to reuse the knowledge and results from previous experimental
runs for related data sets".  The natural mechanism in AgEBO is the BO
component: hyperparameter observations ``(h_m, accuracy)`` from a finished
search can warm-start the surrogate of a new search, skipping (part of)
the random-initialization phase.

Because absolute accuracies differ across data sets, observations are
*rank-normalized* to [0, 1] before transfer — the surrogate then learns
"which region of H_m was good there" rather than raw scores, and fresh
observations (also comparable after the new search's own scaling)
gradually dominate.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

import numpy as np

from repro.core.results import SearchHistory

__all__ = ["extract_hp_observations", "rank_normalize", "warm_start_optimizer"]


def rank_normalize(values: Sequence[float]) -> np.ndarray:
    """Map values to their normalized ranks in [0, 1] (ties averaged)."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        return arr
    if arr.size == 1:
        return np.array([0.5])
    order = np.argsort(arr, kind="stable")
    ranks = np.empty(arr.size)
    ranks[order] = np.arange(arr.size, dtype=float)
    # Average ties so identical objectives transfer identically.
    for v in np.unique(arr):
        mask = arr == v
        if mask.sum() > 1:
            ranks[mask] = ranks[mask].mean()
    return ranks / (arr.size - 1)


def extract_hp_observations(
    history: SearchHistory, top_fraction: float = 1.0
) -> tuple[list[dict[str, Any]], list[float]]:
    """Pull (hyperparameter config, rank-normalized objective) pairs.

    ``top_fraction < 1`` keeps only the best records — transferring where
    the previous search *succeeded* rather than its full trajectory.
    """
    if not 0.0 < top_fraction <= 1.0:
        raise ValueError("top_fraction must be in (0, 1]")
    records = sorted(history.records, key=lambda r: -r.objective)
    keep = max(1, int(round(top_fraction * len(records))))
    records = records[:keep]
    configs = [dict(r.config.hyperparameters) for r in records]
    values = rank_normalize([r.objective for r in records]).tolist()
    return configs, values


def warm_start_optimizer(
    optimizer,
    observations: Sequence[tuple[Mapping[str, Any], float]],
) -> int:
    """Feed prior observations into a :class:`BayesianOptimizer`.

    Returns the number of observations installed.  Configurations that do
    not validate against the optimizer's space (e.g. a fixed dimension
    changed between searches) are skipped rather than failing the run.
    """
    installed = 0
    for config, value in observations:
        try:
            optimizer.tell([config], [value])
        except ValueError:
            continue
        installed += 1
    return installed
