"""Loss functions used by the training recipe."""

from __future__ import annotations

import numpy as np

from repro.nn.autograd import Tensor

__all__ = ["softmax_cross_entropy", "l2_regularization"]


def softmax_cross_entropy(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Mean cross-entropy of integer ``labels`` under row-wise softmax.

    Parameters
    ----------
    logits:
        ``(batch, classes)`` tensor of unnormalized scores.
    labels:
        ``(batch,)`` integer class indices.
    """
    labels = np.asarray(labels)
    if labels.ndim != 1 or labels.shape[0] != logits.shape[0]:
        raise ValueError(
            f"labels must be 1-D of length {logits.shape[0]}, got shape {labels.shape}"
        )
    log_probs = logits.log_softmax()
    picked = log_probs.gather_rows(labels.astype(np.intp))
    return -1.0 * picked.mean()


def l2_regularization(parameters, coefficient: float) -> Tensor:
    """``coefficient * sum_i ||p_i||^2`` over weight tensors.

    Bias vectors (1-D parameters) are conventionally excluded.
    """
    total: Tensor | None = None
    for p in parameters:
        if p.ndim < 2:
            continue
        term = p.pow2().sum()
        total = term if total is None else total + term
    if total is None:
        return Tensor(0.0)
    return coefficient * total
