"""Layer primitives: the base ``Layer`` protocol and ``Dense``.

A layer owns its parameters (as ``Tensor`` leaves with ``requires_grad``)
and exposes ``__call__`` building the forward graph.  Layers are
intentionally tiny; the architecture-level wiring (skip connections,
projections, sums) lives in :mod:`repro.nn.graph_network`.
"""

from __future__ import annotations

import numpy as np

from repro.nn.activations import apply_activation
from repro.nn.autograd import Tensor
from repro.nn.initializers import glorot_uniform, he_normal, zeros_init

__all__ = ["Layer", "Dense"]


class Layer:
    """Base class: parameter registry plus forward call."""

    def parameters(self) -> list[Tensor]:
        """Return the trainable leaf tensors of this layer."""
        raise NotImplementedError

    def num_parameters(self) -> int:
        """Total number of scalar trainable parameters."""
        return sum(p.size for p in self.parameters())

    def __call__(self, x: Tensor) -> Tensor:
        raise NotImplementedError


class Dense(Layer):
    """Fully connected layer ``activation(x @ W + b)``.

    Parameters
    ----------
    fan_in, units:
        Input and output widths.
    activation:
        One of the five search-space activations, or ``None`` for a purely
        affine map (used for skip-connection projections and the output
        logits layer).
    rng:
        Generator used for weight initialization.  ReLU/Swish layers use He
        initialization; others use Glorot.
    dtype:
        Parameter precision (``float64`` default; ``float32`` halves memory
        traffic on the training hot path).  Weights are drawn in float64 and
        cast, so a seed gives the same initialization at either precision.
    """

    def __init__(
        self,
        fan_in: int,
        units: int,
        activation: str | None,
        rng: np.random.Generator,
        name: str = "dense",
        dtype=np.float64,
    ) -> None:
        if fan_in <= 0 or units <= 0:
            raise ValueError(f"fan_in and units must be positive, got {fan_in}, {units}")
        self.fan_in = fan_in
        self.units = units
        self.activation = activation
        self.dtype = np.dtype(dtype)
        if activation in ("relu", "swish"):
            w = he_normal(fan_in, units, rng, dtype=self.dtype)
        else:
            w = glorot_uniform(fan_in, units, rng, dtype=self.dtype)
        self.W = Tensor(w, requires_grad=True, name=f"{name}.W")
        self.b = Tensor(zeros_init(units, dtype=self.dtype), requires_grad=True, name=f"{name}.b")
        self.name = name

    def parameters(self) -> list[Tensor]:
        return [self.W, self.b]

    def __call__(self, x: Tensor) -> Tensor:
        out = x @ self.W + self.b
        if self.activation is not None:
            out = apply_activation(self.activation, out)
        return out

    def linear(self, x: Tensor) -> Tensor:
        """Affine part only, ignoring the configured activation."""
        return x @ self.W + self.b

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Dense({self.fan_in}->{self.units}, act={self.activation})"
