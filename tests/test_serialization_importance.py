"""Tests for history/model persistence and hyperparameter importance."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import hyperparameter_importance, marginal_curve
from repro.core import (
    EvaluationRecord,
    ModelConfig,
    SearchHistory,
    load_history,
    load_model_weights,
    save_history,
    save_model_weights,
)
from repro.core.serialization import history_from_dict, history_to_dict
from repro.nn import GraphNetwork
from repro.nn.graph_network import ArchitectureSpec, NodeOp
from repro.searchspace import default_dataparallel_space


def make_history(n=20, seed=0):
    rng = np.random.default_rng(seed)
    space = default_dataparallel_space()
    h = SearchHistory(label="demo")
    for i in range(n):
        hp = space.sample(rng)
        # lr is what matters in this synthetic history.
        obj = 1.0 - abs(np.log10(hp["learning_rate"]) + 2.0) / 3.0
        h.add(
            EvaluationRecord(
                config=ModelConfig(rng.integers(0, 5, size=4), hp),
                objective=float(obj),
                duration=1.0,
                submit_time=float(i),
                start_time=float(i),
                end_time=float(i + 1),
                metadata={"num_params": 100 + i, "note": "x", "array": np.zeros(3)},
            )
        )
    return h


# --------------------------------------------------------------------- #
# History serialization
# --------------------------------------------------------------------- #
def test_history_roundtrip_dict():
    h = make_history()
    back = history_from_dict(history_to_dict(h))
    assert back.label == "demo"
    assert len(back) == len(h)
    np.testing.assert_allclose(back.objectives(), h.objectives())
    np.testing.assert_array_equal(back.records[3].config.arch, h.records[3].config.arch)
    assert back.records[0].config.hyperparameters == h.records[0].config.hyperparameters


def test_history_roundtrip_file(tmp_path):
    h = make_history()
    path = save_history(h, tmp_path / "history.json")
    back = load_history(path)
    assert back.best().objective == h.best().objective
    times_a, objs_a = h.best_so_far()
    times_b, objs_b = back.best_so_far()
    np.testing.assert_allclose(times_a, times_b)
    np.testing.assert_allclose(objs_a, objs_b)


def test_serialization_keeps_scalar_metadata_only():
    h = make_history(n=3)
    data = history_to_dict(h)
    meta = data["records"][0]["metadata"]
    assert meta["num_params"] == 100
    assert meta["note"] == "x"
    assert "array" not in meta  # non-scalar metadata dropped


def test_history_version_check():
    with pytest.raises(ValueError, match="version"):
        history_from_dict({"version": 99, "records": []})


def test_loaded_history_feeds_transfer(tmp_path):
    from repro.core import extract_hp_observations

    h = make_history()
    back = load_history(save_history(h, tmp_path / "h.json"))
    configs, values = extract_hp_observations(back, top_fraction=0.25)
    assert len(configs) == 5
    assert max(values) == 1.0


# --------------------------------------------------------------------- #
# Model weights
# --------------------------------------------------------------------- #
def test_model_weights_roundtrip(tmp_path):
    spec = ArchitectureSpec((NodeOp(16, "relu"), NodeOp(8, "tanh")), frozenset({(0, 2)}))
    a = GraphNetwork(spec, 6, 3, np.random.default_rng(0))
    b = GraphNetwork(spec, 6, 3, np.random.default_rng(99))  # different init
    x = np.random.default_rng(1).normal(size=(5, 6))
    assert not np.allclose(a.forward(x).data, b.forward(x).data)
    path = save_model_weights(a, tmp_path / "weights.npz")
    load_model_weights(b, path)
    np.testing.assert_allclose(a.forward(x).data, b.forward(x).data)


def test_model_weights_structure_mismatch(tmp_path):
    spec = ArchitectureSpec((NodeOp(16, "relu"),))
    a = GraphNetwork(spec, 6, 3, np.random.default_rng(0))
    path = save_model_weights(a, tmp_path / "w.npz")
    other = GraphNetwork(
        ArchitectureSpec((NodeOp(32, "relu"),)), 6, 3, np.random.default_rng(0)
    )
    with pytest.raises(ValueError):
        load_model_weights(other, path)


# --------------------------------------------------------------------- #
# Importance
# --------------------------------------------------------------------- #
def test_importance_identifies_dominant_hyperparameter():
    h = make_history(n=60)
    space = default_dataparallel_space()
    imp = hyperparameter_importance(h, space, seed=0)
    assert set(imp) == {"batch_size", "learning_rate", "num_ranks"}
    assert abs(sum(imp.values()) - 1.0) < 1e-9
    # The synthetic objective depends only on the learning rate.
    assert imp["learning_rate"] == max(imp.values())
    assert imp["learning_rate"] > 0.5


def test_importance_requires_enough_data():
    with pytest.raises(ValueError):
        hyperparameter_importance(make_history(n=3), default_dataparallel_space())


def test_importance_empty_space():
    space = default_dataparallel_space(
        tune_batch_size=False, tune_learning_rate=False, tune_num_ranks=False
    )
    assert hyperparameter_importance(make_history(), space) == {}


def test_marginal_curve_shape():
    from repro.bo import RandomForestRegressor

    rng = np.random.default_rng(0)
    X = rng.normal(size=(50, 2))
    y = X[:, 0] ** 2
    forest = RandomForestRegressor(n_trees=10).fit(X, y, rng)
    grid = np.linspace(-2, 2, 7)
    curve = marginal_curve(forest, X, dim=0, grid=grid, rng=rng)
    assert curve.shape == (7,)
    # Quadratic in dim 0: the ends sit above the middle.
    assert curve[0] > curve[3] and curve[-1] > curve[3]
