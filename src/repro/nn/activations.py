"""The activation set of the AgEBO-Tabular architecture search space.

The paper's dense-layer type is (units, activation) with activation drawn
from {Identity, Swish, ReLU, Tanh, Sigmoid}.  Each entry maps a name to a
function ``Tensor -> Tensor`` built on the autograd ops.
"""

from __future__ import annotations

from typing import Callable

from repro.nn.autograd import Tensor

__all__ = ["ACTIVATIONS", "ACTIVATION_NAMES", "apply_activation"]


def _identity(x: Tensor) -> Tensor:
    return x


ACTIVATIONS: dict[str, Callable[[Tensor], Tensor]] = {
    "identity": _identity,
    "swish": Tensor.swish,
    "relu": Tensor.relu,
    "tanh": Tensor.tanh,
    "sigmoid": Tensor.sigmoid,
}

#: Canonical ordering used when enumerating layer types in the search space.
ACTIVATION_NAMES: tuple[str, ...] = ("identity", "swish", "relu", "tanh", "sigmoid")


def apply_activation(name: str, x: Tensor) -> Tensor:
    """Apply the named activation to ``x``.

    Raises
    ------
    KeyError
        If ``name`` is not one of the five supported activations.
    """
    try:
        fn = ACTIVATIONS[name]
    except KeyError:
        raise KeyError(
            f"unknown activation {name!r}; expected one of {sorted(ACTIVATIONS)}"
        ) from None
    return fn(x)
