"""Regression trees and random forests for the BO surrogate.

A small, vectorized CART implementation: split search evaluates every
threshold of a feature in one pass using cumulative sums of ``y`` and
``y²`` over the sorted column (variance reduction in O(n log n) per
feature).  The forest bootstrap-samples observations and subsamples
features per split; ``predict`` returns per-candidate mean and standard
deviation across trees, which is exactly the (μ, σ) pair skopt's forest
surrogate feeds into UCB.
"""

from __future__ import annotations

import numpy as np

__all__ = ["RegressionTree", "RandomForestRegressor"]


class RegressionTree:
    """CART regression tree with random feature subsampling per split.

    Parameters
    ----------
    max_depth:
        Depth cap (root at depth 0).
    min_samples_split:
        Nodes with fewer samples become leaves.
    max_features:
        Number of candidate features per split; ``None`` uses all.
    """

    def __init__(
        self,
        max_depth: int = 12,
        min_samples_split: int = 4,
        max_features: int | None = None,
    ) -> None:
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        if min_samples_split < 2:
            raise ValueError("min_samples_split must be >= 2")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.max_features = max_features
        # Flat node arrays, appended during fit.
        self._feature: list[int] = []
        self._threshold: list[float] = []
        self._left: list[int] = []
        self._right: list[int] = []
        self._value: list[float] = []

    # ------------------------------------------------------------------ #
    def fit(self, X: np.ndarray, y: np.ndarray, rng: np.random.Generator) -> "RegressionTree":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if X.ndim != 2 or y.ndim != 1 or X.shape[0] != y.shape[0]:
            raise ValueError(f"bad shapes: X {X.shape}, y {y.shape}")
        if X.shape[0] == 0:
            raise ValueError("cannot fit on empty data")
        self._feature.clear()
        self._threshold.clear()
        self._left.clear()
        self._right.clear()
        self._value.clear()
        self._build(X, y, np.arange(X.shape[0]), depth=0, rng=rng)
        return self

    def _new_node(self, value: float) -> int:
        idx = len(self._value)
        self._feature.append(-1)
        self._threshold.append(0.0)
        self._left.append(-1)
        self._right.append(-1)
        self._value.append(value)
        return idx

    def _build(
        self, X: np.ndarray, y: np.ndarray, idx: np.ndarray, depth: int, rng: np.random.Generator
    ) -> int:
        node = self._new_node(float(y[idx].mean()))
        if (
            depth >= self.max_depth
            or idx.size < self.min_samples_split
            or np.ptp(y[idx]) == 0.0
        ):
            return node
        split = self._best_split(X, y, idx, rng)
        if split is None:
            return node
        feature, threshold = split
        mask = X[idx, feature] <= threshold
        left_idx = idx[mask]
        right_idx = idx[~mask]
        if left_idx.size == 0 or right_idx.size == 0:
            return node
        self._feature[node] = feature
        self._threshold[node] = threshold
        self._left[node] = self._build(X, y, left_idx, depth + 1, rng)
        self._right[node] = self._build(X, y, right_idx, depth + 1, rng)
        return node

    def _best_split(
        self, X: np.ndarray, y: np.ndarray, idx: np.ndarray, rng: np.random.Generator
    ) -> tuple[int, float] | None:
        n_features = X.shape[1]
        k = n_features if self.max_features is None else min(self.max_features, n_features)
        features = rng.choice(n_features, size=k, replace=False)
        y_node = y[idx]
        n = idx.size
        total_sum = y_node.sum()
        best_score = np.inf  # weighted child SSE; parent SSE is constant
        best: tuple[int, float] | None = None
        for f in features:
            col = X[idx, f]
            order = np.argsort(col, kind="stable")
            xs = col[order]
            ys = y_node[order]
            # Candidate split after position i (1..n-1) only where x changes.
            csum = np.cumsum(ys)
            csum2 = np.cumsum(ys * ys)
            counts = np.arange(1, n)  # left sizes
            left_sum = csum[:-1]
            left_sum2 = csum2[:-1]
            right_sum = total_sum - left_sum
            right_sum2 = csum2[-1] - left_sum2
            right_counts = n - counts
            sse = (
                left_sum2
                - left_sum * left_sum / counts
                + right_sum2
                - right_sum * right_sum / right_counts
            )
            valid = xs[1:] > xs[:-1]
            if not valid.any():
                continue
            sse = np.where(valid, sse, np.inf)
            pos = int(np.argmin(sse))
            if sse[pos] < best_score:
                best_score = float(sse[pos])
                best = (int(f), float(0.5 * (xs[pos] + xs[pos + 1])))
        return best

    # ------------------------------------------------------------------ #
    def predict(self, X: np.ndarray) -> np.ndarray:
        """Vectorized prediction: route all rows level by level."""
        X = np.asarray(X, dtype=float)
        if not self._value:
            raise RuntimeError("tree is not fitted")
        feature = np.asarray(self._feature)
        threshold = np.asarray(self._threshold)
        left = np.asarray(self._left)
        right = np.asarray(self._right)
        value = np.asarray(self._value)

        nodes = np.zeros(X.shape[0], dtype=np.intp)
        active = feature[nodes] >= 0
        while active.any():
            cur = nodes[active]
            feats = feature[cur]
            go_left = X[active, feats] <= threshold[cur]
            nodes[active] = np.where(go_left, left[cur], right[cur])
            active = feature[nodes] >= 0
        return value[nodes]

    @property
    def node_count(self) -> int:
        return len(self._value)


class RandomForestRegressor:
    """Bootstrap ensemble of regression trees with (μ, σ) prediction."""

    def __init__(
        self,
        n_trees: int = 25,
        max_depth: int = 12,
        min_samples_split: int = 4,
        max_features: int | None = None,
        bootstrap: bool = True,
    ) -> None:
        if n_trees < 1:
            raise ValueError("n_trees must be >= 1")
        self.n_trees = n_trees
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.max_features = max_features
        self.bootstrap = bootstrap
        self._trees: list[RegressionTree] = []

    def fit(self, X: np.ndarray, y: np.ndarray, rng: np.random.Generator) -> "RandomForestRegressor":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if X.shape[0] == 0:
            raise ValueError("cannot fit on empty data")
        n = X.shape[0]
        max_features = self.max_features
        if max_features is None and X.shape[1] > 1:
            # skopt-style default: use all features for small dims, else sqrt.
            max_features = X.shape[1] if X.shape[1] <= 3 else max(1, int(np.sqrt(X.shape[1])))
        self._trees = []
        for _ in range(self.n_trees):
            tree = RegressionTree(self.max_depth, self.min_samples_split, max_features)
            if self.bootstrap and n > 1:
                sample = rng.integers(0, n, size=n)
                tree.fit(X[sample], y[sample], rng)
            else:
                tree.fit(X, y, rng)
            self._trees.append(tree)
        return self

    def predict(self, X: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Return per-row (mean, std) across the ensemble."""
        if not self._trees:
            raise RuntimeError("forest is not fitted")
        preds = np.stack([t.predict(X) for t in self._trees])
        return preds.mean(axis=0), preds.std(axis=0)
