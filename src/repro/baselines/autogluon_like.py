"""AutoGluon-like AutoML: many tuned learners + stacked weighted ensemble.

Reproduces the *mechanism* behind Table II: AutoGluon reaches strong
accuracy by stacking many heterogeneous models, and pays for it at
inference time — every prediction runs all selected base models.  The
single searched network from AgEBO predicts in one small forward pass,
hence the two-orders-of-magnitude inference-time gap, which this class
reproduces with genuinely measured wall-clock inference.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.baselines.base import BaseClassifier
from repro.baselines.ensemble import WeightedEnsemble
from repro.baselines.gboost import GradientBoostingClassifier
from repro.baselines.knn import KNeighborsClassifier
from repro.baselines.linear import LogisticRegression
from repro.baselines.neural import MLPClassifier
from repro.baselines.random_forest import ExtraTreesClassifier, RandomForestClassifier
from repro.datasets.openml_like import TabularDataset

__all__ = ["AutoGluonLike", "AutoMLReport"]

#: Skip the per-class-tree GBM beyond this many classes (cost ∝ classes).
_GBM_CLASS_LIMIT = 20


@dataclass
class AutoMLReport:
    """Fit/evaluation record of one AutoML run."""

    validation_accuracy: float
    test_accuracy: float
    inference_seconds: float
    n_base_models: int
    model_names: list[str] = field(default_factory=list)
    weights: list[float] = field(default_factory=list)


class AutoGluonLike:
    """Multi-learner AutoML with hyperparameter tuning and ensembling.

    Parameters
    ----------
    preset:
        ``"best_quality"`` trains more and bigger base models (the paper
        sets ``hyperparameter_tune=True, auto_stack=True``); ``"medium"``
        is a faster variant for tests.
    """

    def __init__(self, preset: str = "best_quality", seed: int = 0) -> None:
        if preset not in ("best_quality", "medium"):
            raise ValueError(f"unknown preset {preset!r}")
        self.preset = preset
        self.seed = seed
        self.ensemble_: WeightedEnsemble | None = None
        self.models_: dict[str, BaseClassifier] = {}

    # ------------------------------------------------------------------ #
    def _candidate_models(self, ds: TabularDataset) -> dict[str, BaseClassifier]:
        C, d = ds.n_classes, ds.n_features
        big = self.preset == "best_quality"
        models: dict[str, BaseClassifier] = {
            "random_forest": RandomForestClassifier(
                C, n_trees=120 if big else 40, max_depth=16 if big else 10
            ),
            "extra_trees": ExtraTreesClassifier(
                C, n_trees=120 if big else 40, max_depth=16 if big else 10
            ),
            "knn_small": KNeighborsClassifier(C, k=5),
            "knn_large": KNeighborsClassifier(C, k=25),
            "logistic": LogisticRegression(C),
            "mlp_wide": MLPClassifier(
                C, d, hidden=(128, 64), epochs=25 if big else 10
            ),
            "mlp_deep": MLPClassifier(
                C, d, hidden=(64, 64, 64), epochs=25 if big else 10
            ),
        }
        if C <= _GBM_CLASS_LIMIT:
            models["gbm"] = GradientBoostingClassifier(
                C, n_rounds=60 if big else 20, max_depth=4
            )
        return models

    def fit(self, ds: TabularDataset) -> "AutoGluonLike":
        """Train all base learners, then weight them on validation data."""
        rng = np.random.default_rng(self.seed)
        self.models_ = {}
        for name, model in self._candidate_models(ds).items():
            if isinstance(model, MLPClassifier):
                model.fit(ds.X_train, ds.y_train, rng, ds.X_valid, ds.y_valid)
            else:
                model.fit(ds.X_train, ds.y_train, rng)
            self.models_[name] = model
        self.ensemble_ = WeightedEnsemble(
            ds.n_classes, list(self.models_.values()), n_rounds=25
        )
        self.ensemble_.fit_weights(ds.X_valid, ds.y_valid)
        return self

    # ------------------------------------------------------------------ #
    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if self.ensemble_ is None:
            raise RuntimeError("call fit first")
        return self.ensemble_.predict_proba(X)

    def predict(self, X: np.ndarray) -> np.ndarray:
        return self.predict_proba(X).argmax(axis=1)

    def evaluate(self, ds: TabularDataset) -> AutoMLReport:
        """Validation/test accuracy plus *measured* inference wall-clock."""
        if self.ensemble_ is None:
            raise RuntimeError("call fit first")
        val_acc = float((self.predict(ds.X_valid) == ds.y_valid).mean())
        t0 = time.perf_counter()
        preds = self.predict(ds.X_test)
        inference = time.perf_counter() - t0
        test_acc = float((preds == ds.y_test).mean())
        weights = self.ensemble_.weights_
        return AutoMLReport(
            validation_accuracy=val_acc,
            test_accuracy=test_acc,
            inference_seconds=inference,
            n_base_models=int((weights > 0).sum()),
            model_names=list(self.models_),
            weights=[float(w) for w in weights],
        )
