#!/usr/bin/env python
"""Why data-parallel training needs tuning (the paper's motivation).

Trains the *same* architecture under n ∈ {1, 2, 4, 8} simulated ranks with
the linear scaling rule at the default hyperparameters (the AgE-n setting
of Table I), then runs a small AgEBO-8-LR campaign — learning rate tuned
by BO, n = 8 fixed — through the campaign layer, showing:

  1. training time (simulated, paper-scale) falls near-linearly with n;
  2. accuracy degrades past the data-set's parallelism limit;
  3. tuning the base learning rate recovers most of the loss.

The first part drives the trainer classes directly; the second is a
one-config :func:`~repro.campaign.build_campaign` run.

Usage:
    python examples/dataparallel_tuning.py
"""

from __future__ import annotations

import numpy as np

from repro.campaign import (
    CampaignConfig,
    EvaluatorConfig,
    SearchConfig,
    TrainingConfig,
    build_campaign,
)
from repro.dataparallel import DataParallelTrainer, TrainingCostModel
from repro.datasets import load_dataset
from repro.nn import GraphNetwork
from repro.nn.graph_network import ArchitectureSpec, NodeOp

SPEC = ArchitectureSpec(
    node_ops=(NodeOp(96, "relu"), NodeOp(64, "relu"), NodeOp(48, "swish")),
    skips=frozenset({(0, 2), (1, 3)}),
)


def train_once(ds, num_ranks: int, lr: float, epochs: int = 8, seed: int = 0) -> float:
    rng = np.random.default_rng(seed)
    model = GraphNetwork(SPEC, ds.n_features, ds.n_classes, rng)
    result = DataParallelTrainer(
        num_ranks=num_ranks, epochs=epochs, batch_size=128, learning_rate=lr
    ).fit(model, ds.X_train, ds.y_train, ds.X_valid, ds.y_valid, rng)
    return result.best_val_accuracy


def main() -> None:
    ds = load_dataset("covertype", size=2500)
    print(ds.summary(), "\n")
    cost = TrainingCostModel()

    rng = np.random.default_rng(0)
    model = GraphNetwork(SPEC, ds.n_features, ds.n_classes, rng)
    params = model.num_parameters()

    print("=== static hyperparameters (linear scaling rule only) ===")
    print(f"{'ranks':>5} | {'sim train time':>14} | {'speedup':>7} | {'val accuracy':>12}")
    t1 = cost.training_minutes(params, ds.nominal_train_size, 128, 1, 20)
    default_lr = 0.01
    for n in (1, 2, 4, 8):
        t = cost.training_minutes(params, ds.nominal_train_size, 128, n, 20)
        acc = train_once(ds, n, default_lr)
        print(f"{n:>5} | {t:>11.1f} min | {t1 / t:>6.2f}x | {acc:>12.4f}")

    print("\n=== AgEBO-8-LR campaign: BO-tuned base learning rate at n = 8 ===")
    # The Fig. 4 ablation variant as a campaign: learning rate is the only
    # tuned hyperparameter (batch size and n = 8 ride along as defaults),
    # while the architecture keeps evolving.
    config = CampaignConfig(
        dataset="covertype",
        size=2500,
        num_nodes=3,
        max_evaluations=24,
        search=SearchConfig(
            method="AgEBO-8-LR", population_size=6, sample_size=2, seed=1
        ),
        training=TrainingConfig(epochs=6, nominal_epochs=20),
        evaluator=EvaluatorConfig(backend="simulated", num_workers=4),
    )
    campaign = build_campaign(config)
    history = campaign.run()
    best = history.best()
    print(f"tuned lr_1 = {best.config.learning_rate:.5f} -> "
          f"val accuracy {best.objective:.4f} "
          f"(default lr {default_lr} gave {train_once(ds, 8, default_lr):.4f})")
    print("\nThe tuned base learning rate recovers accuracy at n=8 while "
          "keeping the near-linear training-time reduction — this is what "
          "AgEBO automates jointly with the architecture search.")


if __name__ == "__main__":
    main()
