"""Regression trees and random forests for the BO surrogate.

A small, vectorized CART implementation built for surrogate latency: the
freshness of the liar-augmented model when workers request new configs is
gated by how fast ``fit``/``predict`` run (Klein et al., model-based
asynchronous HPO), so both paths avoid per-row Python work.

``fit`` evaluates every threshold of a feature in one pass using cumulative
sums of ``y`` and ``y²`` over the sorted column (variance reduction in
O(n) per feature per node).  Columns are argsorted **once** per tree; the
sorted index cache is partitioned into the child nodes with a boolean
compress at every split, so no node below the root pays an argsort.  The
partition is stable, which keeps the chosen splits bit-identical to the
naive re-sorting reference (``presort=False``).

After ``fit`` the tree's node lists freeze into contiguous numpy arrays
(:meth:`RegressionTree._finalize`) and ``predict`` is an iterative,
fully-vectorized level-walk routing all candidate rows at once.  The
forest stacks every tree's frozen arrays into one node table so
:meth:`RandomForestRegressor.predict` walks **all trees × all candidates**
simultaneously — no per-tree Python loop on the BO ``ask`` hot path.  The
per-row Python recursion (:meth:`RegressionTree.predict_recursive`) is
kept as the reference implementation for equivalence tests and the perf
harness.  ``predict`` returns per-candidate mean and standard deviation
across trees, which is exactly the (μ, σ) pair skopt's forest surrogate
feeds into UCB.
"""

from __future__ import annotations

import numpy as np

__all__ = ["RegressionTree", "RandomForestRegressor"]


class RegressionTree:
    """CART regression tree with random feature subsampling per split.

    Parameters
    ----------
    max_depth:
        Depth cap (root at depth 0).
    min_samples_split:
        Nodes with fewer samples become leaves.
    max_features:
        Number of candidate features per split; ``None`` uses all.
    presort:
        Reuse one stable argsort of every column across all depths
        (default).  ``False`` re-argsorts each node's rows per feature —
        the slow reference path; both produce identical trees.
    """

    def __init__(
        self,
        max_depth: int = 12,
        min_samples_split: int = 4,
        max_features: int | None = None,
        presort: bool = True,
    ) -> None:
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        if min_samples_split < 2:
            raise ValueError("min_samples_split must be >= 2")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.max_features = max_features
        self.presort = presort
        # Flat node arrays, appended during fit, frozen by _finalize().
        self._feature: list[int] = []
        self._threshold: list[float] = []
        self._left: list[int] = []
        self._right: list[int] = []
        self._value: list[float] = []
        # Frozen contiguous views (valid after fit).
        self.feature_: np.ndarray | None = None
        self.threshold_: np.ndarray | None = None
        self.left_: np.ndarray | None = None
        self.right_: np.ndarray | None = None
        self.value_: np.ndarray | None = None

    # ------------------------------------------------------------------ #
    def fit(self, X: np.ndarray, y: np.ndarray, rng: np.random.Generator) -> "RegressionTree":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if X.ndim != 2 or y.ndim != 1 or X.shape[0] != y.shape[0]:
            raise ValueError(f"bad shapes: X {X.shape}, y {y.shape}")
        if X.shape[0] == 0:
            raise ValueError("cannot fit on empty data")
        self._feature.clear()
        self._threshold.clear()
        self._left.clear()
        self._right.clear()
        self._value.clear()
        if self.presort and (self.max_features is None or self.max_features >= X.shape[1]):
            # One stable argsort per column; children inherit partitions.
            # Cache upkeep scales with the full feature count while the
            # benefit scales with features-per-split, so presort only pays
            # when splits consider every column (true for the BO spaces,
            # which have a handful of dimensions).
            sorted_idx = np.argsort(X, axis=0, kind="stable")
        else:
            sorted_idx = None
        self._build(X, y, np.arange(X.shape[0]), sorted_idx, depth=0, rng=rng)
        self._finalize()
        return self

    def _finalize(self) -> None:
        """Freeze the append-lists into contiguous arrays for predict."""
        self.feature_ = np.asarray(self._feature, dtype=np.intp)
        self.threshold_ = np.asarray(self._threshold, dtype=float)
        self.left_ = np.asarray(self._left, dtype=np.intp)
        self.right_ = np.asarray(self._right, dtype=np.intp)
        self.value_ = np.asarray(self._value, dtype=float)

    def _new_node(self, value: float) -> int:
        idx = len(self._value)
        self._feature.append(-1)
        self._threshold.append(0.0)
        self._left.append(-1)
        self._right.append(-1)
        self._value.append(value)
        return idx

    def _build(
        self,
        X: np.ndarray,
        y: np.ndarray,
        idx: np.ndarray,
        sorted_idx: np.ndarray | None,
        depth: int,
        rng: np.random.Generator,
    ) -> int:
        y_node = y[idx]
        node = self._new_node(float(y_node.mean()))
        if (
            depth >= self.max_depth
            or idx.size < self.min_samples_split
            or np.ptp(y_node) == 0.0
        ):
            return node
        split = self._best_split(X, y, idx, y_node, sorted_idx, rng)
        if split is None:
            return node
        feature, threshold = split
        mask = X[idx, feature] <= threshold
        left_idx = idx[mask]
        right_idx = idx[~mask]
        if left_idx.size == 0 or right_idx.size == 0:
            return node
        if sorted_idx is not None:
            left_sorted, right_sorted = self._partition_sorted(
                X, sorted_idx, left_idx, feature, threshold
            )
        else:
            left_sorted = right_sorted = None
        self._feature[node] = feature
        self._threshold[node] = threshold
        self._left[node] = self._build(X, y, left_idx, left_sorted, depth + 1, rng)
        self._right[node] = self._build(X, y, right_idx, right_sorted, depth + 1, rng)
        return node

    @staticmethod
    def _partition_sorted(
        X: np.ndarray,
        sorted_idx: np.ndarray,
        left_idx: np.ndarray,
        feature: int,
        threshold: float,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Split the per-column sorted index cache into the two children.

        Every index keeps its rank among its sibling group, so each child
        column stays stably sorted.  One ``put_along_axis`` scatter moves
        all columns at once: destination row = rank-so-far among lefts for
        left members, ``n_left`` + rank-so-far among rights otherwise.
        """
        member = np.zeros(X.shape[0], dtype=bool)
        member[left_idx] = True
        in_left = member[sorted_idx]  # (n_node, d) membership in sorted order
        n, d = sorted_idx.shape
        n_left = left_idx.size
        cl = np.cumsum(in_left, axis=0)  # lefts seen up to each row, per column
        rows = np.arange(n).reshape(-1, 1)
        dest = np.where(in_left, cl - 1, n_left + rows - cl)
        out = np.empty_like(sorted_idx)
        out[dest, np.arange(d)] = sorted_idx
        return out[:n_left], out[n_left:]

    def _best_split(
        self,
        X: np.ndarray,
        y: np.ndarray,
        idx: np.ndarray,
        y_node: np.ndarray,
        sorted_idx: np.ndarray | None,
        rng: np.random.Generator,
    ) -> tuple[int, float] | None:
        if sorted_idx is not None:
            return self._best_split_presorted(X, y, y_node, sorted_idx, rng)
        n_features = X.shape[1]
        k = n_features if self.max_features is None else min(self.max_features, n_features)
        features = rng.choice(n_features, size=k, replace=False)
        n = idx.size
        total_sum = y_node.sum()
        best_score = np.inf  # weighted child SSE; parent SSE is constant
        best: tuple[int, float] | None = None
        counts = np.arange(1, n)  # left sizes (shared across features)
        right_counts = n - counts
        for f in features:
            col = X[idx, f]
            order = np.argsort(col, kind="stable")
            xs = col[order]
            ys = y_node[order]
            # Candidate split after position i (1..n-1) only where x changes.
            csum = np.cumsum(ys)
            csum2 = np.cumsum(ys * ys)
            left_sum = csum[:-1]
            left_sum2 = csum2[:-1]
            right_sum = total_sum - left_sum
            right_sum2 = csum2[-1] - left_sum2
            sse = (
                left_sum2
                - left_sum * left_sum / counts
                + right_sum2
                - right_sum * right_sum / right_counts
            )
            valid = xs[1:] > xs[:-1]
            if not valid.any():
                continue
            sse = np.where(valid, sse, np.inf)
            pos = int(np.argmin(sse))
            if sse[pos] < best_score:
                best_score = float(sse[pos])
                best = (int(f), float(0.5 * (xs[pos] + xs[pos + 1])))
        return best

    def _best_split_presorted(
        self,
        X: np.ndarray,
        y: np.ndarray,
        y_node: np.ndarray,
        sorted_idx: np.ndarray,
        rng: np.random.Generator,
    ) -> tuple[int, float] | None:
        """All candidate features scored in one (n, k) cumsum batch.

        Column-wise ``cumsum`` accumulates sequentially per column, so the
        SSE floats match the reference loop bit for bit; the flat argmin
        over the feature-major (k, n-1) matrix reproduces its tie
        breaking (first sampled feature, then first position, wins).
        """
        n_features = X.shape[1]
        k = n_features if self.max_features is None else min(self.max_features, n_features)
        features = rng.choice(n_features, size=k, replace=False)
        n = y_node.size
        total_sum = y_node.sum()
        order = sorted_idx[:, features]  # (n, k) per-feature sorted indices
        ys = y[order]
        xs = X[order, features]
        csum = np.cumsum(ys, axis=0)
        csum2 = np.cumsum(ys * ys, axis=0)
        left_sum = csum[:-1]
        left_sum2 = csum2[:-1]
        right_sum = total_sum - left_sum
        right_sum2 = csum2[-1] - left_sum2
        counts = np.arange(1, n).reshape(-1, 1)  # left sizes
        right_counts = n - counts
        sse = (
            left_sum2
            - left_sum * left_sum / counts
            + right_sum2
            - right_sum * right_sum / right_counts
        )
        np.copyto(sse, np.inf, where=xs[1:] <= xs[:-1])  # splits only where x changes
        flat = int(np.argmin(sse.T.ravel()))  # feature-major: first feature wins ties
        j, pos = divmod(flat, n - 1)
        if not np.isfinite(sse[pos, j]):
            return None
        return int(features[j]), float(0.5 * (xs[pos, j] + xs[pos + 1, j]))

    # ------------------------------------------------------------------ #
    def predict(self, X: np.ndarray) -> np.ndarray:
        """Vectorized prediction: route all rows level by level."""
        X = np.asarray(X, dtype=float)
        if self.value_ is None or self.value_.size == 0:
            raise RuntimeError("tree is not fitted")
        feature = self.feature_
        threshold = self.threshold_
        left = self.left_
        right = self.right_

        nodes = np.zeros(X.shape[0], dtype=np.intp)
        active = feature[nodes] >= 0
        while active.any():
            cur = nodes[active]
            feats = feature[cur]
            go_left = X[active, feats] <= threshold[cur]
            nodes[active] = np.where(go_left, left[cur], right[cur])
            active = feature[nodes] >= 0
        return self.value_[nodes]

    def predict_recursive(self, X: np.ndarray) -> np.ndarray:
        """Per-row Python recursion — the reference the vectorized walks
        must match bit-for-bit (kept for tests and the perf harness)."""
        X = np.asarray(X, dtype=float)
        if self.value_ is None or self.value_.size == 0:
            raise RuntimeError("tree is not fitted")

        def walk(node: int, row: np.ndarray) -> float:
            while self.feature_[node] >= 0:
                if row[self.feature_[node]] <= self.threshold_[node]:
                    node = self.left_[node]
                else:
                    node = self.right_[node]
            return float(self.value_[node])

        return np.array([walk(0, row) for row in X])

    @property
    def node_count(self) -> int:
        return len(self._value)


class RandomForestRegressor:
    """Bootstrap ensemble of regression trees with (μ, σ) prediction."""

    def __init__(
        self,
        n_trees: int = 25,
        max_depth: int = 12,
        min_samples_split: int = 4,
        max_features: int | None = None,
        bootstrap: bool = True,
        presort: bool = True,
    ) -> None:
        if n_trees < 1:
            raise ValueError("n_trees must be >= 1")
        self.n_trees = n_trees
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.presort = presort
        self._trees: list[RegressionTree] = []
        # Concatenated node table over all trees (built post-fit).
        self._ens_feature: np.ndarray | None = None
        self._ens_threshold: np.ndarray | None = None
        self._ens_left: np.ndarray | None = None
        self._ens_right: np.ndarray | None = None
        self._ens_value: np.ndarray | None = None
        self._ens_roots: np.ndarray | None = None

    def fit(self, X: np.ndarray, y: np.ndarray, rng: np.random.Generator) -> "RandomForestRegressor":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if X.shape[0] == 0:
            raise ValueError("cannot fit on empty data")
        n = X.shape[0]
        max_features = self.max_features
        if max_features is None and X.shape[1] > 1:
            # skopt-style default: use all features for small dims, else sqrt.
            max_features = X.shape[1] if X.shape[1] <= 3 else max(1, int(np.sqrt(X.shape[1])))
        self._trees = []
        for _ in range(self.n_trees):
            tree = RegressionTree(
                self.max_depth, self.min_samples_split, max_features, presort=self.presort
            )
            if self.bootstrap and n > 1:
                sample = rng.integers(0, n, size=n)
                tree.fit(X[sample], y[sample], rng)
            else:
                tree.fit(X, y, rng)
            self._trees.append(tree)
        self._finalize_ensemble()
        return self

    def _finalize_ensemble(self) -> None:
        """Stack all trees' frozen node arrays into one offset table."""
        counts = [t.node_count for t in self._trees]
        offsets = np.concatenate([[0], np.cumsum(counts)[:-1]]).astype(np.intp)
        self._ens_roots = offsets
        self._ens_feature = np.concatenate([t.feature_ for t in self._trees])
        self._ens_threshold = np.concatenate([t.threshold_ for t in self._trees])
        self._ens_value = np.concatenate([t.value_ for t in self._trees])
        # Child pointers shift by each tree's offset; leaves stay -1 but
        # are never followed (feature < 0 stops the walk first).
        self._ens_left = np.concatenate(
            [t.left_ + off for t, off in zip(self._trees, offsets)]
        )
        self._ens_right = np.concatenate(
            [t.right_ + off for t, off in zip(self._trees, offsets)]
        )

    def predict(self, X: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Per-row (mean, std) across the ensemble, all trees at once.

        One level-synchronous walk routes the full (trees × candidates)
        pointer matrix; numerically identical to stacking per-tree
        predictions (same floats, same reductions).
        """
        if not self._trees:
            raise RuntimeError("forest is not fitted")
        X = np.asarray(X, dtype=float)
        n = X.shape[0]
        t = len(self._trees)
        feature = self._ens_feature
        threshold = self._ens_threshold
        left = self._ens_left
        right = self._ens_right

        nodes = np.repeat(self._ens_roots, n)       # (t * n,) current node ids
        rows = np.tile(np.arange(n), t)             # candidate row per walker
        active = feature[nodes] >= 0
        while active.any():
            cur = nodes[active]
            feats = feature[cur]
            go_left = X[rows[active], feats] <= threshold[cur]
            nodes[active] = np.where(go_left, left[cur], right[cur])
            active = feature[nodes] >= 0
        preds = self._ens_value[nodes].reshape(t, n)
        return preds.mean(axis=0), preds.std(axis=0)

    def predict_reference(self, X: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Per-tree, per-row recursive reference (tests / perf harness)."""
        if not self._trees:
            raise RuntimeError("forest is not fitted")
        preds = np.stack([t.predict_recursive(X) for t in self._trees])
        return preds.mean(axis=0), preds.std(axis=0)
