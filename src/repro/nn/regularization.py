"""Dropout (extension layer for the baseline networks).

Inverted dropout: at training time each activation is zeroed with
probability ``p`` and the survivors are scaled by ``1/(1-p)`` so inference
(where dropout is a no-op) needs no rescaling.  The mask is sampled from an
explicit generator for reproducibility; inference mode follows the autograd
state, like :class:`~repro.nn.normalization.BatchNorm1d`.
"""

from __future__ import annotations

import numpy as np

from repro.nn.autograd import Tensor, is_grad_enabled
from repro.nn.layers import Layer

__all__ = ["Dropout"]


class Dropout(Layer):
    """Inverted dropout with rate ``p``."""

    def __init__(self, p: float, rng: np.random.Generator) -> None:
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {p}")
        self.p = p
        self.rng = rng

    def parameters(self) -> list[Tensor]:
        return []

    def __call__(self, x: Tensor) -> Tensor:
        if not is_grad_enabled() or self.p == 0.0:
            return x
        keep = 1.0 - self.p
        mask = (self.rng.random(x.shape) < keep) / keep
        return x * Tensor(mask)
