"""Unit tests for the synthetic dataset generators and preprocessing."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import (
    DATASET_SPECS,
    Standardizer,
    dataset_names,
    load_dataset,
    make_tabular_classification,
    one_hot,
    train_valid_test_split,
)


# --------------------------------------------------------------------- #
# Generator
# --------------------------------------------------------------------- #
def test_generator_shapes(rng):
    X, y = make_tabular_classification(100, 12, 4, rng)
    assert X.shape == (100, 12)
    assert y.shape == (100,)
    assert y.dtype == np.int64
    assert set(np.unique(y)) <= set(range(4))


def test_generator_deterministic_per_seed():
    a = make_tabular_classification(50, 5, 3, np.random.default_rng(1))
    b = make_tabular_classification(50, 5, 3, np.random.default_rng(1))
    np.testing.assert_array_equal(a[0], b[0])
    np.testing.assert_array_equal(a[1], b[1])


def test_label_noise_caps_learnability(rng):
    """Even a nearest-centroid oracle cannot beat the noise ceiling."""
    X_clean, y_clean = make_tabular_classification(
        2000, 6, 2, np.random.default_rng(0), class_sep=8.0, mixing_depth=0, label_noise=0.0
    )
    X_noisy, y_noisy = make_tabular_classification(
        2000, 6, 2, np.random.default_rng(0), class_sep=8.0, mixing_depth=0, label_noise=0.5
    )
    # Same features (same rng stream up to the flip step).
    np.testing.assert_array_equal(X_clean, X_noisy)
    flip_rate = (y_clean != y_noisy).mean()
    assert 0.15 < flip_rate < 0.35  # 0.5 noise, half flips land on same class


def test_class_imbalance_skews_priors(rng):
    _, y = make_tabular_classification(
        5000, 4, 5, rng, class_imbalance=0.5
    )
    counts = np.bincount(y, minlength=5)
    assert counts[0] > counts[-1] * 2


def test_mixing_depth_zero_is_linear(rng):
    """With no mixing layers X is an affine map of latent clusters."""
    X, y = make_tabular_classification(
        500, 6, 3, rng, class_sep=6.0, mixing_depth=0
    )
    # A linear classifier separates well-separated linear clusters.
    from repro.baselines import LogisticRegression

    model = LogisticRegression(3).fit(X[:400], y[:400], np.random.default_rng(0))
    assert model.score(X[400:], y[400:]) > 0.95


def test_generator_validation(rng):
    with pytest.raises(ValueError):
        make_tabular_classification(0, 5, 3, rng)
    with pytest.raises(ValueError):
        make_tabular_classification(10, 5, 1, rng)
    with pytest.raises(ValueError):
        make_tabular_classification(10, 5, 3, rng, label_noise=1.0)
    with pytest.raises(ValueError):
        make_tabular_classification(10, 5, 3, rng, mixing_depth=-1)


@given(
    n=st.integers(10, 200),
    d=st.integers(1, 10),
    c=st.integers(2, 5),
    seed=st.integers(0, 100),
)
@settings(max_examples=30, deadline=None)
def test_generator_output_finite(n, d, c, seed):
    X, y = make_tabular_classification(n, d, c, np.random.default_rng(seed))
    assert np.isfinite(X).all()
    assert (y >= 0).all() and (y < c).all()


# --------------------------------------------------------------------- #
# Preprocessing
# --------------------------------------------------------------------- #
def test_standardizer_zero_mean_unit_std(rng):
    X = rng.normal(loc=5.0, scale=3.0, size=(500, 4))
    Z = Standardizer().fit_transform(X)
    np.testing.assert_allclose(Z.mean(axis=0), 0.0, atol=1e-10)
    np.testing.assert_allclose(Z.std(axis=0), 1.0, atol=1e-10)


def test_standardizer_constant_column_maps_to_zero():
    X = np.column_stack([np.ones(10), np.arange(10.0)])
    Z = Standardizer().fit_transform(X)
    np.testing.assert_allclose(Z[:, 0], 0.0)


def test_standardizer_uses_train_statistics(rng):
    train = rng.normal(size=(100, 2))
    test = rng.normal(loc=10.0, size=(50, 2))
    s = Standardizer().fit(train)
    Z = s.transform(test)
    assert Z.mean() > 5.0  # test shift preserved relative to train stats


def test_standardizer_unfitted_raises():
    with pytest.raises(RuntimeError):
        Standardizer().transform(np.zeros((2, 2)))


def test_one_hot_roundtrip():
    y = np.array([0, 2, 1, 2])
    oh = one_hot(y, 3)
    assert oh.shape == (4, 3)
    np.testing.assert_array_equal(oh.argmax(axis=1), y)
    np.testing.assert_allclose(oh.sum(axis=1), 1.0)


def test_one_hot_validation():
    with pytest.raises(ValueError):
        one_hot(np.array([0, 3]), 3)
    with pytest.raises(ValueError):
        one_hot(np.zeros((2, 2), dtype=int), 3)


# --------------------------------------------------------------------- #
# Splits
# --------------------------------------------------------------------- #
def test_split_fractions_match_paper(rng):
    X = np.zeros((1000, 3))
    y = np.zeros(1000, dtype=int)
    X_tr, y_tr, X_va, y_va, X_te, y_te = train_valid_test_split(X, y, rng)
    assert X_tr.shape[0] == 420
    assert X_va.shape[0] == 250
    assert X_te.shape[0] == 330


def test_split_partitions_disjointly(rng):
    X = np.arange(100, dtype=float).reshape(-1, 1)
    y = np.arange(100)
    X_tr, y_tr, X_va, y_va, X_te, y_te = train_valid_test_split(X, y, rng)
    union = np.concatenate([y_tr, y_va, y_te])
    assert np.array_equal(np.sort(union), np.arange(100))


def test_split_validation(rng):
    with pytest.raises(ValueError):
        train_valid_test_split(np.zeros((5, 2)), np.zeros(4, dtype=int), rng)
    with pytest.raises(ValueError):
        train_valid_test_split(
            np.zeros((5, 2)), np.zeros(5, dtype=int), rng, fractions=(0.5, 0.5, 0.5)
        )


# --------------------------------------------------------------------- #
# Benchmarks
# --------------------------------------------------------------------- #
def test_dataset_names_order():
    assert dataset_names() == ["covertype", "airlines", "albert", "dionis"]


@pytest.mark.parametrize("name", ["covertype", "airlines", "albert"])
def test_load_dataset_shapes(name):
    ds = load_dataset(name, size=600)
    spec = DATASET_SPECS[name]
    assert ds.n_features == spec.n_features
    assert ds.n_classes == spec.n_classes
    assert ds.X_train.shape[1] == spec.n_features
    total = ds.train_size + ds.X_valid.shape[0] + ds.X_test.shape[0]
    assert total == 600
    # Features standardized on train.
    np.testing.assert_allclose(ds.X_train.mean(axis=0), 0.0, atol=1e-9)


def test_load_dataset_nominal_sizes_paper_scale():
    ds = load_dataset("covertype", size=600)
    assert ds.nominal_train_size == int(round(0.42 * 581_012))


def test_load_dataset_deterministic():
    a = load_dataset("airlines", size=500)
    b = load_dataset("airlines", size=500)
    np.testing.assert_array_equal(a.X_train, b.X_train)
    np.testing.assert_array_equal(a.y_test, b.y_test)


def test_load_dataset_seed_override_changes_data():
    a = load_dataset("airlines", size=500)
    b = load_dataset("airlines", size=500, seed=99)
    assert not np.allclose(a.X_train, b.X_train)


def test_load_dataset_unknown_name():
    with pytest.raises(KeyError, match="unknown dataset"):
        load_dataset("mnist")


def test_load_dataset_too_small():
    with pytest.raises(ValueError):
        load_dataset("covertype", size=30)


def test_dionis_has_355_classes():
    ds = load_dataset("dionis", size=7500)
    assert ds.n_classes == 355
    # Most classes should actually appear in a 7.5k sample.
    assert np.unique(ds.y_train).size > 300
