"""Ensembling strategies used by the AutoML baselines.

- :class:`WeightedEnsemble` — greedy ensemble selection with replacement
  (Caruana et al., 2004), the procedure AutoGluon uses to weight its base
  models on validation data.
- :class:`StackingEnsemble` — a logistic-regression meta-learner over the
  concatenated base-model probability vectors (AutoGluon's ``auto_stack``).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaseClassifier
from repro.baselines.linear import LogisticRegression

__all__ = ["WeightedEnsemble", "StackingEnsemble"]


class WeightedEnsemble(BaseClassifier):
    """Greedy forward selection of base models (with replacement).

    At each of ``n_rounds`` steps, the base model whose addition most
    improves validation accuracy of the averaged probabilities is added;
    final weights are the selection frequencies.
    """

    def __init__(self, n_classes: int, models: list[BaseClassifier], n_rounds: int = 20) -> None:
        super().__init__(n_classes)
        if not models:
            raise ValueError("need at least one base model")
        if n_rounds < 1:
            raise ValueError("n_rounds must be >= 1")
        self.models = list(models)
        self.n_rounds = n_rounds
        self.weights_: np.ndarray | None = None

    def fit_weights(self, X_valid: np.ndarray, y_valid: np.ndarray) -> "WeightedEnsemble":
        """Learn the mixing weights on held-out validation data."""
        probas = np.stack([m.predict_proba(X_valid) for m in self.models])  # (M, n, C)
        y_valid = np.asarray(y_valid)
        counts = np.zeros(len(self.models), dtype=np.int64)
        mix = np.zeros_like(probas[0])
        total = 0
        for _ in range(self.n_rounds):
            # Try adding each model; keep the best.
            accs = np.array(
                [
                    ((mix + p).argmax(axis=1) == y_valid).mean()
                    for p in probas
                ]
            )
            pick = int(np.argmax(accs))
            counts[pick] += 1
            mix = mix + probas[pick]
            total += 1
        self.weights_ = counts / total
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if self.weights_ is None:
            raise RuntimeError("ensemble weights are not fitted")
        out = np.zeros((np.asarray(X).shape[0], self.n_classes))
        for w, model in zip(self.weights_, self.models):
            if w > 0:
                out += w * model.predict_proba(X)
        return out


class StackingEnsemble(BaseClassifier):
    """Logistic meta-learner over base-model probabilities."""

    def __init__(self, n_classes: int, models: list[BaseClassifier]) -> None:
        super().__init__(n_classes)
        if not models:
            raise ValueError("need at least one base model")
        self.models = list(models)
        self._meta: LogisticRegression | None = None

    def fit_meta(
        self, X_valid: np.ndarray, y_valid: np.ndarray, rng: np.random.Generator
    ) -> "StackingEnsemble":
        """Fit the meta-learner on held-out validation predictions."""
        features = self._meta_features(X_valid)
        self._meta = LogisticRegression(self.n_classes, n_iter=300)
        self._meta.fit(features, np.asarray(y_valid, dtype=np.int64), rng)
        return self

    def _meta_features(self, X: np.ndarray) -> np.ndarray:
        return np.concatenate([m.predict_proba(X) for m in self.models], axis=1)

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if self._meta is None:
            raise RuntimeError("meta-learner is not fitted")
        return self._meta.predict_proba(self._meta_features(X))
