"""Shared infrastructure for the experiment benchmarks.

Every table and figure of the paper has one bench module.  All of them run
searches on the simulated cluster at a reduced scale controlled by the
``REPRO_SCALE`` environment variable (``small`` default / ``medium`` /
``large``); the *shape* of each result (orderings, ratios, crossovers) is
what reproduces, not absolute values — see EXPERIMENTS.md.

Search runs are memoized per (dataset, variant, seed, ...) within a pytest
session so benches that share runs (Table I ↔ Fig. 3, Fig. 6 ↔ Tables II/III
↔ Fig. 7) do not retrain.  Results are also appended to
``benchmarks/results/*.txt`` so the printed rows survive output capture.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any

import numpy as np

from repro.core import (
    ModelEvaluation,
    SearchHistory,
    make_age_variant,
    make_agebo_variant,
)
from repro.datasets import load_dataset
from repro.searchspace import ArchitectureSpace
from repro.workflow import SimulatedEvaluator

RESULTS_DIR = Path(__file__).parent / "results"


@dataclass(frozen=True)
class Scale:
    """Knobs that shrink the paper's 129-node, 3-hour runs to this machine."""

    num_workers: int
    wall_minutes: float  # simulated wall-clock budget per search
    max_evaluations: int  # hard cap on real trainings per search
    epochs: int  # real training epochs (durations billed at 20)
    warmup_epochs: int  # scaled with epochs (paper: 5 of 20)
    population_size: int
    sample_size: int
    num_nodes: int  # architecture-space depth
    dataset_size: int
    dionis_size: int
    # Quantile defining "high-performing" for Figs. 5/8 (paper: 0.99 over
    # thousands of evaluations; lowered with the evaluation budget so the
    # counts stay informative).
    hp_quantile: float


SCALES = {
    "small": Scale(
        num_workers=8,
        wall_minutes=120.0,
        max_evaluations=160,
        epochs=5,
        warmup_epochs=2,
        population_size=16,
        sample_size=5,
        num_nodes=5,
        dataset_size=2500,
        dionis_size=6000,
        hp_quantile=0.90,
    ),
    "medium": Scale(
        num_workers=16,
        wall_minutes=180.0,
        max_evaluations=400,
        epochs=10,
        warmup_epochs=3,
        population_size=32,
        sample_size=8,
        num_nodes=10,
        dataset_size=6000,
        dionis_size=12000,
        hp_quantile=0.95,
    ),
    "large": Scale(
        num_workers=32,
        wall_minutes=180.0,
        max_evaluations=1200,
        epochs=20,
        warmup_epochs=5,
        population_size=100,
        sample_size=10,
        num_nodes=10,
        dataset_size=12000,
        dionis_size=24000,
        hp_quantile=0.99,
    ),
}


def get_scale() -> Scale:
    name = os.environ.get("REPRO_SCALE", "small")
    try:
        return SCALES[name]
    except KeyError:
        raise KeyError(f"REPRO_SCALE must be one of {sorted(SCALES)}, got {name!r}") from None


# --------------------------------------------------------------------- #
# Run cache
# --------------------------------------------------------------------- #
_RUN_CACHE: dict[tuple, tuple[SearchHistory, SimulatedEvaluator]] = {}
_DS_CACHE: dict[tuple, Any] = {}


def get_dataset(name: str):
    scale = get_scale()
    size = scale.dionis_size if name == "dionis" else scale.dataset_size
    key = (name, size)
    if key not in _DS_CACHE:
        _DS_CACHE[key] = load_dataset(name, size=size)
    return _DS_CACHE[key]


def run_search(
    dataset_name: str,
    variant: str,
    seed: int = 0,
    num_ranks: int = 1,
    kappa: float = 0.001,
    lie_strategy: str = "mean",
    mutate_skips: bool = True,
) -> tuple[SearchHistory, SimulatedEvaluator]:
    """Run (or fetch) one search.

    ``variant`` is ``"AgE"`` (with ``num_ranks``), ``"AgEBO"``,
    ``"AgEBO-8-LR"`` or ``"AgEBO-8-LR-BS"``.
    """
    scale = get_scale()
    key = (dataset_name, variant, seed, num_ranks, kappa, lie_strategy, mutate_skips)
    if key in _RUN_CACHE:
        return _RUN_CACHE[key]

    ds = get_dataset(dataset_name)
    space = ArchitectureSpace(num_nodes=scale.num_nodes)
    run_fn = ModelEvaluation(
        ds, space, epochs=scale.epochs, warmup_epochs=scale.warmup_epochs, nominal_epochs=20
    )
    evaluator = SimulatedEvaluator(run_fn, num_workers=scale.num_workers)
    kwargs = dict(
        population_size=scale.population_size,
        sample_size=scale.sample_size,
        seed=seed,
        mutate_skips=mutate_skips,
    )
    if variant == "AgE":
        search = make_age_variant(space, evaluator, num_ranks=num_ranks, **kwargs)
    else:
        search = make_agebo_variant(
            variant, space, evaluator, kappa=kappa, lie_strategy=lie_strategy, **kwargs
        )
    history = search.search(
        max_evaluations=scale.max_evaluations, wall_time_minutes=scale.wall_minutes
    )
    # The wall budget governs unless the eval cap bites first; clamp the
    # analysis window to the budget for comparability across variants.
    _RUN_CACHE[key] = (history, evaluator)
    return history, evaluator


def get_search_space() -> ArchitectureSpace:
    return ArchitectureSpace(num_nodes=get_scale().num_nodes)


# --------------------------------------------------------------------- #
# Reporting
# --------------------------------------------------------------------- #
def format_table(title: str, headers: list[str], rows: list[list[Any]]) -> str:
    def fmt(v: Any) -> str:
        if isinstance(v, float):
            return f"{v:.4g}"
        return str(v)

    str_rows = [[fmt(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines = [title, "-" * len(title)]
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def report(name: str, text: str) -> None:
    """Print a result block and persist it under benchmarks/results/."""
    print("\n" + text + "\n")
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")


def mean_std(values) -> tuple[float, float]:
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return float("nan"), float("nan")
    return float(arr.mean()), float(arr.std())
