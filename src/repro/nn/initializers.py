"""Weight initializers for dense layers.

All initializers take an explicit :class:`numpy.random.Generator` so that
architecture evaluations are reproducible given a seed — a requirement for
deterministic search trajectories in the benchmark harness.

Every initializer draws in float64 (so a given seed yields the same weights
regardless of the requested precision) and then casts to ``dtype``; the
cast is a no-op for the float64 default.
"""

from __future__ import annotations

import numpy as np

__all__ = ["glorot_uniform", "he_normal", "zeros_init"]


def glorot_uniform(
    fan_in: int, fan_out: int, rng: np.random.Generator, dtype=np.float64
) -> np.ndarray:
    """Glorot/Xavier uniform initialization, suited to tanh/sigmoid layers."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    w = rng.uniform(-limit, limit, size=(fan_in, fan_out))
    return np.asarray(w, dtype=dtype)


def he_normal(
    fan_in: int, fan_out: int, rng: np.random.Generator, dtype=np.float64
) -> np.ndarray:
    """He normal initialization, suited to ReLU-family layers."""
    w = rng.normal(0.0, np.sqrt(2.0 / fan_in), size=(fan_in, fan_out))
    return np.asarray(w, dtype=dtype)


def zeros_init(*shape: int, dtype=np.float64) -> np.ndarray:
    """Zero initialization (biases)."""
    return np.zeros(shape, dtype=dtype)
