"""Auto-PyTorch-like baseline: restricted funnel-MLP HPO with
successive halving (the Fig. 6 reference line).

Auto-PyTorch (via LCBench) searches a constrained space of funnel-shaped
MLPs — fewer trainable parameters and layer-shape choices than the AgEBO
space — using multi-fidelity (BOHB-style) evaluation.  The paper compares
against the best *validation accuracy at epoch 20* of its models.  This
class reproduces that reference: sample funnel configurations, run
successive halving over training epochs, return the best model's
20-epoch validation accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.baselines.neural import MLPClassifier
from repro.datasets.openml_like import TabularDataset

__all__ = ["AutoPyTorchLike", "FunnelConfig"]


@dataclass(frozen=True)
class FunnelConfig:
    """One point of the restricted space: a funnel MLP + training HPs."""

    max_units: int
    num_layers: int
    learning_rate: float
    batch_size: int

    def hidden_layers(self) -> tuple[int, ...]:
        """Funnel shape: widths shrink linearly toward the output."""
        widths = np.linspace(self.max_units, max(8, self.max_units // 4), self.num_layers)
        return tuple(int(round(w)) for w in widths)


class AutoPyTorchLike:
    """Successive-halving HPO over funnel MLPs.

    Parameters
    ----------
    n_candidates:
        Initial configurations (rungs halve this down to 1-2 survivors).
    min_epochs, max_epochs:
        Fidelity range; survivors of each rung train with doubled epochs,
        the final rung reaching ``max_epochs`` (20, matching LCBench).
    """

    def __init__(
        self,
        n_candidates: int = 16,
        min_epochs: int = 3,
        max_epochs: int = 20,
        max_units_choices: tuple[int, ...] = (16, 32, 64),
        max_layers: int = 3,
        seed: int = 0,
    ) -> None:
        if n_candidates < 2:
            raise ValueError("n_candidates must be >= 2")
        if not 1 <= min_epochs <= max_epochs:
            raise ValueError("need 1 <= min_epochs <= max_epochs")
        if not max_units_choices or max_layers < 1:
            raise ValueError("need at least one width choice and max_layers >= 1")
        self.n_candidates = n_candidates
        self.min_epochs = min_epochs
        self.max_epochs = max_epochs
        # Paper §IV-C: "the architecture space of Auto-PyTorch is restricted
        # to a smaller number of trainable parameters and smaller number
        # [of layers]" than the AgEBO space — hence the small default widths.
        self.max_units_choices = tuple(max_units_choices)
        self.max_layers = max_layers
        self.seed = seed
        self.best_config_: FunnelConfig | None = None
        self.best_val_accuracy_: float | None = None
        self.rung_history_: list[dict[str, Any]] = []

    def _sample_config(self, rng: np.random.Generator) -> FunnelConfig:
        return FunnelConfig(
            max_units=int(rng.choice(self.max_units_choices)),
            num_layers=int(rng.integers(1, self.max_layers + 1)),
            learning_rate=float(np.exp(rng.uniform(np.log(1e-4), np.log(1e-2)))),
            batch_size=int(rng.choice([32, 64, 128, 256])),
        )

    def _evaluate(
        self, config: FunnelConfig, ds: TabularDataset, epochs: int, rng: np.random.Generator
    ) -> float:
        model = MLPClassifier(
            ds.n_classes,
            ds.n_features,
            hidden=config.hidden_layers(),
            epochs=epochs,
            batch_size=config.batch_size,
            learning_rate=config.learning_rate,
        )
        model.fit(ds.X_train, ds.y_train, rng, ds.X_valid, ds.y_valid)
        return float(model.val_accuracy_)

    def fit(self, ds: TabularDataset) -> "AutoPyTorchLike":
        """Run successive halving; retains the best config and its score."""
        rng = np.random.default_rng(self.seed)
        candidates = [self._sample_config(rng) for _ in range(self.n_candidates)]
        epochs = self.min_epochs
        scores = np.zeros(len(candidates))
        self.rung_history_ = []
        while True:
            scores = np.array([self._evaluate(c, ds, epochs, rng) for c in candidates])
            self.rung_history_.append(
                {"epochs": epochs, "n_candidates": len(candidates), "best": float(scores.max())}
            )
            if len(candidates) <= 2 and epochs >= self.max_epochs:
                break
            keep = max(1, len(candidates) // 2)
            order = np.argsort(-scores)[:keep]
            candidates = [candidates[i] for i in order]
            scores = scores[order]
            epochs = min(self.max_epochs, epochs * 2)
            if len(candidates) == 1 and epochs >= self.max_epochs:
                scores = np.array(
                    [self._evaluate(candidates[0], ds, self.max_epochs, rng)]
                )
                self.rung_history_.append(
                    {"epochs": self.max_epochs, "n_candidates": 1, "best": float(scores.max())}
                )
                break
        best = int(np.argmax(scores))
        self.best_config_ = candidates[best]
        self.best_val_accuracy_ = float(scores[best])
        return self
