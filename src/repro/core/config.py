"""Candidate model configuration: (h_a, h_m)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

__all__ = ["ModelConfig"]


@dataclass
class ModelConfig:
    """One point of the joint search space ``H = H_a × H_m``.

    Attributes
    ----------
    arch:
        Encoded architecture vector (see
        :class:`repro.searchspace.ArchitectureSpace`).
    hyperparameters:
        Full data-parallel training configuration with keys
        ``batch_size``, ``learning_rate`` and ``num_ranks`` (tuned values
        merged with the variant's fixed defaults).
    """

    arch: np.ndarray
    hyperparameters: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.arch = np.asarray(self.arch, dtype=np.int64)
        if self.arch.ndim != 1:
            raise ValueError(f"arch must be a 1-D vector, got shape {self.arch.shape}")

    @property
    def batch_size(self) -> int:
        return int(self.hyperparameters["batch_size"])

    @property
    def learning_rate(self) -> float:
        return float(self.hyperparameters["learning_rate"])

    @property
    def num_ranks(self) -> int:
        return int(self.hyperparameters["num_ranks"])

    def key(self) -> tuple:
        """Hashable identity for uniqueness counting (Fig. 5)."""
        return (tuple(int(v) for v in self.arch),)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        hp = {
            k: (round(v, 5) if isinstance(v, float) else v)
            for k, v in sorted(self.hyperparameters.items())
        }
        return f"ModelConfig(arch={self.arch.tolist()}, hp={hp})"
