"""Ablation (beyond the paper): the linear scaling rule inside AgE-8.

With the rule (paper default), the base lr 0.01 becomes 0.08 at n = 8 —
too hot, which is exactly why AgE-8 degrades in Table I.  Without the rule
the lr stays 0.01 but each epoch takes 8x fewer optimizer steps, so the
model undertrains.  Either way static hyperparameters lose to tuning;
this bench quantifies both failure modes.
"""

from __future__ import annotations

from common import format_table, report
from repro.core import ModelEvaluation, make_age_variant
from repro.workflow import SimulatedEvaluator

import common


def run_experiment():
    scale = common.get_scale()
    ds = common.get_dataset("covertype")
    space = common.get_search_space()
    out = {}
    for scaling in (True, False):
        run_fn = ModelEvaluation(
            ds,
            space,
            epochs=scale.epochs,
            warmup_epochs=scale.warmup_epochs,
            nominal_epochs=20,
            apply_linear_scaling=scaling,
        )
        evaluator = SimulatedEvaluator(run_fn, num_workers=scale.num_workers)
        search = make_age_variant(
            space,
            evaluator,
            num_ranks=8,
            population_size=scale.population_size,
            sample_size=scale.sample_size,
            seed=0,
        )
        history = search.search(
            max_evaluations=scale.max_evaluations, wall_time_minutes=scale.wall_minutes
        )
        key = "with linear scaling" if scaling else "without linear scaling"
        out[key] = {
            "best": history.best().objective,
            "mean": float(history.objectives().mean()),
            "n_evals": len(history),
        }
    return out


def test_ablation_linear_scaling(benchmark):
    out = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = [
        [k, r["n_evals"], round(r["mean"], 4), round(r["best"], 4)] for k, r in out.items()
    ]
    report(
        "ablation_linear_scaling",
        format_table(
            "Ablation — linear scaling rule on/off (AgE-8, Covertype)",
            ["setting", "evals", "mean val acc", "best val acc"],
            rows,
        ),
    )
    # Both static settings produce valid searches; neither should collapse.
    for k, r in out.items():
        assert r["best"] > 0.5, k
