"""Fault policies and deterministic fault injection.

The paper's 3-hour, 129-node campaigns survive stragglers and diverged
trainings because the manager treats evaluation failure as data, not as a
fatal error (§III-C: failed evaluations are penalized with a low objective).
This module makes that behaviour a first-class, testable subsystem:

- :class:`FaultPolicy` — the uniform failure-handling contract honored by
  both evaluator backends: what counts as a failure (exceptions, per-job
  timeouts, non-finite objectives), how often to retry, how long to back
  off between attempts (exponential, in evaluator minutes), and what a
  penalized result looks like.
- :class:`FaultInjector` — a seeded, deterministic wrapper around any run
  function that injects crashes (raised exceptions), hangs/stragglers
  (inflated durations, to be caught by the policy timeout) and corrupted
  results (non-finite objectives).  Used by the fault-injection test
  harness and the CLI's ``--crash-prob``/``--hang-prob`` knobs.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Any, Callable

from repro.workflow.jobs import EvaluationResult

__all__ = ["FaultPolicy", "FaultInjector", "InjectedCrash", "ON_ERROR_POLICIES"]

ON_ERROR_POLICIES = ("raise", "penalize", "retry")


class InjectedCrash(RuntimeError):
    """Raised by :class:`FaultInjector` to simulate a crashing worker."""


@dataclass(frozen=True)
class FaultPolicy:
    """How an evaluator reacts when a run function misbehaves.

    Parameters
    ----------
    on_error:
        ``"raise"`` propagates the failure to the manager (debugging);
        ``"penalize"`` records a low-objective result and moves on
        (production behaviour — a diverged training must not kill a
        campaign); ``"retry"`` re-runs the job up to ``max_retries`` times
        and penalizes once retries are exhausted.
    max_retries:
        Failed attempts re-run under ``on_error="retry"`` before the job is
        penalized.
    retry_backoff:
        Base backoff in evaluator minutes; attempt ``k`` (1-based) waits
        ``retry_backoff * 2**(k-1)`` minutes before re-entering the queue.
        Zero requeues immediately.
    timeout:
        Per-job limit in evaluator minutes; a job running longer is treated
        as failed at ``start + timeout`` (catches hangs and stragglers).
    failure_objective, failure_duration:
        The penalized :class:`EvaluationResult` recorded for a job that has
        exhausted the policy.
    reject_invalid:
        Treat non-finite objectives (NaN/inf — corrupted or diverged
        results) as failures.
    """

    on_error: str = "raise"
    max_retries: int = 0
    retry_backoff: float = 0.0
    timeout: float | None = None
    failure_objective: float = 0.0
    failure_duration: float = 1.0
    reject_invalid: bool = True

    def __post_init__(self) -> None:
        if self.on_error not in ON_ERROR_POLICIES:
            raise ValueError(f"unknown on_error policy {self.on_error!r}")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.retry_backoff < 0:
            raise ValueError("retry_backoff must be >= 0")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError("timeout must be > 0 when set")
        if self.failure_duration < 0:
            raise ValueError("failure_duration must be >= 0")

    # ------------------------------------------------------------------ #
    def backoff_minutes(self, retries: int) -> float:
        """Delay before retry number ``retries`` (1-based) re-enters the queue."""
        if retries < 1 or self.retry_backoff == 0.0:
            return 0.0
        return self.retry_backoff * 2.0 ** (retries - 1)

    def should_retry(self, retries_so_far: int) -> bool:
        return self.on_error == "retry" and retries_so_far < self.max_retries

    def failure_result(self, error: str, duration: float | None = None) -> EvaluationResult:
        """The penalized result recorded for an exhausted job."""
        return EvaluationResult(
            objective=self.failure_objective,
            duration=self.failure_duration if duration is None else duration,
            metadata={"failed": True, "error": error},
        )

    def classify(self, result: EvaluationResult) -> str | None:
        """Failure description for a returned result, or None if acceptable."""
        if self.reject_invalid and not math.isfinite(result.objective):
            return f"invalid objective {result.objective!r}"
        return None


class FaultInjector:
    """Deterministically inject faults into a run function.

    One uniform draw is made per call and partitioned into crash / hang /
    corrupt / clean bands, so the wrapped run function sees an unmodified
    call sequence and whole campaigns stay reproducible for a given seed.

    Parameters
    ----------
    run_function:
        The wrapped evaluation function.
    crash_prob:
        Probability the call raises :class:`InjectedCrash` (the run
        function is *not* invoked — a worker that died before reporting).
    hang_prob:
        Probability the reported duration is inflated by ``hang_factor``
        (a straggler; rely on :attr:`FaultPolicy.timeout` to reap it).
    corrupt_prob:
        Probability the objective is replaced with NaN (a diverged or
        corrupted result; caught by ``FaultPolicy.reject_invalid``).
    """

    def __init__(
        self,
        run_function: Callable[[Any], EvaluationResult],
        crash_prob: float = 0.0,
        hang_prob: float = 0.0,
        corrupt_prob: float = 0.0,
        hang_factor: float = 20.0,
        seed: int = 0,
    ) -> None:
        for name, p in (
            ("crash_prob", crash_prob),
            ("hang_prob", hang_prob),
            ("corrupt_prob", corrupt_prob),
        ):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p}")
        if crash_prob + hang_prob + corrupt_prob > 1.0:
            raise ValueError("crash_prob + hang_prob + corrupt_prob must be <= 1")
        if hang_factor < 1.0:
            raise ValueError("hang_factor must be >= 1")
        self.run_function = run_function
        self.crash_prob = crash_prob
        self.hang_prob = hang_prob
        self.corrupt_prob = corrupt_prob
        self.hang_factor = hang_factor
        self.seed = seed
        self._rng = random.Random(seed)
        self.num_calls = 0
        self.num_crashes = 0
        self.num_hangs = 0
        self.num_corruptions = 0
        # Optional campaign event bus (attached by repro.campaign.builder).
        self.event_bus = None

    def _emit(self, kind: str) -> None:
        if self.event_bus is not None:
            from repro.campaign.events import FaultInjected

            self.event_bus.emit(FaultInjected(kind=kind, call_index=self.num_calls))

    # ------------------------------------------------------------------ #
    def __call__(self, config: Any) -> EvaluationResult:
        self.num_calls += 1
        draw = self._rng.random()
        if draw < self.crash_prob:
            self.num_crashes += 1
            self._emit("crash")
            raise InjectedCrash(f"injected crash on call {self.num_calls}")
        result = self.run_function(config)
        if draw < self.crash_prob + self.hang_prob:
            self.num_hangs += 1
            self._emit("hang")
            return EvaluationResult(
                objective=result.objective,
                duration=result.duration * self.hang_factor,
                metadata={**result.metadata, "injected_hang": True},
            )
        if draw < self.crash_prob + self.hang_prob + self.corrupt_prob:
            self.num_corruptions += 1
            self._emit("corrupt")
            return EvaluationResult(
                objective=float("nan"),
                duration=result.duration,
                metadata={**result.metadata, "injected_corruption": True},
            )
        return result

    # ------------------------------------------------------------------ #
    # Checkpoint support: evaluators snapshot any run function exposing
    # getstate/setstate so resumed campaigns replay the same fault sequence.
    def getstate(self) -> dict[str, Any]:
        version, internal, gauss = self._rng.getstate()
        return {
            "rng": [version, list(internal), gauss],
            "num_calls": self.num_calls,
            "num_crashes": self.num_crashes,
            "num_hangs": self.num_hangs,
            "num_corruptions": self.num_corruptions,
        }

    def setstate(self, state: dict[str, Any]) -> None:
        version, internal, gauss = state["rng"]
        self._rng.setstate((version, tuple(internal), gauss))
        self.num_calls = int(state["num_calls"])
        self.num_crashes = int(state["num_crashes"])
        self.num_hangs = int(state["num_hangs"])
        self.num_corruptions = int(state["num_corruptions"])
