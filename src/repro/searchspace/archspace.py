"""The AgEBO-Tabular neural architecture search space (paper §III-A).

The space is a chain of ``m`` variable nodes (default 10).  Each variable
node is a categorical decision variable with 31 non-ordinal choices: 6 unit
counts × 5 activations, plus the identity op.  Skip-connection nodes are
binary decision variables: destination node ``i`` (variable nodes 2..m and
the output node) may receive skips from the three previous non-consecutive
graph nodes ``i-2, i-3, i-4`` (node 0 = input), giving
``min(3, i-1)`` skip variables per destination — 27 total for ``m = 10``.

An architecture is encoded as an integer vector: the first ``m`` entries are
op indices in ``[0, 31)``, the remaining entries are skip bits in canonical
order (destination ascending, then source ascending).  This flat encoding is
what AgE mutates and what the PCA analysis (Fig. 7) one-hot expands.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.activations import ACTIVATION_NAMES
from repro.nn.graph_network import ArchitectureSpec, NodeOp

__all__ = ["ArchitectureSpace"]

DEFAULT_UNITS: tuple[int, ...] = (16, 32, 48, 64, 80, 96)
MAX_SKIP_REACH = 3  # a destination can reach back at most 3 non-consecutive nodes


@dataclass(frozen=True)
class _SkipVar:
    """One binary skip decision: edge ``source -> destination``."""

    source: int
    destination: int


class ArchitectureSpace:
    """Factory for sampling, encoding, decoding and mutating architectures.

    Parameters
    ----------
    num_nodes:
        Number of variable nodes ``m`` (10 in the paper).
    units, activations:
        Choice lists defining the dense-layer types; defaults reproduce the
        paper's 31 ops (6 × 5 + identity).
    """

    def __init__(
        self,
        num_nodes: int = 10,
        units: tuple[int, ...] = DEFAULT_UNITS,
        activations: tuple[str, ...] = ACTIVATION_NAMES,
    ) -> None:
        if num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        self.num_nodes = num_nodes
        self.units = tuple(units)
        self.activations = tuple(activations)
        # Op index layout: [0, U*A) are (unit, activation) pairs in
        # row-major order; the last index is the identity op.
        self.num_ops = len(self.units) * len(self.activations) + 1
        self._identity_op = self.num_ops - 1

        self._skip_vars: list[_SkipVar] = []
        for dest in range(2, num_nodes + 2):  # variable nodes 2..m, then output m+1
            lo = max(0, dest - 1 - MAX_SKIP_REACH)
            for src in range(lo, dest - 1):
                self._skip_vars.append(_SkipVar(src, dest))

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def num_skip_vars(self) -> int:
        return len(self._skip_vars)

    @property
    def num_variables(self) -> int:
        """Total decision variables (37 for the default space)."""
        return self.num_nodes + self.num_skip_vars

    @property
    def cardinality(self) -> int:
        """Total number of architectures (≈1.1e23 for the default space)."""
        return self.num_ops**self.num_nodes * 2**self.num_skip_vars

    def variable_cardinalities(self) -> np.ndarray:
        """Per-variable choice counts, aligned with the encoding."""
        return np.array(
            [self.num_ops] * self.num_nodes + [2] * self.num_skip_vars, dtype=np.int64
        )

    # ------------------------------------------------------------------ #
    # Sampling / encoding
    # ------------------------------------------------------------------ #
    def random_sample(self, rng: np.random.Generator) -> np.ndarray:
        """Uniformly sample an encoded architecture vector."""
        ops = rng.integers(0, self.num_ops, size=self.num_nodes)
        skips = rng.integers(0, 2, size=self.num_skip_vars)
        return np.concatenate([ops, skips]).astype(np.int64)

    def validate(self, vector: np.ndarray) -> None:
        """Raise ``ValueError`` if ``vector`` is not a valid encoding."""
        vector = np.asarray(vector)
        if vector.shape != (self.num_variables,):
            raise ValueError(
                f"expected vector of length {self.num_variables}, got shape {vector.shape}"
            )
        ops = vector[: self.num_nodes]
        skips = vector[self.num_nodes :]
        if (ops < 0).any() or (ops >= self.num_ops).any():
            raise ValueError("op index out of range")
        if not np.isin(skips, (0, 1)).all():
            raise ValueError("skip variables must be 0 or 1")

    def op_from_index(self, idx: int) -> NodeOp:
        """Decode one op index into a :class:`NodeOp`."""
        if idx == self._identity_op:
            return NodeOp(None, None)
        unit_idx, act_idx = divmod(idx, len(self.activations))
        return NodeOp(self.units[unit_idx], self.activations[act_idx])

    def index_from_op(self, op: NodeOp) -> int:
        if op.is_identity:
            return self._identity_op
        return self.units.index(op.units) * len(self.activations) + self.activations.index(
            op.activation
        )

    def decode(self, vector: np.ndarray) -> ArchitectureSpec:
        """Turn an encoded vector into an :class:`ArchitectureSpec`."""
        self.validate(vector)
        node_ops = tuple(self.op_from_index(int(i)) for i in vector[: self.num_nodes])
        skips = frozenset(
            (var.source, var.destination)
            for var, bit in zip(self._skip_vars, vector[self.num_nodes :])
            if bit
        )
        return ArchitectureSpec(node_ops=node_ops, skips=skips)

    def encode(self, spec: ArchitectureSpec) -> np.ndarray:
        """Inverse of :meth:`decode`."""
        if spec.num_nodes != self.num_nodes:
            raise ValueError(f"spec has {spec.num_nodes} nodes, space has {self.num_nodes}")
        ops = [self.index_from_op(op) for op in spec.node_ops]
        skips = [1 if (v.source, v.destination) in spec.skips else 0 for v in self._skip_vars]
        return np.array(ops + skips, dtype=np.int64)

    # ------------------------------------------------------------------ #
    # Analysis support
    # ------------------------------------------------------------------ #
    def to_onehot(self, vector: np.ndarray) -> np.ndarray:
        """One-hot expansion of the 37 categorical decisions (Fig. 7 PCA)."""
        self.validate(vector)
        parts: list[np.ndarray] = []
        for value, card in zip(vector, self.variable_cardinalities()):
            row = np.zeros(card)
            row[int(value)] = 1.0
            parts.append(row)
        return np.concatenate(parts)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"ArchitectureSpace(nodes={self.num_nodes}, ops={self.num_ops}, "
            f"skips={self.num_skip_vars}, |H_a|≈{float(self.cardinality):.2e})"
        )
