"""The typed campaign configuration tree.

One :class:`CampaignConfig` is the complete, serializable specification of
a search campaign — the single source every knob flows from: the benchmark
and its size, the search method and its evolution/BO parameters
(:class:`SearchConfig`), the training recipe (:class:`TrainingConfig`),
the evaluator backend (:class:`EvaluatorConfig`), failure handling and
fault injection (:class:`FaultConfig`) and checkpointing
(:class:`CheckpointConfig`).

``to_dict`` / ``from_dict`` round-trip losslessly (JSON-safe, versioned,
unknown keys rejected), and checkpoints store the config itself, so
``--resume`` restores *every* knob — including ones added after the
checkpointing code was written — without a pinned key list.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field, fields
from typing import Any

__all__ = [
    "CONFIG_VERSION",
    "SearchConfig",
    "TrainingConfig",
    "EvaluatorConfig",
    "FaultConfig",
    "CheckpointConfig",
    "CampaignConfig",
]

#: Version of the serialized config layout.  Bump on incompatible changes;
#: ``from_dict`` refuses other versions with a clear error.
CONFIG_VERSION = 1


def _from_dict(cls, data: Any, context: str):
    """Build a config dataclass from a mapping, rejecting unknown keys."""
    if not isinstance(data, dict):
        raise ValueError(f"{context}: expected a mapping, got {type(data).__name__}")
    known = {f.name for f in fields(cls)}
    unknown = sorted(set(data) - known)
    if unknown:
        raise ValueError(f"{context}: unknown keys {unknown}; known keys are {sorted(known)}")
    return cls(**data)


@dataclass(frozen=True)
class SearchConfig:
    """The search method and its evolution / BO parameters.

    ``method`` names an entry of the search-method registry
    (:data:`repro.campaign.registry.SEARCH_METHODS`): ``"AgE"`` or one of
    the AgEBO variants.  The ``num_ranks`` / ``batch_size`` /
    ``learning_rate`` statics apply to AgE only; the BO fields
    (``kappa`` …) apply to the AgEBO variants only.
    """

    method: str = "AgEBO"
    population_size: int = 100
    sample_size: int = 10
    seed: int = 0
    mutate_skips: bool = True
    replacement: str = "aging"
    # AgE statics
    num_ranks: int = 1
    batch_size: int = 256
    learning_rate: float = 0.01
    # AgEBO / BO parameters
    kappa: float = 0.001
    max_ranks: int = 8
    n_initial_points: int = 10
    lie_strategy: str = "mean"
    surrogate: str = "forest"

    def __post_init__(self) -> None:
        if self.population_size < 2:
            raise ValueError("search.population_size must be >= 2")
        if not 1 <= self.sample_size <= self.population_size:
            raise ValueError("search.sample_size must be in [1, population_size]")
        if self.replacement not in ("aging", "elitist"):
            raise ValueError(f"unknown search.replacement {self.replacement!r}")
        if self.num_ranks < 1:
            raise ValueError("search.num_ranks must be >= 1")
        if self.kappa < 0:
            raise ValueError("search.kappa must be >= 0")
        if self.n_initial_points < 1:
            raise ValueError("search.n_initial_points must be >= 1")


@dataclass(frozen=True)
class TrainingConfig:
    """The per-evaluation training recipe (paper: 20 epochs, warmup 5,
    plateau patience 5); ``epochs`` may be shortened for bench speed while
    ``nominal_epochs`` keeps simulated durations at paper scale."""

    epochs: int = 20
    nominal_epochs: int | None = 20
    warmup_epochs: int = 5
    plateau_patience: int = 5
    objective: str = "best"
    allreduce: str = "fused"
    backend: str = "compiled"
    dtype: str = "float64"
    apply_linear_scaling: bool = True
    base_seed: int = 0

    def __post_init__(self) -> None:
        if self.epochs < 1:
            raise ValueError("training.epochs must be >= 1")
        if self.objective not in ("best", "final"):
            raise ValueError(f"training.objective must be 'best' or 'final', got {self.objective!r}")
        if self.allreduce not in ("ring", "mean", "fused"):
            raise ValueError(f"unknown training.allreduce {self.allreduce!r}")
        if self.backend not in ("compiled", "eager"):
            raise ValueError(f"unknown training.backend {self.backend!r}")
        if self.dtype not in ("float32", "float64"):
            raise ValueError(f"training.dtype must be 'float32' or 'float64', got {self.dtype!r}")


@dataclass(frozen=True)
class EvaluatorConfig:
    """The cluster backend: ``backend`` names an entry of the evaluator
    registry (``"simulated"``, ``"threaded"`` or ``"process"``); ``cache``
    enables evaluation memoization (``"off"`` or ``"exact"`` — exact-match
    canonical-hash lookup of already-evaluated configurations)."""

    backend: str = "simulated"
    num_workers: int = 8
    measure_wall_time: bool = False  # wall-clock backends only
    cache: str = "off"

    def __post_init__(self) -> None:
        from repro.workflow.cache import CACHE_MODES

        if self.num_workers < 1:
            raise ValueError("evaluator.num_workers must be >= 1")
        if self.cache not in CACHE_MODES:
            raise ValueError(
                f"unknown evaluator.cache mode {self.cache!r}; known modes are "
                f"{list(CACHE_MODES)}"
            )


@dataclass(frozen=True)
class FaultConfig:
    """Failure handling (the FaultPolicy fields) plus deterministic fault
    injection (the FaultInjector knobs; all-zero probabilities disable the
    injector entirely)."""

    on_error: str = "penalize"
    max_retries: int = 2
    retry_backoff: float = 0.0
    timeout: float | None = None
    failure_objective: float = 0.0
    failure_duration: float = 1.0
    crash_prob: float = 0.0
    hang_prob: float = 0.0
    corrupt_prob: float = 0.0
    hang_factor: float = 20.0
    fault_seed: int = 0

    def __post_init__(self) -> None:
        # FaultPolicy / FaultInjector re-validate on construction; checking
        # here too means a bad config fails at definition time, not launch.
        from repro.workflow.faults import ON_ERROR_POLICIES

        if self.on_error not in ON_ERROR_POLICIES:
            raise ValueError(f"unknown faults.on_error policy {self.on_error!r}")
        if self.max_retries < 0:
            raise ValueError("faults.max_retries must be >= 0")
        if self.retry_backoff < 0:
            raise ValueError("faults.retry_backoff must be >= 0")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError("faults.timeout must be > 0 when set")
        for name in ("crash_prob", "hang_prob", "corrupt_prob"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"faults.{name} must be in [0, 1], got {p}")
        if self.crash_prob + self.hang_prob + self.corrupt_prob > 1.0:
            raise ValueError("faults crash/hang/corrupt probabilities must sum to <= 1")
        if self.hang_factor < 1.0:
            raise ValueError("faults.hang_factor must be >= 1")

    @property
    def injects(self) -> bool:
        """Whether any fault injection is enabled."""
        return bool(self.crash_prob or self.hang_prob or self.corrupt_prob)


@dataclass(frozen=True)
class CheckpointConfig:
    """Where and how often the search writes resumable checkpoints
    (``path=None`` disables checkpointing)."""

    path: str | None = None
    every: int = 1

    def __post_init__(self) -> None:
        if self.every < 1:
            raise ValueError("checkpoint.every must be >= 1")


@dataclass(frozen=True)
class CampaignConfig:
    """The complete specification of one campaign.

    Top-level fields name the benchmark, the architecture space and the
    budgets; the sub-configs cover search, training, evaluator, faults and
    checkpointing.  The whole tree is immutable and JSON-serializable:
    ``CampaignConfig.from_dict(cfg.to_dict()) == cfg`` always holds.
    """

    dataset: str = "covertype"
    size: int = 2000
    num_nodes: int = 5
    max_evaluations: int | None = 50
    wall_time_minutes: float | None = None
    search: SearchConfig = field(default_factory=SearchConfig)
    training: TrainingConfig = field(default_factory=TrainingConfig)
    evaluator: EvaluatorConfig = field(default_factory=EvaluatorConfig)
    faults: FaultConfig = field(default_factory=FaultConfig)
    checkpoint: CheckpointConfig = field(default_factory=CheckpointConfig)

    _SUBCONFIGS = {
        "search": SearchConfig,
        "training": TrainingConfig,
        "evaluator": EvaluatorConfig,
        "faults": FaultConfig,
        "checkpoint": CheckpointConfig,
    }

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ValueError("size must be >= 1")
        if self.num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        if self.max_evaluations is None and self.wall_time_minutes is None:
            raise ValueError("need at least one of max_evaluations / wall_time_minutes")
        if self.max_evaluations is not None and self.max_evaluations < 1:
            raise ValueError("max_evaluations must be >= 1 when set")
        for name, cls in self._SUBCONFIGS.items():
            if not isinstance(getattr(self, name), cls):
                raise TypeError(f"{name} must be a {cls.__name__}")

    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict[str, Any]:
        """Lossless, JSON-safe representation, tagged with the layout
        version; the exact inverse of :meth:`from_dict`."""
        data = dataclasses.asdict(self)
        return {"config_version": CONFIG_VERSION, **data}

    @classmethod
    def from_dict(cls, data: Any) -> "CampaignConfig":
        """Rebuild a config written by :meth:`to_dict`.

        Raises ``ValueError`` with a clear message on a missing or
        unsupported ``config_version`` and on unknown keys anywhere in the
        tree (typo protection + forward-compatibility signal).
        """
        if not isinstance(data, dict):
            raise ValueError(f"campaign config: expected a mapping, got {type(data).__name__}")
        data = dict(data)
        version = data.pop("config_version", None)
        if version != CONFIG_VERSION:
            raise ValueError(
                f"unsupported campaign config version {version!r} "
                f"(this build reads version {CONFIG_VERSION}); "
                "re-create the config with CampaignConfig.to_dict()"
            )
        for name, sub_cls in cls._SUBCONFIGS.items():
            if name in data:
                data[name] = _from_dict(sub_cls, data[name], f"campaign config: {name}")
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"campaign config: unknown keys {unknown}; known keys are {sorted(known)}"
            )
        return cls(**data)

    # ------------------------------------------------------------------ #
    def replace(self, **changes: Any) -> "CampaignConfig":
        """A copy with top-level fields replaced (sub-configs included)."""
        return dataclasses.replace(self, **changes)
