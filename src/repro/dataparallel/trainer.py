"""Synchronous data-parallel training (the Horovod-equivalent loop).

Each epoch, every simulated rank draws micro-batches of ``batch_size`` from
its own shard; per-rank gradients are averaged by the ring-allreduce and a
single Adam update is applied with the linearly scaled learning rate
``n · lr``.  Because all ranks hold identical weights, this is exactly
synchronous data-parallel SGD — the same algebra Horovod executes across
real processes — so the accuracy behaviour as a function of ``(n, lr, bs)``
(including large-effective-batch degradation) emerges for real rather than
being modelled.

A ``fused`` fast path computes the same averaged gradient in one
forward/backward over the concatenated global batch; tests assert the two
paths agree to float tolerance.
"""

from __future__ import annotations

import numpy as np

from repro.dataparallel.allreduce import allreduce_mean, ring_allreduce
from repro.dataparallel.scaling import linear_scaled_lr
from repro.dataparallel.sharding import shard_indices
from repro.nn.graph_network import GraphNetwork
from repro.nn.losses import softmax_cross_entropy
from repro.nn.metrics import accuracy
from repro.nn.optimizers import Adam
from repro.nn.schedules import GradualWarmup, ReduceLROnPlateau
from repro.nn.trainer import TrainResult

__all__ = ["DataParallelTrainer"]


class DataParallelTrainer:
    """Train a model with ``num_ranks``-way synchronous data parallelism.

    Parameters
    ----------
    num_ranks:
        Number of simulated data-parallel processes ``n``.
    batch_size, learning_rate:
        *Per-rank* micro-batch size ``bs_1`` and *base* learning rate
        ``lr_1``; the trainer applies the linear scaling rule internally.
    allreduce:
        ``"ring"`` runs the explicit simulated ring (default),
        ``"mean"`` the reference naive average, ``"fused"`` the
        concatenated-batch fast path.
    backend:
        ``"compiled"`` (default) computes per-rank gradients through the
        model's :class:`~repro.nn.compiled.CompiledPlan`; ``"eager"``
        uses the reference tape.  Both paths agree to float tolerance.
    dtype:
        Optional precision override for the training arrays (``None``
        keeps the model's dtype).
    """

    def __init__(
        self,
        num_ranks: int,
        epochs: int = 20,
        batch_size: int = 256,
        learning_rate: float = 0.01,
        warmup_epochs: int = 5,
        plateau_patience: int = 5,
        allreduce: str = "ring",
        apply_linear_scaling: bool = True,
        keep_best_weights: bool = False,
        backend: str = "compiled",
        dtype=None,
    ) -> None:
        if num_ranks < 1:
            raise ValueError("num_ranks must be >= 1")
        if allreduce not in ("ring", "mean", "fused"):
            raise ValueError(f"unknown allreduce mode {allreduce!r}")
        if backend not in ("compiled", "eager"):
            raise ValueError(f"backend must be 'compiled' or 'eager', got {backend!r}")
        self.num_ranks = num_ranks
        self.epochs = epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.warmup_epochs = warmup_epochs
        self.plateau_patience = plateau_patience
        self.allreduce = allreduce
        self.apply_linear_scaling = apply_linear_scaling
        self.keep_best_weights = keep_best_weights
        self.backend = backend
        self.dtype = None if dtype is None else np.dtype(dtype)
        # Optional campaign event bus; when set, fit emits one
        # repro.campaign.events.EpochEnd per epoch.
        self.event_bus = None

    def _emit_epoch(self, epoch: int, train_loss: float, val_accuracy: float) -> None:
        if self.event_bus is not None:
            from repro.campaign.events import EpochEnd

            self.event_bus.emit(
                EpochEnd(
                    epoch=epoch,
                    train_loss=float(train_loss),
                    val_accuracy=float(val_accuracy),
                    num_ranks=self.num_ranks,
                )
            )

    # ------------------------------------------------------------------ #
    def _rank_gradient(
        self, model: GraphNetwork, X: np.ndarray, y: np.ndarray, plan=None, copy: bool = True
    ) -> tuple[list[np.ndarray], float]:
        """Gradient of the mean loss on one rank's micro-batch.

        With a compiled ``plan`` the gradients land in the plan's reused
        buffers; ``copy=True`` (needed whenever per-rank gradients are
        collected before reduction) snapshots them, while the fused path
        passes ``copy=False`` and consumes the buffers immediately.
        """
        if plan is not None:
            loss_value = plan.loss_and_grad(X, y)
            grads = plan.grad_buffers
            if copy:
                grads = [g.copy() for g in grads]
            return grads, loss_value
        params = model.parameters()
        for p in params:
            p.grad = None
        loss = softmax_cross_entropy(model.forward(X), y)
        loss.backward()
        grads = [
            p.grad if p.grad is not None else np.zeros_like(p.data) for p in params
        ]
        return grads, loss.item()

    def fit(
        self,
        model: GraphNetwork,
        X_train: np.ndarray,
        y_train: np.ndarray,
        X_valid: np.ndarray,
        y_valid: np.ndarray,
        rng: np.random.Generator,
    ) -> TrainResult:
        """Run the paper's recipe under ``num_ranks``-way data parallelism."""
        n = self.num_ranks
        if X_train.shape[0] < n * self.batch_size:
            # Degenerate micro-batches still work (one short batch per shard),
            # but guard against sharding more ranks than samples.
            if X_train.shape[0] < n:
                raise ValueError(
                    f"cannot run {n} ranks on {X_train.shape[0]} training samples"
                )
        dtype = self.dtype or model.dtype
        X_train = np.ascontiguousarray(X_train, dtype=dtype)
        X_valid = np.ascontiguousarray(X_valid, dtype=dtype)
        plan = model.compile() if self.backend == "compiled" else None
        shards = shard_indices(X_train.shape[0], n, rng)
        steps = max(1, min(len(s) for s in shards) // self.batch_size)

        scaled_lr = (
            linear_scaled_lr(self.learning_rate, n)
            if self.apply_linear_scaling
            else self.learning_rate
        )
        optimizer = Adam(model.parameters(), lr=scaled_lr)
        warmup = GradualWarmup(optimizer, scaled_lr, self.warmup_epochs)
        plateau = ReduceLROnPlateau(optimizer, patience=self.plateau_patience)

        result = TrainResult(best_val_accuracy=-np.inf, final_val_accuracy=0.0)
        best_acc = -np.inf
        for epoch in range(self.epochs):
            warmup.on_epoch_begin(epoch)
            orders = [shard[rng.permutation(len(shard))] for shard in shards]
            epoch_loss = 0.0
            for step in range(steps):
                lo = step * self.batch_size
                hi = lo + self.batch_size
                if self.allreduce == "fused":
                    idx = np.concatenate([order[lo:hi] for order in orders])
                    grads, loss = self._rank_gradient(
                        model, X_train[idx], y_train[idx], plan, copy=False
                    )
                    mean_grads = grads
                else:
                    per_rank = []
                    losses = []
                    for order in orders:
                        idx = order[lo:hi]
                        g, loss_r = self._rank_gradient(
                            model, X_train[idx], y_train[idx], plan
                        )
                        per_rank.append(g)
                        losses.append(loss_r)
                    reduce_fn = ring_allreduce if self.allreduce == "ring" else allreduce_mean
                    mean_grads = reduce_fn(per_rank)
                    loss = float(np.mean(losses))
                optimizer.apply_gradients(mean_grads)
                epoch_loss += loss
            mean_loss = epoch_loss / steps
            if not np.isfinite(mean_loss):
                # Divergence guard: a too-hot scaled learning rate must
                # yield a penalized result, not a crashed worker.
                result.diverged = True
                result.epoch_train_losses.append(mean_loss)
                result.epoch_val_accuracies.append(0.0)
                self._emit_epoch(epoch, mean_loss, 0.0)
                break
            val_logits = (
                plan.predict_logits(X_valid) if plan is not None
                else model.predict_logits(X_valid)
            )
            val_acc = accuracy(val_logits, y_valid)
            result.epoch_val_accuracies.append(val_acc)
            result.epoch_train_losses.append(mean_loss)
            self._emit_epoch(epoch, mean_loss, val_acc)
            if val_acc > best_acc:
                best_acc = val_acc
                if self.keep_best_weights:
                    result.best_weights = model.get_weights()
            plateau.on_epoch_end(val_acc)

        result.best_val_accuracy = float(max(best_acc, 0.0))
        result.final_val_accuracy = result.epoch_val_accuracies[-1]
        return result
