"""Weight initializers for dense layers.

All initializers take an explicit :class:`numpy.random.Generator` so that
architecture evaluations are reproducible given a seed — a requirement for
deterministic search trajectories in the benchmark harness.
"""

from __future__ import annotations

import numpy as np

__all__ = ["glorot_uniform", "he_normal", "zeros_init"]


def glorot_uniform(fan_in: int, fan_out: int, rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform initialization, suited to tanh/sigmoid layers."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


def he_normal(fan_in: int, fan_out: int, rng: np.random.Generator) -> np.ndarray:
    """He normal initialization, suited to ReLU-family layers."""
    return rng.normal(0.0, np.sqrt(2.0 / fan_in), size=(fan_in, fan_out))


def zeros_init(*shape: int) -> np.ndarray:
    """Zero initialization (biases)."""
    return np.zeros(shape)
