"""Evaluator backends implementing the submit/gather interface.

Algorithm 1 interacts with the cluster only through two calls —
``submit_evaluation`` (non-blocking) and ``get_finished_evaluations`` —
mirroring DeepHyper/Balsam.  Both backends here expose exactly that:

- :class:`SimulatedEvaluator` advances a simulated clock to the next job
  completion; the *results* are computed by genuinely running the
  evaluation function at submit time, while the *completion time* comes
  from the ``duration`` the function reports (the training-cost model).
- :class:`ThreadedEvaluator` runs evaluation functions concurrently on a
  thread pool; ``gather`` blocks until at least one finishes.
- :class:`ProcessPoolEvaluator` runs evaluation functions on a process
  pool — true multi-core parallelism for GIL-bound (numpy-heavy) run
  functions, with worker-crash detection and real timeout cancellation
  (hung worker processes are terminated and the pool rebuilt).

All backends honor the same :class:`~repro.workflow.faults.FaultPolicy`
(retries with exponential backoff, per-job timeouts, penalized results)
and the same optional :class:`~repro.workflow.cache.EvaluationCache`
(duplicate configurations are served from memo without re-training).  The
simulated backend additionally models worker failures — a worker dies at
a scheduled time, its in-flight job is rescheduled on a surviving worker —
and is fully checkpointable via ``state_dict`` / ``load_state`` (cache
included) so a killed campaign resumes bit-identically.
"""

from __future__ import annotations

import collections
import copy
import dataclasses
import pickle
import threading
import time as _time
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from typing import Any, Callable, Iterable, Sequence

from repro.workflow.cache import EvaluationCache
from repro.workflow.events import EventQueue
from repro.workflow.faults import FaultPolicy
from repro.workflow.jobs import EvaluationResult, Job, JobState, job_from_dict, job_to_dict

__all__ = [
    "Evaluator",
    "SimulatedEvaluator",
    "ThreadedEvaluator",
    "ProcessPoolEvaluator",
]

RunFunction = Callable[[Any], EvaluationResult]


# --------------------------------------------------------------------- #
# Process-pool worker plumbing.  The run function is pickled once at
# construction and installed into each worker via the pool initializer, so
# large captured state (datasets, cost models) crosses the process
# boundary once per worker instead of once per job.
# --------------------------------------------------------------------- #
_WORKER_RUN_FUNCTION: RunFunction | None = None


def _process_worker_init(payload: bytes) -> None:
    global _WORKER_RUN_FUNCTION
    _WORKER_RUN_FUNCTION = pickle.loads(payload)


def _process_worker_call(config: Any) -> tuple[EvaluationResult, float]:
    """Run one evaluation in a worker; returns (result, elapsed minutes)."""
    assert _WORKER_RUN_FUNCTION is not None, "worker pool not initialized"
    t0 = _time.perf_counter()
    result = _WORKER_RUN_FUNCTION(config)
    return result, (_time.perf_counter() - t0) / 60.0


def _strip_event_bus(fn: Any) -> Any:
    """A shallow copy of a run-function chain with event buses detached.

    Campaign buses hold arbitrary subscribers (open JSONL files, stdout
    reporters) that cannot cross a process boundary; worker-side emissions
    could not reach the manager's bus anyway.  Wrappers exposing a
    ``run_function`` attribute (e.g. FaultInjector) are stripped through.
    """
    clone = fn
    if getattr(fn, "event_bus", None) is not None:
        clone = copy.copy(fn)
        clone.event_bus = None
    inner = getattr(clone, "run_function", None)
    if inner is not None:
        stripped = _strip_event_bus(inner)
        if stripped is not inner:
            if clone is fn:
                clone = copy.copy(fn)
            clone.run_function = stripped
    return clone


def _resolve_policy(
    fault_policy: FaultPolicy | None,
    on_error: str | None,
    failure_objective: float | None,
    failure_duration: float | None,
) -> FaultPolicy:
    """Merge the legacy keyword surface into a FaultPolicy."""
    policy = fault_policy or FaultPolicy()
    overrides: dict[str, Any] = {}
    if on_error is not None:
        overrides["on_error"] = on_error
    if failure_objective is not None:
        overrides["failure_objective"] = failure_objective
    if failure_duration is not None:
        overrides["failure_duration"] = failure_duration
    return dataclasses.replace(policy, **overrides) if overrides else policy


class Evaluator:
    """Abstract manager-worker evaluator.

    ``event_bus`` is an optional campaign event bus (attached by
    :func:`repro.campaign.build_campaign`); backends emit job lifecycle
    events (:class:`~repro.campaign.events.JobSubmitted`, ``JobGathered``,
    ``JobRetried``, ``WorkerDied``, ``CacheHit``, ``CacheStore``) through
    it when set.  ``cache`` is an optional
    :class:`~repro.workflow.cache.EvaluationCache` consulted at submit
    time and filled at completion time by every backend.
    """

    event_bus = None
    cache: EvaluationCache | None = None

    def _emit_submitted(self, job: Job) -> None:
        if self.event_bus is not None:
            from repro.campaign.events import JobSubmitted

            self.event_bus.emit(JobSubmitted(job_id=job.job_id, time=job.submit_time))

    def _emit_gathered(self, job: Job) -> None:
        if self.event_bus is not None:
            from repro.campaign.events import JobGathered

            self.event_bus.emit(
                JobGathered(
                    job_id=job.job_id,
                    time=self.now,
                    objective=job.result.objective,
                    duration=job.result.duration,
                    submit_time=job.submit_time,
                    start_time=job.start_time,
                    end_time=job.end_time,
                    worker=job.worker,
                    failed=job.state is JobState.FAILED,
                    retries=job.retries,
                )
            )

    def _emit_retried(self, job: Job) -> None:
        if self.event_bus is not None:
            from repro.campaign.events import JobRetried

            self.event_bus.emit(
                JobRetried(
                    job_id=job.job_id,
                    time=self.now,
                    retries=job.retries,
                    error=job.error,
                )
            )

    def _emit_cache_hit(self, job: Job) -> None:
        if self.event_bus is not None and self.cache is not None:
            from repro.campaign.events import CacheHit

            self.event_bus.emit(
                CacheHit(job_id=job.job_id, key=self.cache.key(job.config), time=self.now)
            )

    def _emit_cache_store(self, job: Job) -> None:
        if self.event_bus is not None and self.cache is not None:
            from repro.campaign.events import CacheStore

            self.event_bus.emit(
                CacheStore(job_id=job.job_id, key=self.cache.key(job.config), time=self.now)
            )

    def _cache_store(self, job: Job) -> None:
        """Memoize a successfully finished, freshly computed result."""
        if self.cache is None or job.cache_hit or job.result is None:
            return
        if self.cache.store(job.config, job.result):
            self._emit_cache_store(job)

    def submit(self, configs: Sequence[Any]) -> list[Job]:
        """Queue configurations for evaluation; returns the job records."""
        raise NotImplementedError

    def gather(self) -> list[Job]:
        """Return at least one finished job (empty only if none in flight)."""
        raise NotImplementedError

    @property
    def now(self) -> float:
        """Current time in minutes (simulated or wall-clock)."""
        raise NotImplementedError

    @property
    def num_in_flight(self) -> int:
        raise NotImplementedError

    # -- checkpointing (optional per backend) -------------------------- #
    def state_dict(self) -> dict[str, Any]:
        raise NotImplementedError(f"{type(self).__name__} does not support checkpointing")

    def load_state(self, state: dict[str, Any]) -> None:
        raise NotImplementedError(f"{type(self).__name__} does not support checkpointing")


class SimulatedEvaluator(Evaluator):
    """Event-driven simulation of a ``num_workers``-node cluster.

    Parameters
    ----------
    run_function:
        Called once per attempt (at start time); must return an
        :class:`EvaluationResult` whose ``duration`` is in simulated
        minutes.
    num_workers:
        W in the paper (128 on Theta; scaled down in the benches).
    fault_policy:
        Uniform failure handling (see :class:`FaultPolicy`).  The legacy
        ``on_error`` / ``failure_objective`` / ``failure_duration``
        keywords override the corresponding policy fields.
    worker_failures:
        Optional ``(time_minutes, worker_id)`` pairs: the worker dies
        permanently at that simulated time; a job running on it is
        rescheduled (front of the queue) on a surviving worker.
    cache:
        Optional :class:`~repro.workflow.cache.EvaluationCache`.  A hit
        skips the run-function call (no re-training) but *replays the
        memoized duration on the simulated clock* — the worker stays
        reserved until ``start + duration`` — so the campaign timeline
        (and the search history) is bit-identical with the cache on or
        off.  Hits are credited zero busy time, keeping ``utilization()``
        honest about compute that never happened.

    Notes
    -----
    Jobs submitted while all workers are busy wait in a FIFO queue and are
    started when a worker frees — their results are computed lazily at
    start so the run function observes correct ordering.  Worker busy time
    is tracked for the node-utilization analysis (§IV-C, ≈94%);
    ``utilization()`` is busy worker-minutes over *alive* worker-minutes,
    so dead workers stop counting against the denominator.
    """

    def __init__(
        self,
        run_function: RunFunction,
        num_workers: int,
        on_error: str | None = None,
        failure_objective: float | None = None,
        failure_duration: float | None = None,
        fault_policy: FaultPolicy | None = None,
        worker_failures: Iterable[tuple[float, int]] | None = None,
        cache: EvaluationCache | None = None,
    ) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.run_function = run_function
        self.num_workers = num_workers
        self.cache = cache
        self.fault_policy = _resolve_policy(
            fault_policy, on_error, failure_objective, failure_duration
        )
        self.num_failures = 0
        self.num_retries = 0
        self.num_timeouts = 0
        self.num_worker_failures = 0
        self._clock = 0.0
        self._events = EventQueue()  # payload: (kind, ref, attempt)
        self._free_workers = list(range(num_workers - 1, -1, -1))
        self._dead_workers: set[int] = set()
        self._running: dict[int, Job] = {}  # worker -> job
        self._waiting: collections.deque[Job] = collections.deque()
        self._next_id = 0
        self._in_flight = 0
        self._busy_time = 0.0
        self._capacity_time = 0.0  # integral of alive workers over time
        self.jobs: list[Job] = []
        for fail_time, worker in worker_failures or ():
            if not 0 <= worker < num_workers:
                raise ValueError(f"worker_failures names unknown worker {worker}")
            self._events.push(float(fail_time), ("worker_fail", worker, 0))

    # ------------------------------------------------------------------ #
    # Legacy accessors kept for the pre-FaultPolicy API
    @property
    def on_error(self) -> str:
        return self.fault_policy.on_error

    @property
    def failure_objective(self) -> float:
        return self.fault_policy.failure_objective

    @property
    def failure_duration(self) -> float:
        return self.fault_policy.failure_duration

    # ------------------------------------------------------------------ #
    @property
    def now(self) -> float:
        return self._clock

    @property
    def num_in_flight(self) -> int:
        return self._in_flight

    @property
    def num_free_workers(self) -> int:
        return len(self._free_workers)

    @property
    def num_alive_workers(self) -> int:
        return self.num_workers - len(self._dead_workers)

    def utilization(self) -> float:
        """Busy worker-minutes over available (alive) worker-minutes so far."""
        if self._capacity_time == 0.0:
            return 0.0
        return self._busy_time / self._capacity_time

    # ------------------------------------------------------------------ #
    def submit(self, configs: Sequence[Any]) -> list[Job]:
        out = []
        for config in configs:
            job = Job(job_id=self._next_id, config=config, submit_time=self._clock)
            self._next_id += 1
            self.jobs.append(job)
            self._in_flight += 1
            self._emit_submitted(job)
            if self._free_workers:
                self._start(job)
            else:
                self._waiting.append(job)
            out.append(job)
        return out

    def _start(self, job: Job) -> None:
        """Run one attempt of ``job`` on a free worker."""
        policy = self.fault_policy
        worker = self._free_workers.pop()
        job.worker = worker
        job.state = JobState.RUNNING
        job.start_time = self._clock
        job.attempt += 1
        self._running[worker] = job
        if self.cache is not None:
            cached = self.cache.lookup(job.config)
            if cached is not None:
                # Memoized duplicate: skip the run function entirely but
                # replay the memoized duration on the simulated clock so
                # the campaign timeline matches a cache-off run exactly.
                job.cache_hit = True
                job.result = cached
                job.end_time = self._clock + cached.duration
                self._events.push(job.end_time, ("finish", job, job.attempt))
                self._emit_cache_hit(job)
                return
        failure: str | None = None
        attempt_duration = policy.failure_duration
        result: EvaluationResult | None = None
        try:
            result = self.run_function(job.config)
        except Exception as exc:
            if policy.on_error == "raise":
                raise
            failure = repr(exc)
        else:
            if policy.timeout is not None and result.duration > policy.timeout:
                failure = f"timeout after {policy.timeout} min (duration {result.duration:.2f})"
                attempt_duration = policy.timeout
                self.num_timeouts += 1
            else:
                failure = policy.classify(result)
                if failure is not None:
                    attempt_duration = result.duration
                if failure is not None and policy.on_error == "raise":
                    raise RuntimeError(f"job {job.job_id}: {failure}")
        if failure is None:
            assert result is not None
            job.result = result
            job.end_time = self._clock + result.duration
            self._events.push(job.end_time, ("finish", job, job.attempt))
            self._cache_store(job)
            return
        # Failed attempt: the worker is occupied for the attempt duration.
        job.error = failure
        self.num_failures += 1
        if policy.should_retry(job.retries):
            self._events.push(self._clock + attempt_duration, ("fail", job, job.attempt))
        else:
            job.result = policy.failure_result(failure, attempt_duration)
            job.end_time = self._clock + attempt_duration
            self._events.push(job.end_time, ("finish", job, job.attempt))

    # ------------------------------------------------------------------ #
    def _advance(self, t: float) -> None:
        if t > self._clock:
            self._capacity_time += self.num_alive_workers * (t - self._clock)
            self._clock = t

    def _release_worker(self, worker: int) -> None:
        self._running.pop(worker, None)
        if worker not in self._dead_workers:
            self._free_workers.append(worker)

    def _fill_workers(self) -> None:
        while self._waiting and self._free_workers:
            self._start(self._waiting.popleft())

    def _on_worker_fail(self, worker: int) -> None:
        if worker in self._dead_workers:
            return
        self._dead_workers.add(worker)
        self.num_worker_failures += 1
        if self.event_bus is not None:
            from repro.campaign.events import WorkerDied

            self.event_bus.emit(WorkerDied(worker=worker, time=self._clock))
        if worker in self._free_workers:
            self._free_workers.remove(worker)
        job = self._running.pop(worker, None)
        if job is not None:
            # The in-flight job is rescheduled at the front of the queue;
            # bumping ``attempt`` invalidates its pending completion event.
            if not job.cache_hit:
                self._busy_time += self._clock - job.start_time
            job.attempt += 1
            job.worker = -1
            job.state = JobState.PENDING
            self._waiting.appendleft(job)

    def gather(self) -> list[Job]:
        """Advance the clock until at least one job finishes; return them."""
        while self._events:
            next_time = self._events.peek_time()
            finished: list[Job] = []
            for end_time, (kind, ref, attempt) in self._events.drain_until(next_time):
                self._advance(end_time)
                if kind == "worker_fail":
                    self._on_worker_fail(ref)
                    continue
                job = ref
                if job.attempt != attempt:
                    continue  # stale event from a dead worker's attempt
                if kind == "finish":
                    job.state = (
                        JobState.FAILED if job.result.metadata.get("failed") else JobState.DONE
                    )
                    if not job.cache_hit:
                        # Cache hits reserved the worker for the memoized
                        # duration but computed nothing: zero busy credit.
                        self._busy_time += end_time - job.start_time
                    self._release_worker(job.worker)
                    self._in_flight -= 1
                    finished.append(job)
                elif kind == "fail":
                    self._busy_time += end_time - job.start_time
                    self._release_worker(job.worker)
                    job.retries += 1
                    self.num_retries += 1
                    job.state = JobState.RETRYING
                    job.worker = -1
                    self._emit_retried(job)
                    delay = self.fault_policy.backoff_minutes(job.retries)
                    if delay > 0:
                        self._events.push(self._clock + delay, ("retry", job, job.attempt))
                    else:
                        self._waiting.append(job)
                elif kind == "retry":
                    self._waiting.append(job)
            # Start queued jobs on the workers that just freed.
            self._fill_workers()
            if finished:
                for job in finished:
                    self._emit_gathered(job)
                return finished
        if self._in_flight:
            raise RuntimeError(
                f"evaluator deadlocked: {self._in_flight} job(s) in flight but all "
                f"{self.num_workers} workers are dead"
            )
        return []

    # ------------------------------------------------------------------ #
    # Checkpointing
    # ------------------------------------------------------------------ #
    def state_dict(self) -> dict[str, Any]:
        """JSON-safe snapshot of the full cluster state (jobs, queue, clock)."""
        entries = self._events.entries()

        def encode_ref(kind: str, ref: Any) -> Any:
            return ref if kind == "worker_fail" else ref.job_id

        state = {
            "num_workers": self.num_workers,
            "clock": self._clock,
            "busy_time": self._busy_time,
            "capacity_time": self._capacity_time,
            "next_id": self._next_id,
            "in_flight": self._in_flight,
            "num_failures": self.num_failures,
            "num_retries": self.num_retries,
            "num_timeouts": self.num_timeouts,
            "num_worker_failures": self.num_worker_failures,
            "free_workers": list(self._free_workers),
            "dead_workers": sorted(self._dead_workers),
            "running": {str(w): job.job_id for w, job in self._running.items()},
            "waiting": [job.job_id for job in self._waiting],
            "events": [
                [t, c, kind, encode_ref(kind, ref), attempt]
                for t, c, (kind, ref, attempt) in entries
            ],
            "event_counter": max((c for _, c, _ in entries), default=-1) + 1,
            "jobs": [job_to_dict(job) for job in self.jobs],
            "policy": dataclasses.asdict(self.fault_policy),
            "cache": self.cache.state_dict() if self.cache is not None else None,
        }
        if hasattr(self.run_function, "getstate"):
            state["run_function_state"] = self.run_function.getstate()
        return state

    def load_state(self, state: dict[str, Any]) -> None:
        """Restore a snapshot taken by :meth:`state_dict`."""
        if state["num_workers"] != self.num_workers:
            raise ValueError(
                f"checkpoint has {state['num_workers']} workers, evaluator has "
                f"{self.num_workers}"
            )
        self.fault_policy = FaultPolicy(**state["policy"])
        self._clock = float(state["clock"])
        self._busy_time = float(state["busy_time"])
        self._capacity_time = float(state["capacity_time"])
        self._next_id = int(state["next_id"])
        self._in_flight = int(state["in_flight"])
        self.num_failures = int(state["num_failures"])
        self.num_retries = int(state["num_retries"])
        self.num_timeouts = int(state["num_timeouts"])
        self.num_worker_failures = int(state["num_worker_failures"])
        self._free_workers = [int(w) for w in state["free_workers"]]
        self._dead_workers = {int(w) for w in state["dead_workers"]}
        self.jobs = [job_from_dict(row) for row in state["jobs"]]
        by_id = {job.job_id: job for job in self.jobs}
        self._running = {int(w): by_id[jid] for w, jid in state["running"].items()}
        self._waiting = collections.deque(by_id[jid] for jid in state["waiting"])
        self._events.restore(
            [
                (t, c, (kind, ref if kind == "worker_fail" else by_id[ref], attempt))
                for t, c, kind, ref, attempt in state["events"]
            ],
            int(state["event_counter"]),
        )
        cache_state = state.get("cache")
        if cache_state is not None:
            # A checkpoint written with caching on restores the cache even
            # when this evaluator was constructed without one, so resumed
            # campaigns keep their memo (and their hit counters).
            if self.cache is None:
                self.cache = EvaluationCache()
            self.cache.load_state(cache_state)
        if "run_function_state" in state and hasattr(self.run_function, "setstate"):
            self.run_function.setstate(state["run_function_state"])


class _WallClockEvaluator(Evaluator):
    """Shared machinery for the wall-clock (thread / process) backends.

    Time is wall-clock minutes since construction.  Subclasses provide
    ``_dispatch`` (queue one attempt on their pool), ``gather`` and
    ``shutdown``; everything else — submit bookkeeping, the cache-hit
    short-circuit, failure routing and the deadline scan — is common.
    """

    def __init__(
        self,
        run_function: RunFunction,
        num_workers: int,
        measure_wall_time: bool = False,
        on_error: str | None = None,
        failure_objective: float | None = None,
        failure_duration: float | None = None,
        fault_policy: FaultPolicy | None = None,
        cache: EvaluationCache | None = None,
    ) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.run_function = run_function
        self.num_workers = num_workers
        self.measure_wall_time = measure_wall_time
        self.cache = cache
        self.fault_policy = _resolve_policy(
            fault_policy, on_error, failure_objective, failure_duration
        )
        self.num_failures = 0
        self.num_retries = 0
        self.num_timeouts = 0
        self._t0 = _time.perf_counter()
        self._futures: dict[Future, Job] = {}
        self._completed: collections.deque[Job] = collections.deque()
        self._busy_time = 0.0
        self._lock = threading.Lock()
        self._next_id = 0
        self.jobs: list[Job] = []

    # ------------------------------------------------------------------ #
    @property
    def on_error(self) -> str:
        return self.fault_policy.on_error

    @property
    def failure_objective(self) -> float:
        return self.fault_policy.failure_objective

    @property
    def failure_duration(self) -> float:
        return self.fault_policy.failure_duration

    @property
    def now(self) -> float:
        return (_time.perf_counter() - self._t0) / 60.0

    @property
    def num_in_flight(self) -> int:
        with self._lock:
            return len(self._futures) + len(self._completed)

    def utilization(self) -> float:
        """Measured busy worker-minutes over elapsed worker-minutes."""
        elapsed = self.now
        if elapsed == 0.0:
            return 0.0
        return self._busy_time / (self.num_workers * elapsed)

    # ------------------------------------------------------------------ #
    def submit(self, configs: Sequence[Any]) -> list[Job]:
        out = []
        for config in configs:
            with self._lock:
                job = Job(job_id=self._next_id, config=config, submit_time=self.now)
                self._next_id += 1
                self.jobs.append(job)
            self._emit_submitted(job)
            if not self._submit_cache_hit(job):
                self._dispatch(job)
            out.append(job)
        return out

    def _submit_cache_hit(self, job: Job) -> bool:
        """Serve a duplicate from the cache: finalized at submit time with
        the memoized result, zero busy credit, delivered by next gather."""
        if self.cache is None:
            return False
        cached = self.cache.lookup(job.config)
        if cached is None:
            return False
        job.cache_hit = True
        job.result = cached
        job.start_time = job.end_time = self.now
        job.state = JobState.DONE
        with self._lock:
            self._completed.append(job)
        self._emit_cache_hit(job)
        return True

    def _dispatch(self, job: Job) -> None:
        raise NotImplementedError

    def _finalize(self, job: Job, state: JobState) -> None:
        # Busy time is credited per attempt as attempts end, not here.
        job.end_time = self.now
        job.state = state

    def _handle_failure(self, job: Job, error: str, finished: list[Job]) -> None:
        """Penalize or retry one failed attempt (policy is not 'raise')."""
        policy = self.fault_policy
        job.error = error
        self.num_failures += 1
        if policy.should_retry(job.retries):
            job.retries += 1
            self.num_retries += 1
            job.state = JobState.RETRYING
            self._emit_retried(job)
            self._dispatch(job)
        else:
            job.result = policy.failure_result(error)
            self._finalize(job, JobState.FAILED)
            finished.append(job)

    def _wait_timeout(self, pending_jobs: Iterable[Job]) -> float | None:
        """Seconds to block in ``wait`` before the earliest policy deadline.

        Jobs that are dispatched but not yet started (``RETRYING`` retries
        queued behind busy workers, fresh ``PENDING`` dispatches) carry a
        stale or zero ``start_time``; their deadline cannot be earlier than
        ``now + timeout``, so that bound keeps the wait finite — a retry
        that starts and then hangs is re-examined (and reaped) instead of
        blocking gather forever on a wait with no timeout.
        """
        policy = self.fault_policy
        if policy.timeout is None:
            return None
        now = self.now
        deadlines = [
            (job.start_time if job.state is JobState.RUNNING else now) + policy.timeout
            for job in pending_jobs
        ]
        if not deadlines:
            return None
        return max(0.0, (min(deadlines) - now) * 60.0) + 1e-3

    def shutdown(self) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Alias for :meth:`shutdown` (context-manager parity)."""
        self.shutdown()

    def __enter__(self):
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class ThreadedEvaluator(_WallClockEvaluator):
    """Real concurrent evaluation on a thread pool.

    Time is wall-clock minutes since construction.  The reported job
    duration is the run function's declared duration unless
    ``measure_wall_time=True``, in which case the measured elapsed time
    (in minutes) replaces it.

    The :class:`FaultPolicy` surface matches :class:`SimulatedEvaluator`
    (API parity): exceptions and invalid objectives are raised, penalized
    or retried; ``timeout`` (wall-clock minutes) abandons stragglers — the
    worker thread keeps running but the job is finalized with a penalized
    result so the campaign never blocks on a hung evaluation.  Retries are
    resubmitted immediately (exponential backoff is a simulated-minutes
    concept; sleeping real minutes would stall the pool).

    Worker busy time is accumulated *per attempt* as each attempt's thread
    returns (a retried job credits every attempt, not just the last), and
    an optional ``cache`` serves duplicate configurations at submit time:
    a hit is finalized instantly with the memoized result, zero busy-time
    credit, and no dispatch.
    """

    def __init__(
        self,
        run_function: RunFunction,
        num_workers: int,
        measure_wall_time: bool = False,
        on_error: str | None = None,
        failure_objective: float | None = None,
        failure_duration: float | None = None,
        fault_policy: FaultPolicy | None = None,
        cache: EvaluationCache | None = None,
    ) -> None:
        super().__init__(
            run_function,
            num_workers,
            measure_wall_time=measure_wall_time,
            on_error=on_error,
            failure_objective=failure_objective,
            failure_duration=failure_duration,
            fault_policy=fault_policy,
            cache=cache,
        )
        self._pool = ThreadPoolExecutor(max_workers=num_workers)

    # ------------------------------------------------------------------ #
    def _dispatch(self, job: Job) -> None:
        future = self._pool.submit(self._run, job)
        with self._lock:
            self._futures[future] = job

    def _run(self, job: Job) -> None:
        with self._lock:
            job.state = JobState.RUNNING
            job.start_time = self.now
            job.attempt += 1
            my_attempt = job.attempt
        t0 = _time.perf_counter()
        try:
            result = self.run_function(job.config)
        finally:
            # Per-attempt busy accounting: every attempt that actually ran
            # (including failed ones about to raise, and abandoned attempts
            # whose thread eventually returns) credits its own elapsed
            # time, so utilization reflects all work performed.
            elapsed_min = (_time.perf_counter() - t0) / 60.0
            with self._lock:
                self._busy_time += elapsed_min
        if self.measure_wall_time:
            result = EvaluationResult(result.objective, elapsed_min, result.metadata)
        with self._lock:
            # An abandoned (timed-out) attempt must not clobber its retry.
            if job.attempt == my_attempt:
                job.result = result

    def gather(self) -> list[Job]:
        """Block until at least one job finishes; return all finished jobs.

        Jobs already buffered in ``_completed`` — siblings collected before
        a prior ``on_error="raise"`` exception, or cache hits finalized at
        submit — are returned immediately, never blocking on unrelated
        pending futures.
        """
        policy = self.fault_policy
        while True:
            with self._lock:
                finished = list(self._completed)
                self._completed.clear()
                pending = dict(self._futures)
            if finished:
                for job in finished:
                    self._emit_gathered(job)
                return finished
            if not pending:
                return []
            done, _ = wait(
                pending.keys(),
                timeout=self._wait_timeout(pending.values()),
                return_when=FIRST_COMPLETED,
            )
            first_error: BaseException | None = None
            for future in done:
                with self._lock:
                    job = self._futures.pop(future, None)
                if job is None:
                    continue  # already abandoned by a timeout
                exc = future.exception()
                if exc is None:
                    error = policy.classify(job.result)
                    if error is None:
                        self._finalize(job, JobState.DONE)
                        self._cache_store(job)
                        finished.append(job)
                        continue
                    exc = RuntimeError(f"job {job.job_id}: {error}")
                if policy.on_error == "raise":
                    job.error = repr(exc)
                    self._finalize(job, JobState.FAILED)
                    first_error = first_error or exc
                else:
                    self._handle_failure(job, repr(exc), finished)
            # Reap stragglers past the policy deadline (threads cannot be
            # killed; the job is finalized and the thread abandoned).
            if policy.timeout is not None:
                now = self.now
                for future, job in pending.items():
                    if future in done or job.state is not JobState.RUNNING:
                        continue
                    if now >= job.start_time + policy.timeout:
                        with self._lock:
                            self._futures.pop(future, None)
                            self.num_timeouts += 1
                        future.cancel()
                        error = f"timeout after {policy.timeout} min"
                        if policy.on_error == "raise":
                            self._finalize(job, JobState.FAILED)
                            job.error = error
                            first_error = first_error or TimeoutError(
                                f"job {job.job_id}: {error}"
                            )
                        else:
                            self._handle_failure(job, error, finished)
            if first_error is not None:
                with self._lock:
                    self._completed.extend(finished)
                raise first_error
            if finished:
                for job in finished:
                    self._emit_gathered(job)
                return finished

    def shutdown(self) -> None:
        self._pool.shutdown(wait=True)


class ProcessPoolEvaluator(_WallClockEvaluator):
    """True multi-core evaluation on a :class:`ProcessPoolExecutor`.

    The run function must be picklable (a module-level callable or a
    picklable object); it is pickled **once at construction** — failing
    fast with a clear error — and installed into each worker by the pool
    initializer, so heavy captured state crosses the process boundary once
    per worker instead of once per job.  Attached campaign event buses are
    stripped from the pickled copy (worker-side emissions could not reach
    the manager's bus); all lifecycle events are emitted by the manager.

    Semantics beyond :class:`ThreadedEvaluator` parity:

    - a job is marked ``RUNNING`` when its attempt is *dispatched* (the
      manager cannot observe the exact moment a worker picks it up), so
      the policy ``timeout`` covers queue delay + execution;
    - worker crashes (abnormal exit, killed process) surface as
      :class:`concurrent.futures.BrokenExecutor`; the pool is rebuilt
      *before* any failure routing, and every attempt in flight at the
      moment of the break is routed through the :class:`FaultPolicy` as a
      failed attempt (the executor cannot attribute the crash to a single
      job).  ``num_worker_crashes`` counts the affected attempts,
      ``num_pool_rebuilds`` the rebuilds;
    - timeouts are *real cancellations*: a hung attempt that cannot be
      cancelled from the queue gets the worker processes terminated and
      the pool rebuilt, reclaiming the slot (threads can only abandon).
      Innocent in-flight jobs caught in the kill are re-dispatched on the
      fresh pool without being charged a retry.

    Busy time is credited per attempt: successful attempts report their
    measured in-worker wall time; crashed/timed-out/failed attempts are
    credited manager-observed wall time since dispatch.
    """

    def __init__(
        self,
        run_function: RunFunction,
        num_workers: int,
        measure_wall_time: bool = False,
        on_error: str | None = None,
        failure_objective: float | None = None,
        failure_duration: float | None = None,
        fault_policy: FaultPolicy | None = None,
        cache: EvaluationCache | None = None,
    ) -> None:
        super().__init__(
            run_function,
            num_workers,
            measure_wall_time=measure_wall_time,
            on_error=on_error,
            failure_objective=failure_objective,
            failure_duration=failure_duration,
            fault_policy=fault_policy,
            cache=cache,
        )
        self.num_worker_crashes = 0
        self.num_pool_rebuilds = 0
        try:
            self._payload = pickle.dumps(_strip_event_bus(run_function))
        except Exception as exc:
            raise TypeError(
                "ProcessPoolEvaluator requires a picklable run function "
                "(module-level callable or picklable object); "
                f"pickling failed with: {exc!r}"
            ) from exc
        self._pool = self._make_pool()

    def _make_pool(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=self.num_workers,
            initializer=_process_worker_init,
            initargs=(self._payload,),
        )

    # ------------------------------------------------------------------ #
    def _dispatch(self, job: Job) -> None:
        with self._lock:
            job.state = JobState.RUNNING
            job.start_time = self.now
            job.attempt += 1
            future = self._pool.submit(_process_worker_call, job.config)
            self._futures[future] = job

    def _credit_attempt(self, minutes: float) -> None:
        with self._lock:
            self._busy_time += minutes

    def _rebuild_pool(self) -> list[Job]:
        """Terminate every worker process and build a fresh pool.

        Returns the innocent in-flight jobs (futures still tracked when the
        pool went down) that must be re-dispatched on the new pool.  Their
        partial attempts credit wall time since dispatch, but they are not
        charged a retry — the fault was not theirs.
        """
        with self._lock:
            victims = dict(self._futures)
            self._futures.clear()
        for proc in list(getattr(self._pool, "_processes", {}).values()):
            proc.terminate()
        self._pool.shutdown(wait=False, cancel_futures=True)
        self._pool = self._make_pool()
        self.num_pool_rebuilds += 1
        now = self.now
        for job in victims.values():
            self._credit_attempt(max(0.0, now - job.start_time))
        return list(victims.values())

    def gather(self) -> list[Job]:
        """Block until at least one job finishes; return all finished jobs.

        Outcomes are collected *before* any failure routing so that retries
        triggered by a crash are dispatched to the rebuilt pool, never to
        the broken one.
        """
        policy = self.fault_policy
        while True:
            with self._lock:
                finished = list(self._completed)
                self._completed.clear()
                pending = dict(self._futures)
            if finished:
                for job in finished:
                    self._emit_gathered(job)
                return finished
            if not pending:
                return []
            done, _ = wait(
                pending.keys(),
                timeout=self._wait_timeout(pending.values()),
                return_when=FIRST_COMPLETED,
            )
            # Phase 1: collect outcomes without touching the pool.
            outcomes: list[tuple[Job, BaseException | None, Any]] = []
            pool_broken = False
            for future in done:
                with self._lock:
                    job = self._futures.pop(future, None)
                if job is None:
                    continue  # already reaped by a timeout kill
                exc = future.exception()
                if exc is None:
                    outcomes.append((job, None, future.result()))
                else:
                    if isinstance(exc, BrokenExecutor):
                        pool_broken = True
                    outcomes.append((job, exc, None))
            # Phase 2: reap attempts past the policy deadline.  Attempts
            # still queued are cancelled in place; attempts already running
            # in a worker force a pool kill (the only real cancellation).
            overdue: list[Job] = []
            must_kill = False
            if policy.timeout is not None:
                now = self.now
                for future, job in pending.items():
                    if future in done or job.state is not JobState.RUNNING:
                        continue
                    if now >= job.start_time + policy.timeout:
                        with self._lock:
                            self._futures.pop(future, None)
                            self.num_timeouts += 1
                        if not future.cancel():
                            must_kill = True
                        self._credit_attempt(max(0.0, now - job.start_time))
                        overdue.append(job)
            # Phase 3: rebuild the pool if it is broken or holds hung
            # workers, re-dispatching the innocent in-flight jobs.
            if pool_broken or must_kill:
                for job in self._rebuild_pool():
                    self._dispatch(job)
            # Phase 4: route outcomes through the policy (pool is healthy).
            first_error: BaseException | None = None
            for job, exc, payload in outcomes:
                if exc is None:
                    result, elapsed_min = payload
                    self._credit_attempt(elapsed_min)
                    if self.measure_wall_time:
                        result = EvaluationResult(
                            result.objective, elapsed_min, result.metadata
                        )
                    job.result = result
                    error = policy.classify(result)
                    if error is None:
                        self._finalize(job, JobState.DONE)
                        self._cache_store(job)
                        finished.append(job)
                        continue
                    exc = RuntimeError(f"job {job.job_id}: {error}")
                else:
                    if isinstance(exc, BrokenExecutor):
                        self.num_worker_crashes += 1
                        exc = RuntimeError(
                            f"job {job.job_id}: worker process crashed ({exc!r})"
                        )
                    self._credit_attempt(max(0.0, self.now - job.start_time))
                if policy.on_error == "raise":
                    job.error = repr(exc)
                    self._finalize(job, JobState.FAILED)
                    first_error = first_error or exc
                else:
                    self._handle_failure(job, repr(exc), finished)
            for job in overdue:
                error = f"timeout after {policy.timeout} min"
                if policy.on_error == "raise":
                    self._finalize(job, JobState.FAILED)
                    job.error = error
                    first_error = first_error or TimeoutError(f"job {job.job_id}: {error}")
                else:
                    self._handle_failure(job, error, finished)
            if first_error is not None:
                with self._lock:
                    self._completed.extend(finished)
                raise first_error
            if finished:
                for job in finished:
                    self._emit_gathered(job)
                return finished

    def shutdown(self) -> None:
        self._pool.shutdown(wait=True, cancel_futures=True)
