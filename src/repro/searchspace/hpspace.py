"""Hyperparameter space for data-parallel training (paper §II, §IV).

The paper tunes three hyperparameters: per-rank batch size
``bs1 ∈ {32, 64, 128, 256, 512, 1024}``, base learning rate
``lr1 ∈ (0.001, 0.1)`` sampled log-uniformly, and the number of parallel
ranks ``n ∈ {1, 2, 4, 8}``.  The AgEBO ablation variants fix a subset of
these; a fixed dimension is simply omitted from the space and supplied as a
constant in the configuration defaults.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from repro.searchspace.dimensions import Categorical, Dimension, Real

__all__ = ["HyperparameterSpace", "default_dataparallel_space"]


class HyperparameterSpace:
    """Ordered collection of named dimensions with fixed defaults.

    Parameters
    ----------
    dimensions:
        Mapping from hyperparameter name to a :class:`Dimension`; these are
        the *tuned* hyperparameters.
    defaults:
        Values for hyperparameters that are *not* tuned in this variant
        (e.g. ``n = 8`` in AgEBO-8-LR-BS).  A full configuration always
        contains both tuned and default keys.
    """

    def __init__(
        self,
        dimensions: Mapping[str, Dimension],
        defaults: Mapping[str, Any] | None = None,
    ) -> None:
        self.dimensions: dict[str, Dimension] = dict(dimensions)
        self.defaults: dict[str, Any] = dict(defaults or {})
        overlap = set(self.dimensions) & set(self.defaults)
        if overlap:
            raise ValueError(f"hyperparameters both tuned and fixed: {sorted(overlap)}")
        for name, dim in self.dimensions.items():
            dim.name = dim.name or name

    # ------------------------------------------------------------------ #
    @property
    def names(self) -> list[str]:
        """Tuned hyperparameter names, in definition order."""
        return list(self.dimensions)

    @property
    def num_dimensions(self) -> int:
        return len(self.dimensions)

    def sample(self, rng: np.random.Generator) -> dict[str, Any]:
        """Sample a full configuration (tuned values + defaults)."""
        config = {name: dim.sample(rng) for name, dim in self.dimensions.items()}
        config.update(self.defaults)
        return config

    def validate(self, config: Mapping[str, Any]) -> None:
        """Raise ``ValueError`` unless ``config`` covers the space validly."""
        for name, dim in self.dimensions.items():
            if name not in config:
                raise ValueError(f"missing hyperparameter {name!r}")
            if not dim.contains(config[name]):
                raise ValueError(f"value {config[name]!r} invalid for {name!r}")
        for name, value in self.defaults.items():
            if name in config and config[name] != value:
                raise ValueError(
                    f"fixed hyperparameter {name!r} must equal {value!r}, got {config[name]!r}"
                )

    # ------------------------------------------------------------------ #
    # Surrogate encoding
    # ------------------------------------------------------------------ #
    def to_array(self, config: Mapping[str, Any]) -> np.ndarray:
        """Numeric coordinates of the *tuned* hyperparameters."""
        return np.array(
            [dim.to_numeric(config[name]) for name, dim in self.dimensions.items()]
        )

    def from_array(self, x: np.ndarray) -> dict[str, Any]:
        """Inverse of :meth:`to_array`, re-attaching defaults."""
        x = np.asarray(x, dtype=float)
        if x.shape != (self.num_dimensions,):
            raise ValueError(f"expected array of shape ({self.num_dimensions},), got {x.shape}")
        config = {
            name: dim.from_numeric(float(v))
            for (name, dim), v in zip(self.dimensions.items(), x)
        }
        config.update(self.defaults)
        return config

    def sample_array(self, rng: np.random.Generator) -> np.ndarray:
        """Sample directly in numeric coordinates (for candidate pools)."""
        return self.to_array(self.sample(rng))

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"HyperparameterSpace(tuned={self.names}, fixed={sorted(self.defaults)})"
        )


def default_dataparallel_space(
    tune_batch_size: bool = True,
    tune_learning_rate: bool = True,
    tune_num_ranks: bool = True,
    default_batch_size: int = 256,
    default_learning_rate: float = 0.01,
    default_num_ranks: int = 1,
    max_ranks: int = 8,
) -> HyperparameterSpace:
    """Build the paper's H_m, or an ablation variant with some dims fixed.

    - full AgEBO: all three tuned;
    - AgEBO-8-LR-BS: ``tune_num_ranks=False, default_num_ranks=8``;
    - AgEBO-8-LR: additionally ``tune_batch_size=False``;
    - AgE-n: all False (pure defaults).
    """
    rank_choices = [r for r in (1, 2, 4, 8, 16, 32) if r <= max_ranks]
    dims: dict[str, Dimension] = {}
    defaults: dict[str, Any] = {}
    if tune_batch_size:
        dims["batch_size"] = Categorical([32, 64, 128, 256, 512, 1024], name="batch_size")
    else:
        defaults["batch_size"] = default_batch_size
    if tune_learning_rate:
        dims["learning_rate"] = Real(0.001, 0.1, prior="log-uniform", name="learning_rate")
    else:
        defaults["learning_rate"] = default_learning_rate
    if tune_num_ranks:
        dims["num_ranks"] = Categorical(rank_choices, name="num_ranks")
    else:
        defaults["num_ranks"] = default_num_ranks
    return HyperparameterSpace(dims, defaults)
