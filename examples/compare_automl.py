#!/usr/bin/env python
"""Head-to-head AutoML comparison (the paper's Table II scenario).

Runs three AutoML systems on the Airlines-analogue benchmark:

  - AgEBO (this repo's contribution): one searched network;
  - AutoGluon-like: stacked weighted ensemble of 7+ tuned learners;
  - Auto-PyTorch-like: successive-halving HPO over funnel MLPs;

then reports test accuracy and *measured* inference wall-clock, reproducing
the accuracy-parity / inference-gap tradeoff.

Usage:
    python examples/compare_automl.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.baselines import AutoGluonLike, AutoPyTorchLike
from repro.core import ModelEvaluation, make_agebo_variant
from repro.datasets import load_dataset
from repro.searchspace import ArchitectureSpace
from repro.workflow import SimulatedEvaluator


def run_agebo(ds):
    space = ArchitectureSpace(num_nodes=4)
    evaluation = ModelEvaluation(ds, space, epochs=5, nominal_epochs=20,
                                 keep_best_weights=True)
    evaluator = SimulatedEvaluator(evaluation, num_workers=8)
    search = make_agebo_variant(
        "AgEBO", space, evaluator, population_size=10, sample_size=3, seed=0
    )
    history = search.search(max_evaluations=50)
    best = history.best()
    # Retrain the winner (longer) and load its best-epoch weights.
    final_eval = ModelEvaluation(ds, space, epochs=10, keep_best_weights=True)
    result = final_eval(best.config)
    model = final_eval.build_model(best.config, np.random.default_rng(0))
    model.set_weights(result.metadata["best_weights"])
    t0 = time.perf_counter()
    preds = model.predict(ds.X_test)
    inference = time.perf_counter() - t0
    return float((preds == ds.y_test).mean()), inference, len(history)


def main() -> None:
    ds = load_dataset("covertype", size=5000)
    print(ds.summary(), "\n")

    agebo_acc, agebo_inf, n_evals = run_agebo(ds)
    print(f"AgEBO: searched {n_evals} architectures")

    ag = AutoGluonLike(preset="best_quality", seed=0).fit(ds)
    ag_report = ag.evaluate(ds)

    ap = AutoPyTorchLike(n_candidates=8, min_epochs=2, max_epochs=10, seed=0).fit(ds)

    print(f"\n{'system':<18} | {'test accuracy':>13} | {'inference':>12}")
    print("-" * 50)
    print(f"{'AgEBO (1 model)':<18} | {agebo_acc:>13.4f} | {agebo_inf * 1e3:>9.1f} ms")
    print(
        f"{'AutoGluon-like':<18} | {ag_report.test_accuracy:>13.4f} | "
        f"{ag_report.inference_seconds * 1e3:>9.1f} ms"
    )
    print(f"{'Auto-PyTorch-like':<18} | {ap.best_val_accuracy_:>13.4f} | {'(val acc)':>12}")
    ratio = ag_report.inference_seconds / max(agebo_inf, 1e-9)
    print(f"\nensemble inference is {ratio:.0f}x slower than the single searched "
          f"network at comparable accuracy — the paper's Table II tradeoff.")


if __name__ == "__main__":
    main()
