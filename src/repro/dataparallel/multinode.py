"""Multi-node data-parallel cost model (paper future-work item 2).

The paper limits data-parallel training to a single node ("Since the data
set that we consider fits in a single-node memory ...") and names
multi-node data-parallel training within NAS as future work.  This module
extends the single-node cost model to a two-level topology: ``n`` total
ranks spread over ``ceil(n / ranks_per_node)`` nodes, with a hierarchical
allreduce — intra-node ring over the fast local channel, then inter-node
ring over the (slower) network — as Horovod's hierarchical allreduce does.

The model exposes the effect the paper anticipates: scaling past one node
adds a network term to every optimizer step, so the accuracy-neutral
parallelism limit found by BO shifts with the interconnect.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dataparallel.allreduce import ring_transfer_stats
from repro.dataparallel.costmodel import TrainingCostModel, _BYTES_PER_PARAM

__all__ = ["MultiNodeCostModel"]


@dataclass(frozen=True)
class MultiNodeCostModel(TrainingCostModel):
    """Two-level (intra-node + inter-node) training-time model.

    Parameters
    ----------
    ranks_per_node:
        Processes per node; rank counts above this spill to more nodes.
    network_bandwidth_Bps, network_latency_s:
        The inter-node channel (defaults model a 100 Gb/s fabric with
        microsecond-scale latency, i.e. a Cray Aries-class network).
    """

    ranks_per_node: int = 8
    network_bandwidth_Bps: float = 12.5e9  # 100 Gb/s
    network_latency_s: float = 1.5e-6

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.ranks_per_node < 1:
            raise ValueError("ranks_per_node must be >= 1")
        if self.network_bandwidth_Bps <= 0:
            raise ValueError("network_bandwidth_Bps must be positive")

    def num_nodes(self, num_ranks: int) -> int:
        return -(-num_ranks // self.ranks_per_node)  # ceil division

    def allreduce_seconds(self, num_params: int, num_ranks: int) -> float:
        """Hierarchical allreduce: local ring, then ring across nodes."""
        if num_ranks == 1:
            return 0.0
        nodes = self.num_nodes(num_ranks)
        local_ranks = min(num_ranks, self.ranks_per_node)
        payload = num_params * _BYTES_PER_PARAM
        total = 0.0
        if local_ranks > 1:
            local = ring_transfer_stats(local_ranks, payload)
            total += (
                local.message_steps * self.link_latency_s
                + local.bytes_sent_per_rank / self.link_bandwidth_Bps
            )
        if nodes > 1:
            remote = ring_transfer_stats(nodes, payload)
            total += (
                remote.message_steps * self.network_latency_s
                + remote.bytes_sent_per_rank / self.network_bandwidth_Bps
            )
        return total

    def batch_compute_seconds(self, num_params: int, batch_size: int, num_ranks: int) -> float:
        """Per-rank compute: threads contend only within a node."""
        flops = 2.0 * num_params * batch_size * 3.0
        local_ranks = min(num_ranks, self.ranks_per_node)
        threads = max(1, self.threads_per_node // local_ranks)
        throughput = self.throughput_flops * threads**self.thread_scaling_exponent
        return flops / throughput + self.step_overhead_s
