"""Ablation (beyond the paper): constant-liar lie value.

The liar only acts when the optimizer must emit a *batch* of points before
any of them is evaluated (inside AgEBO that happens whenever several
workers finish together; at bench scale completions arrive singly, so the
component is isolated here with explicit ``ask(8)`` batches).  The paper
uses the mean of observed accuracies as the lie; we compare mean / min /
max on a known hyperparameter landscape and report batch diversity and
convergence.
"""

from __future__ import annotations

import numpy as np

from common import format_table, report
from repro.bo import BayesianOptimizer
from repro.bo.liar import LIE_STRATEGIES
from repro.searchspace import default_dataparallel_space

BATCH = 8
ROUNDS = 8


def landscape(config) -> float:
    """Smooth objective peaked at lr=3e-3, bs=128, n=2 (+ mild noise-free)."""
    lr_term = -((np.log10(config["learning_rate"]) + 2.52) ** 2)
    bs_term = -0.02 * abs(np.log2(config["batch_size"]) - 7)
    n_term = -0.05 * abs(np.log2(config["num_ranks"]) - 1)
    return float(lr_term + bs_term + n_term)


def run_experiment():
    out = {}
    for strategy in LIE_STRATEGIES:
        space = default_dataparallel_space()
        opt = BayesianOptimizer(
            space, kappa=0.001, n_initial_points=BATCH, lie_strategy=strategy, seed=7
        )
        diversity = []
        for _ in range(ROUNDS):
            batch = opt.ask(BATCH)
            lrs = np.log10([c["learning_rate"] for c in batch])
            diversity.append(float(lrs.std()))
            opt.tell(batch, [landscape(c) for c in batch])
        best_config, best_val = opt.best()
        out[strategy] = {
            "best": best_val,
            "best_lr": best_config["learning_rate"],
            "late_batch_diversity": float(np.mean(diversity[-3:])),
        }
    return out


def test_ablation_liar(benchmark):
    out = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = [
        [
            s,
            round(r["best"], 4),
            round(r["best_lr"], 5),
            round(r["late_batch_diversity"], 3),
        ]
        for s, r in out.items()
    ]
    report(
        "ablation_liar",
        format_table(
            f"Ablation — constant-liar lie value (batched ask({BATCH}), synthetic H_m landscape)",
            ["lie strategy", "best objective", "best lr found", "late batch lr-diversity"],
            rows,
        ),
    )
    # All strategies must locate the optimum region (lr ≈ 3e-3).
    for s, r in out.items():
        assert abs(np.log10(r["best_lr"]) + 2.52) < 0.7, s
    # The paper's mean lie is competitive with both alternatives.
    assert out["mean"]["best"] >= min(out["min"]["best"], out["max"]["best"]) - 1e-6
