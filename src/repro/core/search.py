"""Shared manager-loop machinery for AgE and AgEBO (Algorithm 1 skeleton).

The loop follows the paper exactly: seed the cluster with ``W`` random
configurations, then repeatedly gather finished evaluations, push them into
the aging population, generate exactly ``|results|`` replacements (random
while the population is filling, tournament + mutation afterwards) and
resubmit — keeping every worker busy, which is what yields the ≈94% node
utilization reported in §IV-C.
"""

from __future__ import annotations

import collections
from typing import Any

import numpy as np

from repro.core.config import ModelConfig
from repro.core.results import EvaluationRecord, SearchHistory
from repro.searchspace.archspace import ArchitectureSpace
from repro.searchspace.mutation import mutate_architecture
from repro.workflow.evaluator import Evaluator
from repro.workflow.jobs import Job

__all__ = ["AgingEvolutionBase"]


class AgingEvolutionBase:
    """Common aging-evolution mechanics; subclasses supply ``h_m`` policy.

    Parameters
    ----------
    space:
        The architecture search space ``H_a``.
    evaluator:
        A submit/gather backend (simulated or threaded).
    population_size, sample_size:
        ``P`` and ``S`` (paper: 100 and 10).
    num_workers:
        ``W``; defaults to the evaluator's worker count when it has one.
    replacement:
        ``"aging"`` (paper: evict the oldest member) or ``"elitist"``
        (ablation: evict the worst member) when the population is full.
    """

    def __init__(
        self,
        space: ArchitectureSpace,
        evaluator: Evaluator,
        population_size: int = 100,
        sample_size: int = 10,
        num_workers: int | None = None,
        seed: int = 0,
        mutate_skips: bool = True,
        replacement: str = "aging",
        label: str = "",
    ) -> None:
        if population_size < 2:
            raise ValueError("population_size must be >= 2")
        if not 1 <= sample_size <= population_size:
            raise ValueError("sample_size must be in [1, population_size]")
        if replacement not in ("aging", "elitist"):
            raise ValueError(f"unknown replacement {replacement!r}")
        if num_workers is None:
            num_workers = getattr(evaluator, "num_workers", 1)
        if num_workers < 1:
            # An explicit 0 must fail loudly, not silently fall back to the
            # evaluator default.
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        self.space = space
        self.evaluator = evaluator
        self.population_size = population_size
        self.sample_size = sample_size
        self.num_workers = num_workers
        self.rng = np.random.default_rng(seed)
        self.mutate_skips = mutate_skips
        self.replacement = replacement
        # Aging population: a bounded FIFO queue; pushing past capacity
        # evicts the oldest member (paper line 11).  Elitist replacement
        # (the ablation) evicts the worst member instead.
        self.population: collections.deque[EvaluationRecord] = collections.deque()
        self.history = SearchHistory(label=label or type(self).__name__)
        # Resume bookkeeping: whether the initial W submissions happened,
        # how many full gather→submit iterations have completed, and any
        # gathered results whose replacements were not yet submitted when a
        # budget stop interrupted the loop.
        self._initialized = False
        self._iterations = 0
        self._pending_results: list[EvaluationRecord] = []
        # Free-form dict stored inside checkpoints (the campaign layer
        # records the full CampaignConfig here so --resume can rebuild
        # everything from it).
        self.checkpoint_metadata: dict[str, Any] = {}
        # Optional campaign event bus (attached by repro.campaign.builder);
        # when set, the loop emits PopulationUpdated / CheckpointWritten.
        self.event_bus = None

    # ------------------------------------------------------------------ #
    # Hooks implemented by AgE / AgEBO
    # ------------------------------------------------------------------ #
    def _initial_hyperparameters(self, k: int) -> list[dict[str, Any]]:
        raise NotImplementedError

    def _next_hyperparameters(self, results: list[EvaluationRecord]) -> list[dict[str, Any]]:
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    def _child_architecture(self) -> np.ndarray:
        """Tournament + mutation once the population is full, else random."""
        if len(self.population) >= self.population_size:
            sample_idx = self.rng.integers(0, len(self.population), size=self.sample_size)
            sample = [self.population[int(i)] for i in sample_idx]
            parent = max(sample, key=lambda r: r.objective)
            return mutate_architecture(
                self.space, parent.config.arch, self.rng, mutate_skips=self.mutate_skips
            )
        return self.space.random_sample(self.rng)

    def _record(self, job: Job) -> EvaluationRecord:
        record = EvaluationRecord(
            config=job.config,
            objective=job.result.objective,
            duration=job.result.duration,
            submit_time=job.submit_time,
            start_time=job.start_time,
            end_time=job.end_time,
            metadata=job.result.metadata,
        )
        self.history.add(record)
        if len(self.population) >= self.population_size:
            if self.replacement == "aging":
                self.population.popleft()
            else:
                worst = min(range(len(self.population)), key=lambda i: self.population[i].objective)
                del self.population[worst]
        self.population.append(record)
        if self.event_bus is not None:
            from repro.campaign.events import PopulationUpdated

            self.event_bus.emit(
                PopulationUpdated(
                    num_evaluations=len(self.history),
                    population_size=len(self.population),
                    objective=record.objective,
                    best_objective=self.history.best().objective,
                    time=self.evaluator.now,
                )
            )
        return record

    # ------------------------------------------------------------------ #
    def search(
        self,
        max_evaluations: int | None = None,
        wall_time_minutes: float | None = None,
        checkpoint_path: str | None = None,
        checkpoint_every: int = 1,
    ) -> SearchHistory:
        """Run Algorithm 1 until an evaluation or time budget is hit.

        ``wall_time_minutes`` is measured on the evaluator's clock
        (simulated minutes for the simulated backend).  When
        ``checkpoint_path`` is given, the full search state is written
        there after every ``checkpoint_every``-th completed iteration —
        always at a quiescent point (after the replacement submissions), so
        resuming from any checkpoint replays the remaining campaign
        bit-identically.  Calling ``search`` again on a restored instance
        continues the same campaign (the initial submissions are skipped).
        """
        if max_evaluations is None and wall_time_minutes is None:
            raise ValueError("need at least one of max_evaluations / wall_time_minutes")
        if checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")

        if not self._initialized:
            # Initialization (lines 3-7): W random submissions.
            initial_hps = self._initial_hyperparameters(self.num_workers)
            initial = [
                ModelConfig(arch=self.space.random_sample(self.rng), hyperparameters=hp)
                for hp in initial_hps
            ]
            self.evaluator.submit(initial)
            self._initialized = True
        elif self._pending_results:
            # A previous call stopped on a budget after recording a batch;
            # submit its replacements first so continuation is identical to
            # an uninterrupted run with the larger budget.
            self._resubmit(self._pending_results)
            self._pending_results = []

        while True:
            jobs = self.evaluator.gather()
            if not jobs:
                break  # nothing in flight: budget exhausted below or drained
            results = [self._record(job) for job in jobs]

            if max_evaluations is not None and len(self.history) >= max_evaluations:
                self._pending_results = results
                break
            if wall_time_minutes is not None and self.evaluator.now >= wall_time_minutes:
                self._pending_results = results
                break

            self._resubmit(results)
            self._iterations += 1
            if checkpoint_path is not None and self._iterations % checkpoint_every == 0:
                self.checkpoint(checkpoint_path)
                if self.event_bus is not None:
                    from repro.campaign.events import CheckpointWritten

                    self.event_bus.emit(
                        CheckpointWritten(
                            path=str(checkpoint_path),
                            num_evaluations=len(self.history),
                            time=self.evaluator.now,
                        )
                    )

        return self.history

    def _resubmit(self, results: list[EvaluationRecord]) -> None:
        """Generate and submit |results| replacement configurations (lines 12-23)."""
        next_hps = self._next_hyperparameters(results)
        children = [
            ModelConfig(arch=self._child_architecture(), hyperparameters=hp)
            for hp in next_hps
        ]
        self.evaluator.submit(children)

    # ------------------------------------------------------------------ #
    # Checkpoint / resume
    # ------------------------------------------------------------------ #
    def checkpoint(self, path) -> None:
        """Write the full search state to ``path`` (atomic)."""
        from repro.core.serialization import save_checkpoint

        save_checkpoint(self, path)

    def state_dict(self) -> dict[str, Any]:
        """JSON-safe snapshot of the search: population, history, RNG,
        iteration counters and the evaluator's cluster state."""
        from repro.core.serialization import record_to_dict

        return {
            "label": self.history.label,
            "population_size": self.population_size,
            "sample_size": self.sample_size,
            "num_workers": self.num_workers,
            "mutate_skips": self.mutate_skips,
            "replacement": self.replacement,
            "rng_state": self.rng.bit_generator.state,
            "initialized": self._initialized,
            "iterations": self._iterations,
            "population": [record_to_dict(r, rich_metadata=True) for r in self.population],
            "pending_results": [
                record_to_dict(r, rich_metadata=True) for r in self._pending_results
            ],
            "history": {
                "label": self.history.label,
                "records": [
                    record_to_dict(r, rich_metadata=True) for r in self.history.records
                ],
            },
            "evaluator": self.evaluator.state_dict(),
        }

    def load_state(self, state: dict[str, Any]) -> None:
        """Restore a snapshot taken by :meth:`state_dict` (evaluator included)."""
        from repro.core.serialization import record_from_dict

        self.population_size = int(state["population_size"])
        self.sample_size = int(state["sample_size"])
        self.num_workers = int(state["num_workers"])
        self.mutate_skips = bool(state["mutate_skips"])
        self.replacement = state["replacement"]
        self.rng.bit_generator.state = state["rng_state"]
        self._initialized = bool(state["initialized"])
        self._iterations = int(state["iterations"])
        self.population = collections.deque(
            record_from_dict(row) for row in state["population"]
        )
        self._pending_results = [
            record_from_dict(row) for row in state.get("pending_results", [])
        ]
        self.history = SearchHistory(label=state["history"].get("label", ""))
        for row in state["history"]["records"]:
            self.history.add(record_from_dict(row))
        self.evaluator.load_state(state["evaluator"])
