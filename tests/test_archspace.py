"""Unit tests for the architecture search space (paper §III-A)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.graph_network import NodeOp
from repro.searchspace import ArchitectureSpace, mutate_architecture


# --------------------------------------------------------------------- #
# Paper-accurate structure
# --------------------------------------------------------------------- #
def test_default_space_matches_paper_counts(full_space):
    assert full_space.num_nodes == 10
    assert full_space.num_ops == 31  # 6 units x 5 activations + identity
    assert full_space.num_skip_vars == 27
    assert full_space.num_variables == 37


def test_default_cardinality_is_paper_value(full_space):
    assert full_space.cardinality == 31**10 * 2**27
    # ≈ 1.1e23 per the paper.
    assert 1.0e23 < float(full_space.cardinality) < 1.2e23


def test_skip_structure_per_destination(full_space):
    # Destination node 2 gets 1 skip var, node 3 gets 2, nodes 4..11 get 3.
    from collections import Counter

    dests = Counter(v.destination for v in full_space._skip_vars)
    assert dests[2] == 1
    assert dests[3] == 2
    for dest in range(4, 12):
        assert dests[dest] == 3


def test_variable_cardinalities(full_space):
    cards = full_space.variable_cardinalities()
    assert (cards[:10] == 31).all()
    assert (cards[10:] == 2).all()


# --------------------------------------------------------------------- #
# Op encoding
# --------------------------------------------------------------------- #
def test_op_index_roundtrip_all(small_space):
    for idx in range(small_space.num_ops):
        op = small_space.op_from_index(idx)
        assert small_space.index_from_op(op) == idx


def test_last_op_is_identity(small_space):
    assert small_space.op_from_index(small_space.num_ops - 1).is_identity


def test_op_grid_covers_units_and_activations(small_space):
    ops = [small_space.op_from_index(i) for i in range(small_space.num_ops - 1)]
    units = {op.units for op in ops}
    acts = {op.activation for op in ops}
    assert units == {16, 32, 48, 64, 80, 96}
    assert acts == {"identity", "swish", "relu", "tanh", "sigmoid"}


# --------------------------------------------------------------------- #
# Encode / decode
# --------------------------------------------------------------------- #
def test_random_sample_valid(full_space, rng):
    for _ in range(20):
        full_space.validate(full_space.random_sample(rng))


@given(seed=st.integers(0, 10_000))
@settings(max_examples=50, deadline=None)
def test_encode_decode_roundtrip(seed):
    space = ArchitectureSpace(num_nodes=6)
    vec = space.random_sample(np.random.default_rng(seed))
    spec = space.decode(vec)
    np.testing.assert_array_equal(space.encode(spec), vec)


def test_decode_produces_expected_skips(small_space):
    vec = np.zeros(small_space.num_variables, dtype=np.int64)
    vec[small_space.num_nodes] = 1  # first skip var: (0, 2)
    spec = small_space.decode(vec)
    assert (0, 2) in spec.skips
    assert len(spec.skips) == 1


def test_validate_rejects_bad_shapes(small_space):
    with pytest.raises(ValueError):
        small_space.validate(np.zeros(3, dtype=int))
    bad = np.zeros(small_space.num_variables, dtype=int)
    bad[0] = small_space.num_ops  # op index out of range
    with pytest.raises(ValueError):
        small_space.validate(bad)
    bad2 = np.zeros(small_space.num_variables, dtype=int)
    bad2[-1] = 5  # skip var must be 0/1
    with pytest.raises(ValueError):
        small_space.validate(bad2)


def test_encode_wrong_node_count(small_space):
    from repro.nn.graph_network import ArchitectureSpec

    spec = ArchitectureSpec((NodeOp(16, "relu"),))
    with pytest.raises(ValueError):
        small_space.encode(spec)


def test_onehot_shape_and_content(small_space, rng):
    vec = small_space.random_sample(rng)
    onehot = small_space.to_onehot(vec)
    expected_len = small_space.num_nodes * small_space.num_ops + small_space.num_skip_vars * 2
    assert onehot.shape == (expected_len,)
    assert onehot.sum() == small_space.num_variables  # one hot per variable
    assert set(np.unique(onehot)) <= {0.0, 1.0}


# --------------------------------------------------------------------- #
# Mutation (paper §III-C)
# --------------------------------------------------------------------- #
@given(seed=st.integers(0, 10_000))
@settings(max_examples=100, deadline=None)
def test_mutation_changes_exactly_one_variable(seed):
    space = ArchitectureSpace(num_nodes=5)
    rng = np.random.default_rng(seed)
    parent = space.random_sample(rng)
    child = mutate_architecture(space, parent, rng)
    diffs = np.nonzero(parent != child)[0]
    assert diffs.size == 1
    space.validate(child)


def test_mutation_excludes_current_value(small_space):
    rng = np.random.default_rng(0)
    parent = small_space.random_sample(rng)
    for _ in range(50):
        child = mutate_architecture(small_space, parent, rng)
        i = int(np.nonzero(parent != child)[0][0])
        assert child[i] != parent[i]


def test_mutation_restricted_to_op_nodes(small_space):
    rng = np.random.default_rng(1)
    parent = small_space.random_sample(rng)
    for _ in range(50):
        child = mutate_architecture(small_space, parent, rng, mutate_skips=False)
        i = int(np.nonzero(parent != child)[0][0])
        assert i < small_space.num_nodes


def test_mutation_does_not_modify_parent(small_space, rng):
    parent = small_space.random_sample(rng)
    snapshot = parent.copy()
    mutate_architecture(small_space, parent, rng)
    np.testing.assert_array_equal(parent, snapshot)


# --------------------------------------------------------------------- #
# Constructor validation
# --------------------------------------------------------------------- #
def test_space_rejects_zero_nodes():
    with pytest.raises(ValueError):
        ArchitectureSpace(num_nodes=0)


def test_single_node_space_has_one_output_skip():
    # With m=1 the only skip variable is input -> output (as in Fig. 1,
    # the output node may skip past the single variable node).
    space = ArchitectureSpace(num_nodes=1)
    assert space.num_skip_vars == 1
    assert space._skip_vars[0].source == 0
    assert space._skip_vars[0].destination == 2
