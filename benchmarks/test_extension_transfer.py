"""Extension bench (paper future-work item 3): transfer warm-start.

Warm-starts AgEBO's BO component on Airlines with the rank-normalized
hyperparameter observations of a finished Covertype search, comparing the
quality of the *early* evaluations against a cold-started search — the
transfer should not hurt and typically lifts the early phase, since the
good (lr, bs, n) regions of related tabular data sets overlap.
"""

from __future__ import annotations

import numpy as np

from common import format_table, get_scale, report, run_search
from repro.core import AgEBO, ModelEvaluation
from repro.core.transfer import extract_hp_observations
from repro.searchspace import default_dataparallel_space
from repro.workflow import SimulatedEvaluator

import common


def run_airlines(warm_start=None):
    scale = get_scale()
    ds = common.get_dataset("airlines")
    space = common.get_search_space()
    run_fn = ModelEvaluation(
        ds, space, epochs=scale.epochs, warmup_epochs=scale.warmup_epochs,
        nominal_epochs=20,
    )
    evaluator = SimulatedEvaluator(run_fn, num_workers=scale.num_workers)
    search = AgEBO(
        space,
        default_dataparallel_space(),
        evaluator,
        population_size=scale.population_size,
        sample_size=scale.sample_size,
        seed=3,
        warm_start=warm_start,
        label="AgEBO-warm" if warm_start else "AgEBO-cold",
    )
    return search.search(
        max_evaluations=scale.max_evaluations, wall_time_minutes=scale.wall_minutes
    )


def run_experiment():
    prior, _ = run_search("covertype", "AgEBO", seed=0)
    observations = list(zip(*extract_hp_observations(prior, top_fraction=0.5)))
    cold = run_airlines()
    warm = run_airlines(warm_start=observations)

    def early_mean(history, k=12):
        objs = history.objectives()
        return float(objs[: min(k, objs.size)].mean())

    return {
        "transferred": len(observations),
        "cold": {"early": early_mean(cold), "best": cold.best().objective},
        "warm": {"early": early_mean(warm), "best": warm.best().objective},
    }


def test_extension_transfer(benchmark):
    out = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report(
        "extension_transfer",
        format_table(
            f"Extension — BO warm-start (covertype → airlines, "
            f"{out['transferred']} observations transferred)",
            ["variant", "early mean val acc (first 12)", "best val acc"],
            [
                ["cold start", round(out["cold"]["early"], 4), round(out["cold"]["best"], 4)],
                ["warm start", round(out["warm"]["early"], 4), round(out["warm"]["best"], 4)],
            ],
        ),
    )
    # Transfer must be safe: final quality within noise of cold start.
    assert out["warm"]["best"] >= out["cold"]["best"] - 0.02
