"""AgE: aging evolution with *static* data-parallel training (the baseline).

Every candidate trains with a fixed (batch size, learning rate, number of
ranks); scaling across ranks follows the linear scaling rule applied inside
the data-parallel trainer.  ``AgE-n`` in the paper is this class with
``num_ranks = n``.
"""

from __future__ import annotations

from typing import Any

from repro.core.results import EvaluationRecord
from repro.core.search import AgingEvolutionBase
from repro.searchspace.archspace import ArchitectureSpace
from repro.workflow.evaluator import Evaluator

__all__ = ["AgE"]


class AgE(AgingEvolutionBase):
    """Aging evolution over ``H_a`` with fixed ``h_m``.

    Parameters
    ----------
    hyperparameters:
        The static data-parallel configuration; the paper's defaults are
        ``batch_size=256, learning_rate=0.01`` with ``num_ranks = n``.
    """

    def __init__(
        self,
        space: ArchitectureSpace,
        evaluator: Evaluator,
        hyperparameters: dict[str, Any] | None = None,
        population_size: int = 100,
        sample_size: int = 10,
        num_workers: int | None = None,
        seed: int = 0,
        mutate_skips: bool = True,
        replacement: str = "aging",
        label: str = "",
    ) -> None:
        hp = {"batch_size": 256, "learning_rate": 0.01, "num_ranks": 1}
        hp.update(hyperparameters or {})
        self.hyperparameters = hp
        super().__init__(
            space,
            evaluator,
            population_size=population_size,
            sample_size=sample_size,
            num_workers=num_workers,
            seed=seed,
            mutate_skips=mutate_skips,
            replacement=replacement,
            label=label or f"AgE-{hp['num_ranks']}",
        )

    def _initial_hyperparameters(self, k: int) -> list[dict[str, Any]]:
        return [dict(self.hyperparameters) for _ in range(k)]

    def _next_hyperparameters(self, results: list[EvaluationRecord]) -> list[dict[str, Any]]:
        return [dict(self.hyperparameters) for _ in results]

    # ------------------------------------------------------------------ #
    # Checkpoint / resume
    # ------------------------------------------------------------------ #
    def state_dict(self) -> dict[str, Any]:
        state = super().state_dict()
        state["hyperparameters"] = dict(self.hyperparameters)
        return state

    @classmethod
    def resume(
        cls,
        path,
        space: ArchitectureSpace,
        run_function,
        evaluator: Evaluator | None = None,
    ) -> "AgE":
        """Rebuild a checkpointed AgE campaign and continue it.

        Mirrors :meth:`repro.core.agebo.AgEBO.resume`; the static
        hyperparameters are restored from the checkpoint.
        """
        from repro.core.serialization import load_checkpoint
        from repro.workflow.evaluator import SimulatedEvaluator
        from repro.workflow.faults import FaultPolicy

        data = load_checkpoint(path)
        state = data["search"]
        if evaluator is None:
            ev_state = state["evaluator"]
            evaluator = SimulatedEvaluator(
                run_function,
                num_workers=ev_state["num_workers"],
                fault_policy=FaultPolicy(**ev_state["policy"]),
            )
        search = cls(
            space,
            evaluator,
            hyperparameters=dict(state["hyperparameters"]),
            population_size=state["population_size"],
            sample_size=state["sample_size"],
            num_workers=state["num_workers"],
            mutate_skips=state["mutate_skips"],
            replacement=state["replacement"],
            label=state["label"],
        )
        search.checkpoint_metadata = data.get("extra", {})
        search.load_state(state)
        return search
