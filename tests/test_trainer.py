"""Unit tests for the single-process training loop."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import GraphNetwork, Trainer
from repro.nn.graph_network import ArchitectureSpec, NodeOp

from conftest import make_blobs


def build(input_dim=8, classes=3, seed=0):
    spec = ArchitectureSpec((NodeOp(32, "relu"), NodeOp(16, "tanh")))
    return GraphNetwork(spec, input_dim, classes, np.random.default_rng(seed))


def test_training_improves_over_initialization(rng):
    X, y = make_blobs(rng)
    net = build()
    from repro.nn.metrics import accuracy

    before = accuracy(net.predict_logits(X[300:]), y[300:])
    result = Trainer(epochs=10, batch_size=32, learning_rate=0.01).fit(
        net, X[:300], y[:300], X[300:], y[300:], rng
    )
    assert result.best_val_accuracy > before
    assert result.best_val_accuracy > 0.8  # separable blobs


def test_history_lengths_match_epochs(rng):
    X, y = make_blobs(rng, n=120)
    result = Trainer(epochs=4, batch_size=32).fit(
        build(), X[:90], y[:90], X[90:], y[90:], rng
    )
    assert len(result.epoch_val_accuracies) == 4
    assert len(result.epoch_train_losses) == 4
    assert result.final_val_accuracy == result.epoch_val_accuracies[-1]
    assert result.best_val_accuracy == max(result.epoch_val_accuracies)


def test_keep_best_weights_restorable(rng):
    X, y = make_blobs(rng, n=200)
    net = build()
    result = Trainer(epochs=6, batch_size=32, keep_best_weights=True).fit(
        net, X[:150], y[:150], X[150:], y[150:], rng
    )
    assert result.best_weights is not None
    net.set_weights(result.best_weights)
    from repro.nn.metrics import accuracy

    restored = accuracy(net.predict_logits(X[150:]), y[150:])
    np.testing.assert_allclose(restored, result.best_val_accuracy)


def test_deterministic_given_seed():
    X, y = make_blobs(np.random.default_rng(0), n=200)

    def run():
        rng = np.random.default_rng(42)
        return Trainer(epochs=3, batch_size=32).fit(
            build(seed=5), X[:150], y[:150], X[150:], y[150:], rng
        )

    a, b = run(), run()
    np.testing.assert_array_equal(a.epoch_val_accuracies, b.epoch_val_accuracies)
    np.testing.assert_array_equal(a.epoch_train_losses, b.epoch_train_losses)


def test_empty_training_set_raises(rng):
    with pytest.raises(ValueError):
        Trainer(epochs=1).fit(
            build(), np.zeros((0, 8)), np.zeros(0, dtype=int), np.zeros((2, 8)), np.zeros(2, dtype=int), rng
        )


def test_constructor_validation():
    with pytest.raises(ValueError):
        Trainer(epochs=0)
    with pytest.raises(ValueError):
        Trainer(batch_size=0)


def test_loss_decreases_on_average(rng):
    X, y = make_blobs(rng, n=400)
    result = Trainer(epochs=8, batch_size=32, learning_rate=0.01).fit(
        build(), X[:300], y[:300], X[300:], y[300:], rng
    )
    first, last = result.epoch_train_losses[0], result.epoch_train_losses[-1]
    assert last < first
