"""Gradient compression for data-parallel training (extension).

Large-scale data-parallel training often compresses gradients before the
allreduce to cut network traffic.  This module implements the standard
**top-k sparsification with error feedback** (Deep Gradient Compression
style): each rank keeps only its ``k`` largest-magnitude gradient entries,
accumulates what it dropped into a local residual, and adds the residual
back before the next selection — which preserves convergence while
shipping a small fraction of the bytes.

The compressed exchange is modeled as an allgather of sparse
(index, value) pairs; :func:`compressed_transfer_bytes` feeds the cost
model with the reduced traffic so the multi-node scaling benefit can be
quantified against the dense ring.
"""

from __future__ import annotations

import numpy as np

__all__ = ["TopKCompressor", "compressed_allreduce_mean", "compressed_transfer_bytes"]

GradientList = list[np.ndarray]

_INDEX_BYTES = 4
_VALUE_BYTES = 4


class TopKCompressor:
    """Per-rank top-k sparsifier with error feedback.

    Parameters
    ----------
    ratio:
        Fraction of entries kept per tensor (e.g. 0.01 ships 1%).
    """

    def __init__(self, ratio: float) -> None:
        if not 0.0 < ratio <= 1.0:
            raise ValueError(f"ratio must be in (0, 1], got {ratio}")
        self.ratio = ratio
        self._residuals: list[np.ndarray] | None = None

    def reset(self) -> None:
        self._residuals = None

    def compress(self, grads: GradientList) -> list[tuple[np.ndarray, np.ndarray, tuple[int, ...]]]:
        """Return per-tensor (indices, values, shape) of the kept entries.

        Dropped mass is stored in the residual and re-injected next call.
        """
        if self._residuals is None:
            self._residuals = [np.zeros_like(g) for g in grads]
        if len(grads) != len(self._residuals):
            raise ValueError("gradient list structure changed between calls")
        out = []
        for g, residual in zip(grads, self._residuals):
            corrected = g + residual
            flat = corrected.ravel()
            k = max(1, int(round(self.ratio * flat.size)))
            if k >= flat.size:
                idx = np.arange(flat.size)
            else:
                idx = np.argpartition(np.abs(flat), flat.size - k)[-k:]
            values = flat[idx].copy()
            # Error feedback: remember everything we did not ship.
            residual[...] = corrected
            residual.ravel()[idx] = 0.0
            out.append((idx.astype(np.int64), values, corrected.shape))
        return out


def compressed_allreduce_mean(
    compressed_per_rank: list[list[tuple[np.ndarray, np.ndarray, tuple[int, ...]]]],
) -> GradientList:
    """Mean of sparse per-rank gradients (densified reference reduction)."""
    if not compressed_per_rank:
        raise ValueError("need at least one rank")
    n_ranks = len(compressed_per_rank)
    n_tensors = len(compressed_per_rank[0])
    out: GradientList = []
    for t in range(n_tensors):
        shape = compressed_per_rank[0][t][2]
        acc = np.zeros(int(np.prod(shape)))
        for rank in compressed_per_rank:
            idx, values, rank_shape = rank[t]
            if rank_shape != shape:
                raise ValueError(f"tensor {t} shape mismatch across ranks")
            np.add.at(acc, idx, values)
        out.append((acc / n_ranks).reshape(shape))
    return out


def compressed_transfer_bytes(num_params: int, num_ranks: int, ratio: float) -> int:
    """Bytes each rank ships: allgather of k (index, value) pairs."""
    if num_ranks < 2:
        return 0
    k = max(1, int(round(ratio * num_params)))
    payload = k * (_INDEX_BYTES + _VALUE_BYTES)
    # Ring allgather ships (n-1)/n of the aggregate payload per rank.
    return int(round((num_ranks - 1) / num_ranks * payload * num_ranks))
