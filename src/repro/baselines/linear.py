"""Multinomial logistic regression via full-batch gradient descent."""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaseClassifier, check_Xy
from repro.datasets.preprocessing import one_hot

__all__ = ["LogisticRegression"]


class LogisticRegression(BaseClassifier):
    """Softmax regression with L2 regularization, optimized by GD + momentum."""

    def __init__(
        self,
        n_classes: int,
        l2: float = 1e-4,
        learning_rate: float = 0.5,
        n_iter: int = 200,
        momentum: float = 0.9,
    ) -> None:
        super().__init__(n_classes)
        if l2 < 0 or learning_rate <= 0 or n_iter < 1:
            raise ValueError("invalid hyperparameters")
        self.l2 = l2
        self.learning_rate = learning_rate
        self.n_iter = n_iter
        self.momentum = momentum
        self.W_: np.ndarray | None = None
        self.b_: np.ndarray | None = None

    def fit(self, X: np.ndarray, y: np.ndarray, rng: np.random.Generator) -> "LogisticRegression":
        X, y = check_Xy(X, y)
        n, d = X.shape
        Y = one_hot(y, self.n_classes)
        W = np.zeros((d, self.n_classes))
        b = np.zeros(self.n_classes)
        vW = np.zeros_like(W)
        vb = np.zeros_like(b)
        for _ in range(self.n_iter):
            logits = X @ W + b
            logits -= logits.max(axis=1, keepdims=True)
            P = np.exp(logits)
            P /= P.sum(axis=1, keepdims=True)
            G = (P - Y) / n
            gW = X.T @ G + self.l2 * W
            gb = G.sum(axis=0)
            vW = self.momentum * vW - self.learning_rate * gW
            vb = self.momentum * vb - self.learning_rate * gb
            W += vW
            b += vb
        self.W_ = W
        self.b_ = b
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if self.W_ is None:
            raise RuntimeError("model is not fitted")
        logits = np.asarray(X, dtype=float) @ self.W_ + self.b_
        logits -= logits.max(axis=1, keepdims=True)
        P = np.exp(logits)
        return P / P.sum(axis=1, keepdims=True)
