"""Unit tests for activations, initializers, layers, losses and metrics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import (
    ACTIVATIONS,
    Dense,
    Tensor,
    accuracy,
    apply_activation,
    glorot_uniform,
    he_normal,
    l2_regularization,
    softmax_cross_entropy,
    top_k_accuracy,
    zeros_init,
)
from repro.nn.activations import ACTIVATION_NAMES
from repro.nn.metrics import confusion_counts


# --------------------------------------------------------------------- #
# Activations
# --------------------------------------------------------------------- #
def test_activation_registry_matches_paper_set():
    assert set(ACTIVATION_NAMES) == {"identity", "swish", "relu", "tanh", "sigmoid"}
    assert set(ACTIVATIONS) == set(ACTIVATION_NAMES)


def test_identity_activation_is_noop():
    t = Tensor(np.array([-1.0, 2.0]))
    assert apply_activation("identity", t) is t


@pytest.mark.parametrize("name", ACTIVATION_NAMES)
def test_activation_output_shapes(name):
    t = Tensor(np.random.default_rng(0).normal(size=(4, 6)))
    assert apply_activation(name, t).shape == (4, 6)


def test_unknown_activation_raises():
    with pytest.raises(KeyError, match="unknown activation"):
        apply_activation("gelu", Tensor(np.ones(2)))


def test_swish_matches_definition():
    x = np.linspace(-4, 4, 21)
    out = Tensor(x).swish().data
    np.testing.assert_allclose(out, x / (1.0 + np.exp(-x)), rtol=1e-12)


# --------------------------------------------------------------------- #
# Initializers
# --------------------------------------------------------------------- #
def test_glorot_uniform_bounds():
    rng = np.random.default_rng(0)
    w = glorot_uniform(100, 50, rng)
    limit = np.sqrt(6.0 / 150)
    assert w.shape == (100, 50)
    assert np.all(np.abs(w) <= limit)


def test_he_normal_variance():
    rng = np.random.default_rng(0)
    w = he_normal(1000, 200, rng)
    assert abs(w.std() - np.sqrt(2.0 / 1000)) < 5e-4


def test_zeros_init():
    assert np.all(zeros_init(3, 4) == 0.0)
    assert zeros_init(5).shape == (5,)


def test_initializers_deterministic_per_seed():
    a = glorot_uniform(10, 10, np.random.default_rng(7))
    b = glorot_uniform(10, 10, np.random.default_rng(7))
    np.testing.assert_array_equal(a, b)


# --------------------------------------------------------------------- #
# Dense layer
# --------------------------------------------------------------------- #
def test_dense_forward_shape_and_activation():
    rng = np.random.default_rng(0)
    layer = Dense(5, 3, "relu", rng)
    out = layer(Tensor(rng.normal(size=(7, 5))))
    assert out.shape == (7, 3)
    assert np.all(out.data >= 0.0)  # relu applied


def test_dense_linear_ignores_activation():
    rng = np.random.default_rng(0)
    layer = Dense(4, 2, "relu", rng)
    x = Tensor(rng.normal(size=(3, 4)))
    lin = layer.linear(x).data
    assert (lin < 0).any()  # raw affine output can be negative


def test_dense_parameter_count():
    layer = Dense(10, 6, None, np.random.default_rng(0))
    assert layer.num_parameters() == 10 * 6 + 6


def test_dense_invalid_dims():
    with pytest.raises(ValueError):
        Dense(0, 4, None, np.random.default_rng(0))


def test_dense_uses_he_for_relu_family():
    rng = np.random.default_rng(0)
    relu_layer = Dense(1000, 100, "relu", rng)
    tanh_layer = Dense(1000, 100, "tanh", rng)
    # He std is sqrt(2/1000); Glorot uniform std is sqrt(2/1100) / sqrt(3)*sqrt(2)... just
    # check the two distributions measurably differ.
    assert abs(relu_layer.W.data.std() - tanh_layer.W.data.std()) > 1e-3


# --------------------------------------------------------------------- #
# Losses
# --------------------------------------------------------------------- #
def test_cross_entropy_uniform_logits():
    logits = Tensor(np.zeros((4, 5)), requires_grad=True)
    loss = softmax_cross_entropy(logits, np.array([0, 1, 2, 3]))
    np.testing.assert_allclose(loss.item(), np.log(5.0), rtol=1e-12)


def test_cross_entropy_perfect_prediction_near_zero():
    logits_data = np.full((3, 4), -100.0)
    logits_data[np.arange(3), [1, 2, 0]] = 100.0
    loss = softmax_cross_entropy(Tensor(logits_data, requires_grad=True), np.array([1, 2, 0]))
    assert loss.item() < 1e-8


def test_cross_entropy_gradient_is_softmax_minus_onehot():
    rng = np.random.default_rng(0)
    x = rng.normal(size=(6, 3))
    labels = rng.integers(0, 3, size=6)
    t = Tensor(x.copy(), requires_grad=True)
    softmax_cross_entropy(t, labels).backward()
    e = np.exp(x - x.max(axis=1, keepdims=True))
    p = e / e.sum(axis=1, keepdims=True)
    onehot = np.zeros_like(p)
    onehot[np.arange(6), labels] = 1.0
    np.testing.assert_allclose(t.grad, (p - onehot) / 6.0, rtol=1e-10)


def test_cross_entropy_label_shape_validation():
    with pytest.raises(ValueError):
        softmax_cross_entropy(Tensor(np.zeros((3, 2))), np.array([0, 1]))


def test_l2_regularization_excludes_biases():
    w = Tensor(np.full((2, 2), 2.0), requires_grad=True)
    b = Tensor(np.full(2, 100.0), requires_grad=True)
    reg = l2_regularization([w, b], 0.5)
    np.testing.assert_allclose(reg.item(), 0.5 * 16.0)


def test_l2_regularization_empty():
    assert l2_regularization([], 1.0).item() == 0.0


# --------------------------------------------------------------------- #
# Metrics
# --------------------------------------------------------------------- #
def test_accuracy_basic():
    logits = np.array([[0.9, 0.1], [0.2, 0.8], [0.6, 0.4], [0.3, 0.7]])
    assert accuracy(logits, np.array([0, 1, 1, 1])) == 0.75


def test_accuracy_empty_is_zero():
    assert accuracy(np.zeros((0, 3)), np.zeros(0, dtype=int)) == 0.0


def test_top_k_accuracy():
    logits = np.array([[3.0, 2.0, 1.0], [1.0, 2.0, 3.0]])
    labels = np.array([1, 0])
    assert top_k_accuracy(logits, labels, 1) == 0.0
    assert top_k_accuracy(logits, labels, 2) == 0.5
    assert top_k_accuracy(logits, labels, 3) == 1.0


def test_top_k_clamps_to_n_classes():
    logits = np.array([[1.0, 0.0]])
    assert top_k_accuracy(logits, np.array([1]), 10) == 1.0


def test_confusion_counts_sums_to_n():
    rng = np.random.default_rng(0)
    logits = rng.normal(size=(50, 4))
    labels = rng.integers(0, 4, size=50)
    mat = confusion_counts(logits, labels, 4)
    assert mat.sum() == 50
    assert mat.shape == (4, 4)


@given(st.integers(2, 6), st.integers(1, 40))
@settings(max_examples=25, deadline=None)
def test_accuracy_of_true_logits_is_one(classes, n):
    """One-hot logits of the labels always score accuracy 1."""
    rng = np.random.default_rng(0)
    labels = rng.integers(0, classes, size=n)
    logits = np.zeros((n, classes))
    logits[np.arange(n), labels] = 1.0
    assert accuracy(logits, labels) == 1.0
