"""Dimension types for mixed-integer hyperparameter spaces.

Each dimension can sample a value, map values to/from a numeric
representation used by the random-forest surrogate, and validate
membership.  The numeric representation follows scikit-optimize's
conventions: reals pass through (log-transformed under a log-uniform
prior), integers pass through, categoricals map to their index.
"""

from __future__ import annotations

import math
from typing import Any, Sequence

import numpy as np

__all__ = ["Dimension", "Real", "Integer", "Categorical"]


class Dimension:
    """Abstract search dimension."""

    name: str = ""

    def sample(self, rng: np.random.Generator) -> Any:
        raise NotImplementedError

    def to_numeric(self, value: Any) -> float:
        """Map a value into the surrogate's numeric coordinate."""
        raise NotImplementedError

    def from_numeric(self, x: float) -> Any:
        """Inverse of :meth:`to_numeric` (clipped/rounded to validity)."""
        raise NotImplementedError

    def contains(self, value: Any) -> bool:
        raise NotImplementedError


class Real(Dimension):
    """Continuous dimension on ``[low, high]``.

    ``prior='log-uniform'`` samples (and represents) the value on a log
    scale, as the paper does for the learning rate.
    """

    def __init__(self, low: float, high: float, prior: str = "uniform", name: str = "") -> None:
        if not (low < high):
            raise ValueError(f"low must be < high, got [{low}, {high}]")
        if prior not in ("uniform", "log-uniform"):
            raise ValueError(f"unknown prior {prior!r}")
        if prior == "log-uniform" and low <= 0:
            raise ValueError("log-uniform prior requires low > 0")
        self.low = float(low)
        self.high = float(high)
        self.prior = prior
        self.name = name

    def sample(self, rng: np.random.Generator) -> float:
        if self.prior == "log-uniform":
            return float(math.exp(rng.uniform(math.log(self.low), math.log(self.high))))
        return float(rng.uniform(self.low, self.high))

    def to_numeric(self, value: float) -> float:
        return math.log(value) if self.prior == "log-uniform" else float(value)

    def from_numeric(self, x: float) -> float:
        value = math.exp(x) if self.prior == "log-uniform" else float(x)
        return min(max(value, self.low), self.high)

    def contains(self, value: Any) -> bool:
        try:
            v = float(value)
        except (TypeError, ValueError):
            return False
        return self.low <= v <= self.high

    def __repr__(self) -> str:  # pragma: no cover
        return f"Real({self.low}, {self.high}, prior={self.prior!r}, name={self.name!r})"


class Integer(Dimension):
    """Integer dimension on ``[low, high]`` inclusive."""

    def __init__(self, low: int, high: int, name: str = "") -> None:
        if not (low < high):
            raise ValueError(f"low must be < high, got [{low}, {high}]")
        self.low = int(low)
        self.high = int(high)
        self.name = name

    def sample(self, rng: np.random.Generator) -> int:
        return int(rng.integers(self.low, self.high + 1))

    def to_numeric(self, value: int) -> float:
        return float(value)

    def from_numeric(self, x: float) -> int:
        return int(min(max(round(x), self.low), self.high))

    def contains(self, value: Any) -> bool:
        return isinstance(value, (int, np.integer)) and self.low <= int(value) <= self.high

    def __repr__(self) -> str:  # pragma: no cover
        return f"Integer({self.low}, {self.high}, name={self.name!r})"


class Categorical(Dimension):
    """Unordered finite set of values (numeric coordinate = index)."""

    def __init__(self, values: Sequence[Any], name: str = "") -> None:
        if len(values) == 0:
            raise ValueError("Categorical requires at least one value")
        if len(set(map(repr, values))) != len(values):
            raise ValueError("Categorical values must be distinct")
        self.values = list(values)
        self.name = name
        self._index = {repr(v): i for i, v in enumerate(self.values)}

    def sample(self, rng: np.random.Generator) -> Any:
        return self.values[int(rng.integers(len(self.values)))]

    def to_numeric(self, value: Any) -> float:
        try:
            return float(self._index[repr(value)])
        except KeyError:
            raise ValueError(f"{value!r} not in categorical {self.name!r}") from None

    def from_numeric(self, x: float) -> Any:
        idx = int(min(max(round(x), 0), len(self.values) - 1))
        return self.values[idx]

    def contains(self, value: Any) -> bool:
        return repr(value) in self._index

    def __len__(self) -> int:
        return len(self.values)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Categorical({self.values!r}, name={self.name!r})"
