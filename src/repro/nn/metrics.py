"""Classification metrics (plain numpy; never differentiated)."""

from __future__ import annotations

import numpy as np

__all__ = ["accuracy", "top_k_accuracy", "confusion_counts"]


def accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of rows whose arg-max matches the label."""
    logits = np.asarray(logits)
    labels = np.asarray(labels)
    if logits.shape[0] == 0:
        return 0.0
    return float((logits.argmax(axis=1) == labels).mean())


def top_k_accuracy(logits: np.ndarray, labels: np.ndarray, k: int) -> float:
    """Fraction of rows whose label is within the top-``k`` scores."""
    logits = np.asarray(logits)
    labels = np.asarray(labels)
    if logits.shape[0] == 0:
        return 0.0
    k = min(k, logits.shape[1])
    topk = np.argpartition(-logits, kth=k - 1, axis=1)[:, :k]
    return float((topk == labels[:, None]).any(axis=1).mean())


def confusion_counts(logits: np.ndarray, labels: np.ndarray, n_classes: int) -> np.ndarray:
    """Return the ``(n_classes, n_classes)`` confusion matrix of counts."""
    preds = np.asarray(logits).argmax(axis=1)
    labels = np.asarray(labels)
    mat = np.zeros((n_classes, n_classes), dtype=np.int64)
    np.add.at(mat, (labels, preds), 1)
    return mat
