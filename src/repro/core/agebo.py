"""AgEBO: aging evolution + asynchronous Bayesian optimization (Algorithm 1).

The architecture ``h_a`` evolves exactly as in :class:`~repro.core.age.AgE`;
the data-parallel hyperparameters ``h_m`` of every submitted child come
from the BO optimizer's constant-liar ``ask``, after ``tell``-ing it the
finished evaluations' validation accuracies (the blue lines of Algorithm 1,
marginalizing the architecture variables).
"""

from __future__ import annotations

from typing import Any

from repro.bo.optimizer import BayesianOptimizer
from repro.core.results import EvaluationRecord
from repro.core.search import AgingEvolutionBase
from repro.searchspace.archspace import ArchitectureSpace
from repro.searchspace.hpspace import HyperparameterSpace
from repro.workflow.evaluator import Evaluator

__all__ = ["AgEBO"]


class AgEBO(AgingEvolutionBase):
    """Joint NAS + HPS search.

    Parameters
    ----------
    hp_space:
        The (possibly restricted) data-parallel hyperparameter space; fixed
        dimensions ride along as defaults (AgEBO-8-LR etc.).
    kappa:
        UCB exploration weight (paper default 0.001 — strong exploitation).
    lie_strategy:
        Constant-liar dummy value (paper: mean of observed accuracies).
    """

    def __init__(
        self,
        space: ArchitectureSpace,
        hp_space: HyperparameterSpace,
        evaluator: Evaluator,
        population_size: int = 100,
        sample_size: int = 10,
        num_workers: int | None = None,
        kappa: float = 0.001,
        n_initial_points: int = 10,
        lie_strategy: str = "mean",
        seed: int = 0,
        mutate_skips: bool = True,
        replacement: str = "aging",
        surrogate: str = "forest",
        warm_start=None,
        label: str = "",
    ) -> None:
        super().__init__(
            space,
            evaluator,
            population_size=population_size,
            sample_size=sample_size,
            num_workers=num_workers,
            seed=seed,
            mutate_skips=mutate_skips,
            replacement=replacement,
            label=label or "AgEBO",
        )
        self.hp_space = hp_space
        self.optimizer = BayesianOptimizer(
            hp_space,
            kappa=kappa,
            n_initial_points=n_initial_points,
            lie_strategy=lie_strategy,
            surrogate=surrogate,
            seed=int(self.rng.integers(2**31)),
        )
        # Transfer learning (paper future work): warm-start the surrogate
        # with (h_m, rank-normalized objective) pairs from a prior search.
        if warm_start:
            from repro.core.transfer import warm_start_optimizer

            self.warm_started = warm_start_optimizer(self.optimizer, warm_start)
        else:
            self.warm_started = 0

    def _initial_hyperparameters(self, k: int) -> list[dict[str, Any]]:
        # Random initialization phase: sample H_m directly.
        return [self.hp_space.sample(self.rng) for _ in range(k)]

    def _next_hyperparameters(self, results: list[EvaluationRecord]) -> list[dict[str, Any]]:
        # optimizer.tell(results.h_m, results.valid_accuracy); ask(|results|).
        self.optimizer.tell(
            [r.config.hyperparameters for r in results],
            [r.objective for r in results],
        )
        batch = self.optimizer.ask(len(results))
        if self.event_bus is not None:
            from repro.campaign.events import BOTellAsk

            self.event_bus.emit(
                BOTellAsk(
                    num_told=len(results),
                    num_asked=len(batch),
                    num_observations=self.optimizer.num_observations,
                    time=self.evaluator.now,
                )
            )
        return batch

    # ------------------------------------------------------------------ #
    # Checkpoint / resume
    # ------------------------------------------------------------------ #
    def state_dict(self) -> dict[str, Any]:
        state = super().state_dict()
        state["kappa"] = self.optimizer.kappa
        state["n_initial_points"] = self.optimizer.n_initial_points
        state["lie_strategy"] = self.optimizer.lie_strategy
        state["surrogate"] = self.optimizer.surrogate
        state["optimizer"] = self.optimizer.state_dict()
        return state

    def load_state(self, state: dict[str, Any]) -> None:
        super().load_state(state)
        self.optimizer.load_state(state["optimizer"])

    @classmethod
    def resume(
        cls,
        path,
        space: ArchitectureSpace,
        hp_space: HyperparameterSpace,
        run_function,
        evaluator: Evaluator | None = None,
    ) -> "AgEBO":
        """Rebuild a checkpointed campaign and continue it.

        The checkpoint stores everything except the live objects that
        cannot be serialized — the search spaces and the run function —
        which the caller supplies (they must match the original campaign
        for the resumed history to be bit-identical).  A ready evaluator
        may be passed; otherwise a :class:`SimulatedEvaluator` is rebuilt
        from the checkpointed cluster state.
        """
        from repro.core.serialization import load_checkpoint
        from repro.workflow.evaluator import SimulatedEvaluator
        from repro.workflow.faults import FaultPolicy

        data = load_checkpoint(path)
        state = data["search"]
        if evaluator is None:
            ev_state = state["evaluator"]
            evaluator = SimulatedEvaluator(
                run_function,
                num_workers=ev_state["num_workers"],
                fault_policy=FaultPolicy(**ev_state["policy"]),
            )
        search = cls(
            space,
            hp_space,
            evaluator,
            population_size=state["population_size"],
            sample_size=state["sample_size"],
            num_workers=state["num_workers"],
            kappa=state["kappa"],
            n_initial_points=state["n_initial_points"],
            lie_strategy=state["lie_strategy"],
            surrogate=state["surrogate"],
            mutate_skips=state["mutate_skips"],
            replacement=state["replacement"],
            label=state["label"],
        )
        search.checkpoint_metadata = data.get("extra", {})
        search.load_state(state)
        return search
