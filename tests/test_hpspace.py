"""Unit tests for the data-parallel hyperparameter space."""

from __future__ import annotations

import numpy as np
import pytest

from repro.searchspace import (
    Categorical,
    HyperparameterSpace,
    Real,
    default_dataparallel_space,
)


def test_default_space_matches_paper():
    space = default_dataparallel_space()
    assert space.names == ["batch_size", "learning_rate", "num_ranks"]
    bs = space.dimensions["batch_size"]
    assert isinstance(bs, Categorical) and bs.values == [32, 64, 128, 256, 512, 1024]
    lr = space.dimensions["learning_rate"]
    assert isinstance(lr, Real) and lr.prior == "log-uniform"
    assert (lr.low, lr.high) == (0.001, 0.1)
    ranks = space.dimensions["num_ranks"]
    assert ranks.values == [1, 2, 4, 8]


def test_sample_includes_all_keys(rng):
    space = default_dataparallel_space()
    config = space.sample(rng)
    assert set(config) == {"batch_size", "learning_rate", "num_ranks"}
    space.validate(config)


def test_variant_agebo_8_lr():
    space = default_dataparallel_space(
        tune_batch_size=False, tune_num_ranks=False, default_num_ranks=8
    )
    assert space.names == ["learning_rate"]
    config = space.sample(np.random.default_rng(0))
    assert config["batch_size"] == 256
    assert config["num_ranks"] == 8


def test_variant_agebo_8_lr_bs():
    space = default_dataparallel_space(tune_num_ranks=False, default_num_ranks=8)
    assert space.names == ["batch_size", "learning_rate"]
    assert space.defaults == {"num_ranks": 8}


def test_all_fixed_space():
    space = default_dataparallel_space(
        tune_batch_size=False, tune_learning_rate=False, tune_num_ranks=False
    )
    assert space.num_dimensions == 0
    config = space.sample(np.random.default_rng(0))
    assert config == {"batch_size": 256, "learning_rate": 0.01, "num_ranks": 1}


def test_max_ranks_filters_choices():
    space = default_dataparallel_space(max_ranks=4)
    assert space.dimensions["num_ranks"].values == [1, 2, 4]


def test_to_from_array_roundtrip(rng):
    space = default_dataparallel_space()
    for _ in range(20):
        config = space.sample(rng)
        arr = space.to_array(config)
        back = space.from_array(arr)
        assert back["batch_size"] == config["batch_size"]
        assert back["num_ranks"] == config["num_ranks"]
        assert abs(back["learning_rate"] - config["learning_rate"]) < 1e-9


def test_learning_rate_encoded_on_log_scale():
    space = default_dataparallel_space(tune_batch_size=False, tune_num_ranks=False)
    a = space.to_array({"learning_rate": 0.001, "batch_size": 256, "num_ranks": 1})
    b = space.to_array({"learning_rate": 0.01, "batch_size": 256, "num_ranks": 1})
    c = space.to_array({"learning_rate": 0.1, "batch_size": 256, "num_ranks": 1})
    np.testing.assert_allclose(b - a, c - b, rtol=1e-9)  # equal log steps


def test_validate_catches_missing_and_invalid():
    space = default_dataparallel_space()
    with pytest.raises(ValueError, match="missing"):
        space.validate({"batch_size": 256})
    with pytest.raises(ValueError):
        space.validate({"batch_size": 100, "learning_rate": 0.01, "num_ranks": 1})


def test_validate_fixed_value_mismatch():
    space = default_dataparallel_space(tune_num_ranks=False, default_num_ranks=8)
    with pytest.raises(ValueError, match="fixed"):
        space.validate({"batch_size": 256, "learning_rate": 0.01, "num_ranks": 4})


def test_overlapping_tuned_and_fixed_rejected():
    with pytest.raises(ValueError):
        HyperparameterSpace({"x": Real(0, 1)}, {"x": 0.5})


def test_from_array_shape_check():
    space = default_dataparallel_space()
    with pytest.raises(ValueError):
        space.from_array(np.zeros(5))
