"""Tests for the extension layers (BatchNorm1d, Dropout) and new autograd ops."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import Tensor, no_grad
from repro.nn.normalization import BatchNorm1d
from repro.nn.regularization import Dropout


# --------------------------------------------------------------------- #
# New autograd ops
# --------------------------------------------------------------------- #
def numeric_grad(fn, x, eps=1e-6):
    g = np.zeros_like(x)
    flat, gflat = x.ravel(), g.ravel()
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        hi = fn(x)
        flat[i] = orig - eps
        lo = fn(x)
        flat[i] = orig
        gflat[i] = (hi - lo) / (2 * eps)
    return g


def test_reciprocal_gradient():
    x = np.array([0.5, 2.0, -3.0])
    t = Tensor(x.copy(), requires_grad=True)
    t.reciprocal().sum().backward()
    np.testing.assert_allclose(t.grad, -1.0 / x**2, rtol=1e-10)


def test_sqrt_gradient():
    x = np.array([0.25, 4.0, 9.0])
    t = Tensor(x.copy(), requires_grad=True)
    t.sqrt().sum().backward()
    np.testing.assert_allclose(t.grad, 0.5 / np.sqrt(x), rtol=1e-10)


def test_mean_axis0_gradient():
    x = np.random.default_rng(0).normal(size=(6, 3))
    t = Tensor(x.copy(), requires_grad=True)
    w = np.array([1.0, 2.0, 3.0])
    (t.mean_axis0() * w).sum().backward()
    expected = numeric_grad(lambda a: (Tensor(a).mean_axis0().data * w).sum(), x.copy())
    np.testing.assert_allclose(t.grad, expected, rtol=1e-6)


# --------------------------------------------------------------------- #
# BatchNorm1d
# --------------------------------------------------------------------- #
def test_batchnorm_normalizes_training_batch():
    rng = np.random.default_rng(0)
    bn = BatchNorm1d(4)
    x = Tensor(rng.normal(loc=7.0, scale=3.0, size=(256, 4)))
    out = bn(x).data
    np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-8)
    np.testing.assert_allclose(out.std(axis=0), 1.0, atol=1e-2)


def test_batchnorm_gamma_beta_apply():
    bn = BatchNorm1d(2)
    bn.gamma.data[:] = [2.0, 1.0]
    bn.beta.data[:] = [0.0, 5.0]
    x = Tensor(np.random.default_rng(1).normal(size=(128, 2)))
    out = bn(x).data
    np.testing.assert_allclose(out[:, 0].std(), 2.0, atol=0.05)
    np.testing.assert_allclose(out[:, 1].mean(), 5.0, atol=1e-8)


def test_batchnorm_running_stats_and_inference():
    rng = np.random.default_rng(2)
    bn = BatchNorm1d(3, momentum=0.5)
    for _ in range(20):
        bn(Tensor(rng.normal(loc=4.0, scale=2.0, size=(200, 3)), requires_grad=True))
    np.testing.assert_allclose(bn.running_mean, 4.0, atol=0.3)
    np.testing.assert_allclose(bn.running_var, 4.0, atol=0.8)
    with no_grad():
        out = bn(Tensor(rng.normal(loc=4.0, scale=2.0, size=(500, 3)))).data
    np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=0.2)
    updates_before = bn._updates
    with no_grad():
        bn(Tensor(np.zeros((10, 3))))
    assert bn._updates == updates_before  # inference does not update stats


def test_batchnorm_gradients_flow():
    bn = BatchNorm1d(3)
    x = Tensor(np.random.default_rng(3).normal(size=(32, 3)), requires_grad=True)
    bn(x).sum().backward()
    assert x.grad is not None
    assert bn.gamma.grad is not None and bn.beta.grad is not None
    # Sum of a normalized batch is ~constant w.r.t. x, so dx ≈ 0;
    # beta's gradient is exactly the batch size per feature.
    np.testing.assert_allclose(bn.beta.grad, 32.0)


def test_batchnorm_gradient_matches_finite_differences():
    rng = np.random.default_rng(4)
    x = rng.normal(size=(8, 2))
    w = rng.normal(size=(8, 2))

    def loss_of(arr):
        bn = BatchNorm1d(2)
        return float((bn(Tensor(arr, requires_grad=True)).data * w).sum())

    bn = BatchNorm1d(2)
    t = Tensor(x.copy(), requires_grad=True)
    (bn(t) * w).sum().backward()
    np.testing.assert_allclose(t.grad, numeric_grad(loss_of, x.copy()), atol=1e-5)


def test_batchnorm_validation():
    with pytest.raises(ValueError):
        BatchNorm1d(0)
    with pytest.raises(ValueError):
        BatchNorm1d(3, momentum=0.0)
    with pytest.raises(ValueError):
        BatchNorm1d(3, eps=0.0)
    bn = BatchNorm1d(3)
    with pytest.raises(ValueError):
        bn(Tensor(np.zeros((4, 5))))


# --------------------------------------------------------------------- #
# Dropout
# --------------------------------------------------------------------- #
def test_dropout_zeroes_and_rescales():
    rng = np.random.default_rng(0)
    drop = Dropout(0.5, rng)
    x = Tensor(np.ones((2000, 4)), requires_grad=True)
    out = drop(x).data
    zero_rate = (out == 0.0).mean()
    assert 0.45 < zero_rate < 0.55
    # Survivors are scaled by 1/keep, preserving the expectation.
    assert abs(out.mean() - 1.0) < 0.05
    assert set(np.unique(out)) <= {0.0, 2.0}


def test_dropout_identity_at_inference():
    rng = np.random.default_rng(1)
    drop = Dropout(0.9, rng)
    x = Tensor(np.ones((10, 3)))
    with no_grad():
        out = drop(x)
    assert out is x


def test_dropout_zero_rate_is_identity():
    drop = Dropout(0.0, np.random.default_rng(0))
    x = Tensor(np.ones((5, 2)), requires_grad=True)
    assert drop(x) is x


def test_dropout_gradient_masked():
    rng = np.random.default_rng(2)
    drop = Dropout(0.5, rng)
    x = Tensor(np.ones((100, 4)), requires_grad=True)
    out = drop(x)
    out.sum().backward()
    # Gradient is zero exactly where activations were dropped.
    np.testing.assert_array_equal((x.grad == 0.0), (out.data == 0.0))


def test_dropout_validation():
    with pytest.raises(ValueError):
        Dropout(1.0, np.random.default_rng(0))
    with pytest.raises(ValueError):
        Dropout(-0.1, np.random.default_rng(0))
