"""Checkpoint/resume: schema round-trips and bit-identical continuation.

The headline guarantee (ISSUE acceptance criterion): a campaign killed at
evaluation N and resumed from its checkpoint produces a final history
*identical* to the uninterrupted run — same configs, same objectives, same
timestamps.  That requires every stochastic component (search rng, BO
tell-history + rng, evaluator clock/queues/event counters, fault-injector
rng) to round-trip through the checkpoint.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core import AgE, AgEBO, load_checkpoint, save_checkpoint
from repro.core.serialization import (
    CHECKPOINT_VERSION,
    history_to_dict,
    record_from_dict,
    record_to_dict,
)
from repro.searchspace import ArchitectureSpace
from repro.searchspace.hpspace import default_dataparallel_space
from repro.workflow import (
    EvaluationResult,
    FaultInjector,
    FaultPolicy,
    SimulatedEvaluator,
)


def fake_eval(config):
    """Deterministic stand-in keyed on the full config."""
    arch_part = int(np.sum(config.arch * np.arange(1, config.arch.size + 1)))
    hp = config.hyperparameters
    h = (arch_part * 31 + int(hp["num_ranks"]) * 7 + int(hp["batch_size"])) % 1013
    return EvaluationResult(
        objective=0.3 + 0.6 * (h / 1013.0),
        duration=3.0 + (h % 13),
        metadata={"h": h},
    )


def build_agebo(run_function, seed=7, num_workers=8, policy=None):
    space = ArchitectureSpace(num_nodes=3)
    hp_space = default_dataparallel_space(max_ranks=4)
    ev = SimulatedEvaluator(run_function, num_workers=num_workers, fault_policy=policy)
    return AgEBO(
        space, hp_space, ev,
        population_size=10, sample_size=3, n_initial_points=5, seed=seed,
    )


# --------------------------------------------------------------------- #
# Schema round-trip
# --------------------------------------------------------------------- #
def test_checkpoint_version_round_trip(tmp_path):
    search = build_agebo(fake_eval)
    search.search(max_evaluations=8)
    path = tmp_path / "ck.json"
    save_checkpoint(search, path, extra={"note": "hello"})
    data = load_checkpoint(path)
    assert data["version"] == CHECKPOINT_VERSION
    assert data["algorithm"] == "AgEBO"
    assert data["extra"] == {"note": "hello"}
    assert "search" in data
    # The file is plain JSON — re-serializable as-is.
    assert json.loads(path.read_text())["version"] == CHECKPOINT_VERSION


def test_checkpoint_version_mismatch_rejected(tmp_path):
    search = build_agebo(fake_eval)
    search.search(max_evaluations=4)
    path = tmp_path / "ck.json"
    save_checkpoint(search, path)
    data = json.loads(path.read_text())
    data["version"] = CHECKPOINT_VERSION + 99
    path.write_text(json.dumps(data))
    with pytest.raises(ValueError, match="version"):
        load_checkpoint(path)


def test_checkpoint_missing_search_rejected(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"version": CHECKPOINT_VERSION}))
    with pytest.raises(ValueError):
        load_checkpoint(path)


def test_checkpoint_write_is_atomic(tmp_path):
    search = build_agebo(fake_eval)
    search.search(max_evaluations=4)
    path = tmp_path / "ck.json"
    save_checkpoint(search, path)
    assert not list(tmp_path.glob("*.tmp"))  # temp file replaced, not left over


def test_record_round_trip_preserves_rich_metadata():
    search = build_agebo(fake_eval)
    history = search.search(max_evaluations=4)
    rec = history.records[0]
    row = record_to_dict(rec, rich_metadata=True)
    back = record_from_dict(row)
    assert back.objective == rec.objective
    assert back.duration == rec.duration
    assert np.array_equal(back.config.arch, rec.config.arch)
    assert back.config.hyperparameters == rec.config.hyperparameters
    assert back.metadata.get("h") == rec.metadata.get("h")


# --------------------------------------------------------------------- #
# Bit-identical resume
# --------------------------------------------------------------------- #
def assert_identical_history(a, b):
    da, db = history_to_dict(a), history_to_dict(b)
    assert len(da["records"]) == len(db["records"])
    assert da == db


def test_agebo_resume_is_bit_identical(tmp_path):
    # Uninterrupted reference run.
    full = build_agebo(fake_eval).search(max_evaluations=32)

    # Interrupted run: checkpoint every iteration, stop at 16.
    path = tmp_path / "ck.json"
    interrupted = build_agebo(fake_eval)
    interrupted.search(max_evaluations=16, checkpoint_path=path, checkpoint_every=1)

    space = ArchitectureSpace(num_nodes=3)
    hp_space = default_dataparallel_space(max_ranks=4)
    resumed = AgEBO.resume(path, space, hp_space, fake_eval)
    history = resumed.search(max_evaluations=32)
    assert_identical_history(full, history)


def test_agebo_resume_under_faults_is_bit_identical(tmp_path):
    """Resume replays the injector's rng too, so the same faults recur."""
    policy = FaultPolicy(
        on_error="retry", max_retries=2, retry_backoff=1.0, timeout=60.0
    )
    make_injector = lambda: FaultInjector(
        fake_eval, crash_prob=0.2, hang_prob=0.1, seed=3
    )

    full = build_agebo(make_injector(), policy=policy).search(max_evaluations=32)

    path = tmp_path / "ck.json"
    interrupted = build_agebo(make_injector(), policy=policy)
    interrupted.search(max_evaluations=16, checkpoint_path=path, checkpoint_every=1)

    space = ArchitectureSpace(num_nodes=3)
    hp_space = default_dataparallel_space(max_ranks=4)
    resumed = AgEBO.resume(path, space, hp_space, make_injector())
    history = resumed.search(max_evaluations=32)
    assert_identical_history(full, history)
    assert interrupted.evaluator.num_failures > 0  # faults actually fired


def test_age_resume_is_bit_identical(tmp_path):
    space = ArchitectureSpace(num_nodes=3)
    hps = {"batch_size": 64, "learning_rate": 0.01, "num_ranks": 2}

    def run(seed=5):
        ev = SimulatedEvaluator(fake_eval, num_workers=4)
        return AgE(space, ev, hyperparameters=hps,
                   population_size=8, sample_size=3, seed=seed)

    full = run().search(max_evaluations=24)

    path = tmp_path / "ck.json"
    run().search(max_evaluations=12, checkpoint_path=path, checkpoint_every=1)
    resumed = AgE.resume(path, space, fake_eval)
    history = resumed.search(max_evaluations=24)
    assert_identical_history(full, history)


def test_resume_restores_bo_observations(tmp_path):
    path = tmp_path / "ck.json"
    interrupted = build_agebo(fake_eval)
    interrupted.search(max_evaluations=16, checkpoint_path=path, checkpoint_every=1)
    n_obs = interrupted.optimizer.num_observations
    rng_state = interrupted.optimizer._rng.bit_generator.state

    space = ArchitectureSpace(num_nodes=3)
    hp_space = default_dataparallel_space(max_ranks=4)
    resumed = AgEBO.resume(path, space, hp_space, fake_eval)
    # The checkpoint is written at the last quiescent iteration boundary,
    # which may trail the in-memory search by at most one iteration.
    n_resumed = resumed.optimizer.num_observations
    assert n_resumed >= n_obs - interrupted.num_workers
    assert n_resumed > 0
    assert resumed.optimizer._y == pytest.approx(interrupted.optimizer._y[:n_resumed])
    if n_resumed == n_obs:
        assert resumed.optimizer._rng.bit_generator.state == rng_state


def test_checkpoint_every_throttles_writes(tmp_path, monkeypatch):
    writes = {"n": 0}
    import repro.core.search as search_mod
    original = search_mod.AgingEvolutionBase.checkpoint

    def counting(self, path):
        writes["n"] += 1
        original(self, path)

    monkeypatch.setattr(search_mod.AgingEvolutionBase, "checkpoint", counting)
    path = tmp_path / "ck.json"
    search = build_agebo(fake_eval)
    search.search(max_evaluations=16, checkpoint_path=path, checkpoint_every=4)
    assert 0 < writes["n"] <= 4 + 1  # every 4th iteration (+ final)
