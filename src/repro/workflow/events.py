"""A tiny deterministic discrete-event queue.

Events are ``(time, payload)`` pairs; ties are broken by insertion order so
simulations are fully deterministic regardless of payload type.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Iterator

__all__ = ["EventQueue"]


class EventQueue:
    """Min-heap of timestamped events with FIFO tie-breaking."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Any]] = []
        self._counter = itertools.count()

    def push(self, time: float, payload: Any) -> None:
        if time < 0:
            raise ValueError(f"event time must be >= 0, got {time}")
        heapq.heappush(self._heap, (float(time), next(self._counter), payload))

    def pop(self) -> tuple[float, Any]:
        """Remove and return the earliest ``(time, payload)``."""
        if not self._heap:
            raise IndexError("pop from empty EventQueue")
        time, _, payload = heapq.heappop(self._heap)
        return time, payload

    def peek_time(self) -> float:
        if not self._heap:
            raise IndexError("peek on empty EventQueue")
        return self._heap[0][0]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def drain_until(self, time: float) -> Iterator[tuple[float, Any]]:
        """Yield all events with timestamp <= ``time`` in order."""
        while self._heap and self._heap[0][0] <= time:
            yield self.pop()

    # ------------------------------------------------------------------ #
    # Checkpoint support: tie-breaking counters are part of the state, so
    # a restored queue drains in exactly the order the original would have.
    def entries(self) -> list[tuple[float, int, Any]]:
        """All ``(time, counter, payload)`` entries in drain order."""
        return sorted(self._heap)

    def restore(self, entries: list[tuple[float, int, Any]], next_counter: int) -> None:
        """Replace the queue contents and resume counting at ``next_counter``."""
        self._heap = [(float(t), int(c), payload) for t, c, payload in entries]
        heapq.heapify(self._heap)
        self._counter = itertools.count(next_counter)
