"""Principal component analysis from scratch (for Fig. 7).

Implemented via thin SVD of the centered data matrix — the numerically
preferred route (guides: prefer ``scipy``/LAPACK SVD over explicit
covariance eigendecomposition, and ask for the economy decomposition).
"""

from __future__ import annotations

import numpy as np
from scipy import linalg

__all__ = ["PCA"]


class PCA:
    """Thin-SVD PCA with explained-variance reporting.

    Parameters
    ----------
    n_components:
        Number of principal directions to keep (2 for Fig. 7).
    """

    def __init__(self, n_components: int = 2) -> None:
        if n_components < 1:
            raise ValueError("n_components must be >= 1")
        self.n_components = n_components
        self.mean_: np.ndarray | None = None
        self.components_: np.ndarray | None = None  # (k, d)
        self.explained_variance_ratio_: np.ndarray | None = None

    def fit(self, X: np.ndarray) -> "PCA":
        X = np.asarray(X, dtype=float)
        if X.ndim != 2 or X.shape[0] < 2:
            raise ValueError(f"need a 2-D matrix with >= 2 rows, got shape {X.shape}")
        k = min(self.n_components, min(X.shape))
        self.mean_ = X.mean(axis=0)
        centered = X - self.mean_
        _, s, vt = linalg.svd(centered, full_matrices=False)
        var = s**2
        total = var.sum()
        self.components_ = vt[:k]
        self.explained_variance_ratio_ = (
            var[:k] / total if total > 0 else np.zeros(k)
        )
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.components_ is None:
            raise RuntimeError("PCA is not fitted")
        return (np.asarray(X, dtype=float) - self.mean_) @ self.components_.T

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)
