"""Evaluator backends implementing the submit/gather interface.

Algorithm 1 interacts with the cluster only through two calls —
``submit_evaluation`` (non-blocking) and ``get_finished_evaluations`` —
mirroring DeepHyper/Balsam.  Both backends here expose exactly that:

- :class:`SimulatedEvaluator` advances a simulated clock to the next job
  completion; the *results* are computed by genuinely running the
  evaluation function at submit time, while the *completion time* comes
  from the ``duration`` the function reports (the training-cost model).
- :class:`ThreadedEvaluator` runs evaluation functions concurrently on a
  thread pool; ``gather`` blocks until at least one finishes.

Both honor the same :class:`~repro.workflow.faults.FaultPolicy` (retries
with exponential backoff, per-job timeouts, penalized results), and the
simulated backend additionally models worker failures: a worker dies at a
scheduled time, its in-flight job is rescheduled on a surviving worker.
The simulated backend is fully checkpointable via ``state_dict`` /
``load_state`` so a killed campaign resumes bit-identically.
"""

from __future__ import annotations

import collections
import dataclasses
import threading
import time as _time
from concurrent.futures import FIRST_COMPLETED, Future, ThreadPoolExecutor, wait
from typing import Any, Callable, Iterable, Sequence

from repro.workflow.events import EventQueue
from repro.workflow.faults import FaultPolicy
from repro.workflow.jobs import EvaluationResult, Job, JobState, job_from_dict, job_to_dict

__all__ = ["Evaluator", "SimulatedEvaluator", "ThreadedEvaluator"]

RunFunction = Callable[[Any], EvaluationResult]


def _resolve_policy(
    fault_policy: FaultPolicy | None,
    on_error: str | None,
    failure_objective: float | None,
    failure_duration: float | None,
) -> FaultPolicy:
    """Merge the legacy keyword surface into a FaultPolicy."""
    policy = fault_policy or FaultPolicy()
    overrides: dict[str, Any] = {}
    if on_error is not None:
        overrides["on_error"] = on_error
    if failure_objective is not None:
        overrides["failure_objective"] = failure_objective
    if failure_duration is not None:
        overrides["failure_duration"] = failure_duration
    return dataclasses.replace(policy, **overrides) if overrides else policy


class Evaluator:
    """Abstract manager-worker evaluator.

    ``event_bus`` is an optional campaign event bus (attached by
    :func:`repro.campaign.build_campaign`); backends emit job lifecycle
    events (:class:`~repro.campaign.events.JobSubmitted`, ``JobGathered``,
    ``JobRetried``, ``WorkerDied``) through it when set.
    """

    event_bus = None

    def _emit_submitted(self, job: Job) -> None:
        if self.event_bus is not None:
            from repro.campaign.events import JobSubmitted

            self.event_bus.emit(JobSubmitted(job_id=job.job_id, time=job.submit_time))

    def _emit_gathered(self, job: Job) -> None:
        if self.event_bus is not None:
            from repro.campaign.events import JobGathered

            self.event_bus.emit(
                JobGathered(
                    job_id=job.job_id,
                    time=self.now,
                    objective=job.result.objective,
                    duration=job.result.duration,
                    submit_time=job.submit_time,
                    start_time=job.start_time,
                    end_time=job.end_time,
                    worker=job.worker,
                    failed=job.state is JobState.FAILED,
                    retries=job.retries,
                )
            )

    def _emit_retried(self, job: Job) -> None:
        if self.event_bus is not None:
            from repro.campaign.events import JobRetried

            self.event_bus.emit(
                JobRetried(
                    job_id=job.job_id,
                    time=self.now,
                    retries=job.retries,
                    error=job.error,
                )
            )

    def submit(self, configs: Sequence[Any]) -> list[Job]:
        """Queue configurations for evaluation; returns the job records."""
        raise NotImplementedError

    def gather(self) -> list[Job]:
        """Return at least one finished job (empty only if none in flight)."""
        raise NotImplementedError

    @property
    def now(self) -> float:
        """Current time in minutes (simulated or wall-clock)."""
        raise NotImplementedError

    @property
    def num_in_flight(self) -> int:
        raise NotImplementedError

    # -- checkpointing (optional per backend) -------------------------- #
    def state_dict(self) -> dict[str, Any]:
        raise NotImplementedError(f"{type(self).__name__} does not support checkpointing")

    def load_state(self, state: dict[str, Any]) -> None:
        raise NotImplementedError(f"{type(self).__name__} does not support checkpointing")


class SimulatedEvaluator(Evaluator):
    """Event-driven simulation of a ``num_workers``-node cluster.

    Parameters
    ----------
    run_function:
        Called once per attempt (at start time); must return an
        :class:`EvaluationResult` whose ``duration`` is in simulated
        minutes.
    num_workers:
        W in the paper (128 on Theta; scaled down in the benches).
    fault_policy:
        Uniform failure handling (see :class:`FaultPolicy`).  The legacy
        ``on_error`` / ``failure_objective`` / ``failure_duration``
        keywords override the corresponding policy fields.
    worker_failures:
        Optional ``(time_minutes, worker_id)`` pairs: the worker dies
        permanently at that simulated time; a job running on it is
        rescheduled (front of the queue) on a surviving worker.

    Notes
    -----
    Jobs submitted while all workers are busy wait in a FIFO queue and are
    started when a worker frees — their results are computed lazily at
    start so the run function observes correct ordering.  Worker busy time
    is tracked for the node-utilization analysis (§IV-C, ≈94%);
    ``utilization()`` is busy worker-minutes over *alive* worker-minutes,
    so dead workers stop counting against the denominator.
    """

    def __init__(
        self,
        run_function: RunFunction,
        num_workers: int,
        on_error: str | None = None,
        failure_objective: float | None = None,
        failure_duration: float | None = None,
        fault_policy: FaultPolicy | None = None,
        worker_failures: Iterable[tuple[float, int]] | None = None,
    ) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.run_function = run_function
        self.num_workers = num_workers
        self.fault_policy = _resolve_policy(
            fault_policy, on_error, failure_objective, failure_duration
        )
        self.num_failures = 0
        self.num_retries = 0
        self.num_timeouts = 0
        self.num_worker_failures = 0
        self._clock = 0.0
        self._events = EventQueue()  # payload: (kind, ref, attempt)
        self._free_workers = list(range(num_workers - 1, -1, -1))
        self._dead_workers: set[int] = set()
        self._running: dict[int, Job] = {}  # worker -> job
        self._waiting: collections.deque[Job] = collections.deque()
        self._next_id = 0
        self._in_flight = 0
        self._busy_time = 0.0
        self._capacity_time = 0.0  # integral of alive workers over time
        self.jobs: list[Job] = []
        for fail_time, worker in worker_failures or ():
            if not 0 <= worker < num_workers:
                raise ValueError(f"worker_failures names unknown worker {worker}")
            self._events.push(float(fail_time), ("worker_fail", worker, 0))

    # ------------------------------------------------------------------ #
    # Legacy accessors kept for the pre-FaultPolicy API
    @property
    def on_error(self) -> str:
        return self.fault_policy.on_error

    @property
    def failure_objective(self) -> float:
        return self.fault_policy.failure_objective

    @property
    def failure_duration(self) -> float:
        return self.fault_policy.failure_duration

    # ------------------------------------------------------------------ #
    @property
    def now(self) -> float:
        return self._clock

    @property
    def num_in_flight(self) -> int:
        return self._in_flight

    @property
    def num_free_workers(self) -> int:
        return len(self._free_workers)

    @property
    def num_alive_workers(self) -> int:
        return self.num_workers - len(self._dead_workers)

    def utilization(self) -> float:
        """Busy worker-minutes over available (alive) worker-minutes so far."""
        if self._capacity_time == 0.0:
            return 0.0
        return self._busy_time / self._capacity_time

    # ------------------------------------------------------------------ #
    def submit(self, configs: Sequence[Any]) -> list[Job]:
        out = []
        for config in configs:
            job = Job(job_id=self._next_id, config=config, submit_time=self._clock)
            self._next_id += 1
            self.jobs.append(job)
            self._in_flight += 1
            self._emit_submitted(job)
            if self._free_workers:
                self._start(job)
            else:
                self._waiting.append(job)
            out.append(job)
        return out

    def _start(self, job: Job) -> None:
        """Run one attempt of ``job`` on a free worker."""
        policy = self.fault_policy
        worker = self._free_workers.pop()
        job.worker = worker
        job.state = JobState.RUNNING
        job.start_time = self._clock
        job.attempt += 1
        self._running[worker] = job
        failure: str | None = None
        attempt_duration = policy.failure_duration
        result: EvaluationResult | None = None
        try:
            result = self.run_function(job.config)
        except Exception as exc:
            if policy.on_error == "raise":
                raise
            failure = repr(exc)
        else:
            if policy.timeout is not None and result.duration > policy.timeout:
                failure = f"timeout after {policy.timeout} min (duration {result.duration:.2f})"
                attempt_duration = policy.timeout
                self.num_timeouts += 1
            else:
                failure = policy.classify(result)
                if failure is not None:
                    attempt_duration = result.duration
                if failure is not None and policy.on_error == "raise":
                    raise RuntimeError(f"job {job.job_id}: {failure}")
        if failure is None:
            assert result is not None
            job.result = result
            job.end_time = self._clock + result.duration
            self._events.push(job.end_time, ("finish", job, job.attempt))
            return
        # Failed attempt: the worker is occupied for the attempt duration.
        job.error = failure
        self.num_failures += 1
        if policy.should_retry(job.retries):
            self._events.push(self._clock + attempt_duration, ("fail", job, job.attempt))
        else:
            job.result = policy.failure_result(failure, attempt_duration)
            job.end_time = self._clock + attempt_duration
            self._events.push(job.end_time, ("finish", job, job.attempt))

    # ------------------------------------------------------------------ #
    def _advance(self, t: float) -> None:
        if t > self._clock:
            self._capacity_time += self.num_alive_workers * (t - self._clock)
            self._clock = t

    def _release_worker(self, worker: int) -> None:
        self._running.pop(worker, None)
        if worker not in self._dead_workers:
            self._free_workers.append(worker)

    def _fill_workers(self) -> None:
        while self._waiting and self._free_workers:
            self._start(self._waiting.popleft())

    def _on_worker_fail(self, worker: int) -> None:
        if worker in self._dead_workers:
            return
        self._dead_workers.add(worker)
        self.num_worker_failures += 1
        if self.event_bus is not None:
            from repro.campaign.events import WorkerDied

            self.event_bus.emit(WorkerDied(worker=worker, time=self._clock))
        if worker in self._free_workers:
            self._free_workers.remove(worker)
        job = self._running.pop(worker, None)
        if job is not None:
            # The in-flight job is rescheduled at the front of the queue;
            # bumping ``attempt`` invalidates its pending completion event.
            self._busy_time += self._clock - job.start_time
            job.attempt += 1
            job.worker = -1
            job.state = JobState.PENDING
            self._waiting.appendleft(job)

    def gather(self) -> list[Job]:
        """Advance the clock until at least one job finishes; return them."""
        while self._events:
            next_time = self._events.peek_time()
            finished: list[Job] = []
            for end_time, (kind, ref, attempt) in self._events.drain_until(next_time):
                self._advance(end_time)
                if kind == "worker_fail":
                    self._on_worker_fail(ref)
                    continue
                job = ref
                if job.attempt != attempt:
                    continue  # stale event from a dead worker's attempt
                if kind == "finish":
                    job.state = (
                        JobState.FAILED if job.result.metadata.get("failed") else JobState.DONE
                    )
                    self._busy_time += end_time - job.start_time
                    self._release_worker(job.worker)
                    self._in_flight -= 1
                    finished.append(job)
                elif kind == "fail":
                    self._busy_time += end_time - job.start_time
                    self._release_worker(job.worker)
                    job.retries += 1
                    self.num_retries += 1
                    job.state = JobState.RETRYING
                    job.worker = -1
                    self._emit_retried(job)
                    delay = self.fault_policy.backoff_minutes(job.retries)
                    if delay > 0:
                        self._events.push(self._clock + delay, ("retry", job, job.attempt))
                    else:
                        self._waiting.append(job)
                elif kind == "retry":
                    self._waiting.append(job)
            # Start queued jobs on the workers that just freed.
            self._fill_workers()
            if finished:
                for job in finished:
                    self._emit_gathered(job)
                return finished
        if self._in_flight:
            raise RuntimeError(
                f"evaluator deadlocked: {self._in_flight} job(s) in flight but all "
                f"{self.num_workers} workers are dead"
            )
        return []

    # ------------------------------------------------------------------ #
    # Checkpointing
    # ------------------------------------------------------------------ #
    def state_dict(self) -> dict[str, Any]:
        """JSON-safe snapshot of the full cluster state (jobs, queue, clock)."""
        entries = self._events.entries()

        def encode_ref(kind: str, ref: Any) -> Any:
            return ref if kind == "worker_fail" else ref.job_id

        state = {
            "num_workers": self.num_workers,
            "clock": self._clock,
            "busy_time": self._busy_time,
            "capacity_time": self._capacity_time,
            "next_id": self._next_id,
            "in_flight": self._in_flight,
            "num_failures": self.num_failures,
            "num_retries": self.num_retries,
            "num_timeouts": self.num_timeouts,
            "num_worker_failures": self.num_worker_failures,
            "free_workers": list(self._free_workers),
            "dead_workers": sorted(self._dead_workers),
            "running": {str(w): job.job_id for w, job in self._running.items()},
            "waiting": [job.job_id for job in self._waiting],
            "events": [
                [t, c, kind, encode_ref(kind, ref), attempt]
                for t, c, (kind, ref, attempt) in entries
            ],
            "event_counter": max((c for _, c, _ in entries), default=-1) + 1,
            "jobs": [job_to_dict(job) for job in self.jobs],
            "policy": dataclasses.asdict(self.fault_policy),
        }
        if hasattr(self.run_function, "getstate"):
            state["run_function_state"] = self.run_function.getstate()
        return state

    def load_state(self, state: dict[str, Any]) -> None:
        """Restore a snapshot taken by :meth:`state_dict`."""
        if state["num_workers"] != self.num_workers:
            raise ValueError(
                f"checkpoint has {state['num_workers']} workers, evaluator has "
                f"{self.num_workers}"
            )
        self.fault_policy = FaultPolicy(**state["policy"])
        self._clock = float(state["clock"])
        self._busy_time = float(state["busy_time"])
        self._capacity_time = float(state["capacity_time"])
        self._next_id = int(state["next_id"])
        self._in_flight = int(state["in_flight"])
        self.num_failures = int(state["num_failures"])
        self.num_retries = int(state["num_retries"])
        self.num_timeouts = int(state["num_timeouts"])
        self.num_worker_failures = int(state["num_worker_failures"])
        self._free_workers = [int(w) for w in state["free_workers"]]
        self._dead_workers = {int(w) for w in state["dead_workers"]}
        self.jobs = [job_from_dict(row) for row in state["jobs"]]
        by_id = {job.job_id: job for job in self.jobs}
        self._running = {int(w): by_id[jid] for w, jid in state["running"].items()}
        self._waiting = collections.deque(by_id[jid] for jid in state["waiting"])
        self._events.restore(
            [
                (t, c, (kind, ref if kind == "worker_fail" else by_id[ref], attempt))
                for t, c, kind, ref, attempt in state["events"]
            ],
            int(state["event_counter"]),
        )
        if "run_function_state" in state and hasattr(self.run_function, "setstate"):
            self.run_function.setstate(state["run_function_state"])


class ThreadedEvaluator(Evaluator):
    """Real concurrent evaluation on a thread pool.

    Time is wall-clock minutes since construction.  The reported job
    duration is the run function's declared duration unless
    ``measure_wall_time=True``, in which case the measured elapsed time
    (in minutes) replaces it.

    The :class:`FaultPolicy` surface matches :class:`SimulatedEvaluator`
    (API parity): exceptions and invalid objectives are raised, penalized
    or retried; ``timeout`` (wall-clock minutes) abandons stragglers — the
    worker thread keeps running but the job is finalized with a penalized
    result so the campaign never blocks on a hung evaluation.  Retries are
    resubmitted immediately (exponential backoff is a simulated-minutes
    concept; sleeping real minutes would stall the pool).
    """

    def __init__(
        self,
        run_function: RunFunction,
        num_workers: int,
        measure_wall_time: bool = False,
        on_error: str | None = None,
        failure_objective: float | None = None,
        failure_duration: float | None = None,
        fault_policy: FaultPolicy | None = None,
    ) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.run_function = run_function
        self.num_workers = num_workers
        self.measure_wall_time = measure_wall_time
        self.fault_policy = _resolve_policy(
            fault_policy, on_error, failure_objective, failure_duration
        )
        self.num_failures = 0
        self.num_retries = 0
        self.num_timeouts = 0
        self._pool = ThreadPoolExecutor(max_workers=num_workers)
        self._t0 = _time.perf_counter()
        self._futures: dict[Future, Job] = {}
        self._completed: collections.deque[Job] = collections.deque()
        self._busy_time = 0.0
        self._lock = threading.Lock()
        self._next_id = 0
        self.jobs: list[Job] = []

    # ------------------------------------------------------------------ #
    @property
    def on_error(self) -> str:
        return self.fault_policy.on_error

    @property
    def failure_objective(self) -> float:
        return self.fault_policy.failure_objective

    @property
    def failure_duration(self) -> float:
        return self.fault_policy.failure_duration

    @property
    def now(self) -> float:
        return (_time.perf_counter() - self._t0) / 60.0

    @property
    def num_in_flight(self) -> int:
        with self._lock:
            return len(self._futures) + len(self._completed)

    def utilization(self) -> float:
        """Measured busy worker-minutes over elapsed worker-minutes."""
        elapsed = self.now
        if elapsed == 0.0:
            return 0.0
        return self._busy_time / (self.num_workers * elapsed)

    # ------------------------------------------------------------------ #
    def submit(self, configs: Sequence[Any]) -> list[Job]:
        out = []
        for config in configs:
            with self._lock:
                job = Job(job_id=self._next_id, config=config, submit_time=self.now)
                self._next_id += 1
                self.jobs.append(job)
            self._emit_submitted(job)
            self._dispatch(job)
            out.append(job)
        return out

    def _dispatch(self, job: Job) -> None:
        future = self._pool.submit(self._run, job)
        with self._lock:
            self._futures[future] = job

    def _run(self, job: Job) -> None:
        with self._lock:
            job.state = JobState.RUNNING
            job.start_time = self.now
            job.attempt += 1
            my_attempt = job.attempt
        t0 = _time.perf_counter()
        result = self.run_function(job.config)
        elapsed_min = (_time.perf_counter() - t0) / 60.0
        if self.measure_wall_time:
            result = EvaluationResult(result.objective, elapsed_min, result.metadata)
        with self._lock:
            # An abandoned (timed-out) attempt must not clobber its retry.
            if job.attempt == my_attempt:
                job.result = result

    def _finalize(self, job: Job, state: JobState) -> None:
        job.end_time = self.now
        job.state = state
        self._busy_time += max(0.0, job.end_time - job.start_time)

    def _handle_failure(self, job: Job, error: str, finished: list[Job]) -> None:
        """Penalize or retry one failed attempt (policy is not 'raise')."""
        policy = self.fault_policy
        job.error = error
        self.num_failures += 1
        if policy.should_retry(job.retries):
            job.retries += 1
            self.num_retries += 1
            job.state = JobState.RETRYING
            self._emit_retried(job)
            self._dispatch(job)
        else:
            job.result = policy.failure_result(error)
            self._finalize(job, JobState.FAILED)
            finished.append(job)

    def gather(self) -> list[Job]:
        """Block until at least one job finishes; return all finished jobs.

        All completed futures are collected before any exception is
        re-raised, so sibling finished jobs are never dropped: with
        ``on_error="raise"`` they are buffered and returned by the next
        ``gather`` call.
        """
        policy = self.fault_policy
        while True:
            with self._lock:
                finished = list(self._completed)
                self._completed.clear()
                pending = dict(self._futures)
            if not pending:
                for job in finished:
                    self._emit_gathered(job)
                return finished
            wait_timeout: float | None = None
            if policy.timeout is not None:
                deadlines = [
                    job.start_time + policy.timeout
                    for job in pending.values()
                    if job.state is JobState.RUNNING
                ]
                if deadlines:
                    wait_timeout = max(0.0, (min(deadlines) - self.now) * 60.0) + 1e-3
            done, _ = wait(pending.keys(), timeout=wait_timeout, return_when=FIRST_COMPLETED)
            first_error: BaseException | None = None
            for future in done:
                with self._lock:
                    job = self._futures.pop(future, None)
                if job is None:
                    continue  # already abandoned by a timeout
                exc = future.exception()
                if exc is None:
                    error = policy.classify(job.result)
                    if error is None:
                        self._finalize(job, JobState.DONE)
                        finished.append(job)
                        continue
                    exc = RuntimeError(f"job {job.job_id}: {error}")
                if policy.on_error == "raise":
                    job.error = repr(exc)
                    self._finalize(job, JobState.FAILED)
                    first_error = first_error or exc
                else:
                    self._handle_failure(job, repr(exc), finished)
            # Reap stragglers past the policy deadline (threads cannot be
            # killed; the job is finalized and the thread abandoned).
            if policy.timeout is not None:
                now = self.now
                for future, job in pending.items():
                    if future in done or job.state is not JobState.RUNNING:
                        continue
                    if now >= job.start_time + policy.timeout:
                        with self._lock:
                            self._futures.pop(future, None)
                        future.cancel()
                        self.num_timeouts += 1
                        error = f"timeout after {policy.timeout} min"
                        if policy.on_error == "raise":
                            self._finalize(job, JobState.FAILED)
                            job.error = error
                            first_error = first_error or TimeoutError(
                                f"job {job.job_id}: {error}"
                            )
                        else:
                            self._handle_failure(job, error, finished)
            if first_error is not None:
                with self._lock:
                    self._completed.extend(finished)
                raise first_error
            if finished:
                for job in finished:
                    self._emit_gathered(job)
                return finished

    def shutdown(self) -> None:
        self._pool.shutdown(wait=True)
