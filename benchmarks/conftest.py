"""Benchmark-suite configuration.

The bench tests use ``benchmark.pedantic(..., rounds=1)``: each experiment
is a full (simulated-cluster) search campaign, so statistical re-running is
neither meaningful nor affordable.  The payload of each bench is the table
it prints and persists under ``benchmarks/results/``.
"""

import sys
from pathlib import Path

# Make `import common` work when pytest is invoked from the repo root.
sys.path.insert(0, str(Path(__file__).parent))
