"""Table III: data-parallel hyperparameters of the top-5 models per data set.

Paper: different data sets select different (bs, lr, n) — e.g. Covertype's
top models used n=1, Dionis's n=4 — while within a data set the top-5
configurations cluster tightly.  This is the evidence for *data-set-specific*
tuning of data-parallel training.
"""

from __future__ import annotations

import numpy as np

from common import format_table, report, run_search
from repro.analysis import top_k_hyperparameter_table
from repro.datasets import dataset_names


def run_experiment():
    tables = {}
    for name in dataset_names():
        history, _ = run_search(name, "AgEBO", seed=0)
        tables[name] = top_k_hyperparameter_table(history, k=5)
    return tables


def test_table3_best_hyperparameters(benchmark):
    tables = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = []
    for name, top in tables.items():
        for entry in top:
            rows.append(
                [
                    name,
                    entry["batch_size"],
                    round(entry["learning_rate"], 6),
                    entry["num_ranks"],
                    round(entry["validation_accuracy"], 5),
                ]
            )
    report(
        "table3_best_hps",
        format_table(
            "Table III — hyperparameters of the top-5 AgEBO models per data set",
            ["dataset", "batch size", "learning rate", "num ranks", "val accuracy"],
            rows,
        ),
    )
    # Within-dataset clustering: log-lr spread of the top 5 is small
    # relative to the full searchable range (log10(0.1/0.001) = 2 decades).
    for name, top in tables.items():
        lrs = np.log10([e["learning_rate"] for e in top])
        assert lrs.std() < 0.75, name
    # Across data sets the selected configurations are not all identical.
    signatures = {
        (tuple(sorted({e["num_ranks"] for e in top})), tuple(sorted({e["batch_size"] for e in top})))
        for top in tables.values()
    }
    assert len(signatures) > 1
