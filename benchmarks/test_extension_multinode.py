"""Extension bench (paper future-work item 2): multi-node scaling.

Extends the single-node cost model to a hierarchical (intra-node ring +
inter-node ring) allreduce and sweeps rank counts across node boundaries,
printing where the network term bends the scaling curve — the regime the
paper defers to future work.
"""

from __future__ import annotations

from common import format_table, report
from repro.dataparallel import MultiNodeCostModel, TrainingCostModel

# A 2M-parameter network: large enough that gradient traffic matters at
# the node boundary (the regime multi-node data parallelism targets).
PARAMS = 2_000_000
TRAIN = 244_025
BS = 256
EPOCHS = 20
RANKS = (1, 2, 4, 8, 16, 32, 64)


def run_experiment():
    single = TrainingCostModel()
    multi = MultiNodeCostModel(ranks_per_node=8)
    slow = MultiNodeCostModel(ranks_per_node=8, network_bandwidth_Bps=0.125e9)
    t1 = multi.training_minutes(PARAMS, TRAIN, BS, 1, EPOCHS)
    rows = []
    for n in RANKS:
        tm = multi.training_minutes(PARAMS, TRAIN, BS, n, EPOCHS)
        ts = slow.training_minutes(PARAMS, TRAIN, BS, n, EPOCHS)
        rows.append(
            [
                n,
                multi.num_nodes(n),
                round(tm, 2),
                round(t1 / tm, 2),
                round(ts, 2),
                round(t1 / ts, 2),
            ]
        )
    return rows


def test_extension_multinode(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report(
        "extension_multinode",
        format_table(
            "Extension — multi-node data-parallel scaling (hierarchical allreduce)",
            ["ranks", "nodes", "100Gb/s time (min)", "speedup", "10Gb/s time (min)", "speedup"],
            rows,
        ),
    )
    speedups = [r[3] for r in rows]
    # Speedup is monotone in ranks and never exceeds the rank count.
    assert all(b >= a for a, b in zip(speedups, speedups[1:]))
    for (n, *_), s in zip(rows, speedups):
        assert s <= n + 1e-9
    # A slower network strictly lowers multi-node speedups.
    assert rows[6][5] < rows[6][3]
    # The inter-node allreduce term grows with the node count.
    multi = MultiNodeCostModel(ranks_per_node=8)
    assert multi.allreduce_seconds(PARAMS, 64) > multi.allreduce_seconds(PARAMS, 16)
