"""Figure 3: search trajectories of AgE-n on Covertype.

Paper: best-so-far validation accuracy over 3 h of search; AgE-2/AgE-4
dominate, AgE-8's curve saturates lower (scaled lr/bs hurt accuracy), and
AgE-1 is slow to get going (few, long evaluations).
"""

from __future__ import annotations

import numpy as np

from common import format_table, get_scale, report, run_search
from repro.analysis import curve_on_grid

RANKS = (1, 2, 4, 8)


def run_experiment():
    scale = get_scale()
    grid = np.linspace(scale.wall_minutes / 6, scale.wall_minutes, 6)
    curves = {}
    for n in RANKS:
        history, _ = run_search("covertype", "AgE", num_ranks=n, seed=0)
        curves[n] = curve_on_grid(history, grid)
    return grid, curves


def test_fig3_trajectories(benchmark):
    grid, curves = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = [
        [f"AgE-{n}"] + [("-" if np.isnan(v) else round(float(v), 4)) for v in curves[n]]
        for n in RANKS
    ]
    report(
        "fig3_age_trajectories",
        format_table(
            "Fig. 3 — best-so-far validation accuracy over simulated time (Covertype)",
            ["variant"] + [f"t={t:.0f}m" for t in grid],
            rows,
        ),
    )
    # Shape: curves are monotone non-decreasing.
    for n in RANKS:
        vals = curves[n][~np.isnan(curves[n])]
        assert (np.diff(vals) >= -1e-12).all()
    # AgE-8's static scaled hyperparameters cap its final accuracy below
    # the best of the gentler variants (paper: 0.902 vs 0.925).
    final_others = max(curves[n][-1] for n in (1, 2, 4))
    assert curves[8][-1] <= final_others + 1e-9
    # And the gap is material, not noise (paper: ≈0.023).
    assert final_others - curves[8][-1] > 0.01
