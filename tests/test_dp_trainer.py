"""Unit tests for the data-parallel trainer (Horovod-equivalent semantics)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dataparallel import DataParallelTrainer
from repro.nn import GraphNetwork, Trainer
from repro.nn.graph_network import ArchitectureSpec, NodeOp

from conftest import make_blobs


def build(seed=0, d=8, classes=3):
    spec = ArchitectureSpec((NodeOp(24, "relu"), NodeOp(16, "tanh")))
    return GraphNetwork(spec, d, classes, np.random.default_rng(seed))


def test_ring_and_mean_paths_agree(rng):
    """Identical seeds: ring and naive-mean allreduce give the same run."""
    X, y = make_blobs(np.random.default_rng(0), n=400)

    def run(mode):
        net = build(seed=3)
        return DataParallelTrainer(
            num_ranks=4, epochs=3, batch_size=16, learning_rate=0.005, allreduce=mode
        ).fit(net, X[:320], y[:320], X[320:], y[320:], np.random.default_rng(9))

    a = run("ring")
    b = run("mean")
    np.testing.assert_allclose(a.epoch_train_losses, b.epoch_train_losses, rtol=1e-8)
    np.testing.assert_array_equal(a.epoch_val_accuracies, b.epoch_val_accuracies)


def test_fused_path_matches_per_rank(rng):
    """The concatenated-batch fast path equals averaged per-rank grads."""
    X, y = make_blobs(np.random.default_rng(1), n=400)

    def run(mode):
        net = build(seed=5)
        return DataParallelTrainer(
            num_ranks=2, epochs=3, batch_size=32, learning_rate=0.005, allreduce=mode
        ).fit(net, X[:320], y[:320], X[320:], y[320:], np.random.default_rng(4))

    a = run("fused")
    b = run("mean")
    np.testing.assert_allclose(a.epoch_train_losses, b.epoch_train_losses, rtol=1e-6)


def test_single_rank_matches_reference_trainer():
    """n=1 data-parallel must reduce to the plain training loop."""
    X, y = make_blobs(np.random.default_rng(2), n=300)
    net_a = build(seed=7)
    net_b = build(seed=7)
    dp = DataParallelTrainer(num_ranks=1, epochs=3, batch_size=32, learning_rate=0.01).fit(
        net_a, X[:240], y[:240], X[240:], y[240:], np.random.default_rng(11)
    )
    # The reference Trainer permutes all of X; the DP trainer with 1 rank has
    # one shard = everything, so the dynamics are the same distributionally.
    ref = Trainer(epochs=3, batch_size=32, learning_rate=0.01).fit(
        net_b, X[:240], y[:240], X[240:], y[240:], np.random.default_rng(11)
    )
    assert abs(dp.best_val_accuracy - ref.best_val_accuracy) < 0.1


def test_scaled_lr_applied():
    X, y = make_blobs(np.random.default_rng(3), n=200)
    net = build(seed=1)
    trainer = DataParallelTrainer(num_ranks=4, epochs=1, batch_size=16, learning_rate=0.01)
    trainer.fit(net, X[:160], y[:160], X[160:], y[160:], np.random.default_rng(0))
    # No public handle on the optimizer, so check via behaviour: disabling
    # linear scaling must change the trajectory.
    net2 = build(seed=1)
    t2 = DataParallelTrainer(
        num_ranks=4, epochs=1, batch_size=16, learning_rate=0.01, apply_linear_scaling=False
    )
    r2 = t2.fit(net2, X[:160], y[:160], X[160:], y[160:], np.random.default_rng(0))
    net3 = build(seed=1)
    r3 = DataParallelTrainer(num_ranks=4, epochs=1, batch_size=16, learning_rate=0.04,
                             apply_linear_scaling=False).fit(
        net3, X[:160], y[:160], X[160:], y[160:], np.random.default_rng(0)
    )
    trained = net.get_weights()
    manual = net3.get_weights()
    for a, b in zip(trained, manual):
        np.testing.assert_allclose(a, b, rtol=1e-8)  # 4 * 0.01 == 0.04
    assert r2.epoch_train_losses != r3.epoch_train_losses  # unscaled differs


def test_training_learns(rng):
    X, y = make_blobs(np.random.default_rng(4), n=500)
    net = build(seed=2)
    result = DataParallelTrainer(num_ranks=2, epochs=8, batch_size=16, learning_rate=0.005).fit(
        net, X[:400], y[:400], X[400:], y[400:], rng
    )
    assert result.best_val_accuracy > 0.8


def test_too_many_ranks_raises(rng):
    X, y = make_blobs(np.random.default_rng(5), n=10)
    with pytest.raises(ValueError):
        DataParallelTrainer(num_ranks=8, epochs=1, batch_size=4).fit(
            build(), X[:4], y[:4], X[4:], y[4:], rng
        )


def test_constructor_validation():
    with pytest.raises(ValueError):
        DataParallelTrainer(num_ranks=0)
    with pytest.raises(ValueError):
        DataParallelTrainer(num_ranks=1, allreduce="tree")
    with pytest.raises(ValueError):
        DataParallelTrainer(num_ranks=1, rank_mode="vector")
    with pytest.raises(ValueError):
        DataParallelTrainer(num_ranks=1, epochs=-1)


def test_epochs_zero_returns_zeroed_result(rng):
    """epochs=0 yields a zeroed TrainResult instead of an IndexError."""
    X, y = make_blobs(np.random.default_rng(8), n=200)
    net = build(seed=4)
    before = [w.copy() for w in net.get_weights()]
    result = DataParallelTrainer(num_ranks=2, epochs=0, batch_size=16).fit(
        net, X[:160], y[:160], X[160:], y[160:], rng
    )
    assert result.best_val_accuracy == 0.0
    assert result.final_val_accuracy == 0.0
    assert result.epoch_val_accuracies == []
    assert result.epoch_train_losses == []
    assert not result.diverged
    for a, b in zip(before, net.get_weights()):
        np.testing.assert_array_equal(a, b)  # no training happened


def test_epoch_end_event_reports_ring_bytes():
    """EpochEnd carries the simulated per-rank ring communication volume."""
    from repro.campaign.events import EpochEnd, EventBus
    from repro.dataparallel import ring_transfer_stats

    X, y = make_blobs(np.random.default_rng(9), n=300)
    net = build(seed=6)
    trainer = DataParallelTrainer(num_ranks=4, epochs=2, batch_size=16, allreduce="ring")
    bus = EventBus()
    seen = []
    bus.subscribe(seen.append, EpochEnd)
    trainer.event_bus = bus
    trainer.fit(net, X[:240], y[:240], X[240:], y[240:], np.random.default_rng(2))
    assert len(seen) == 2
    expected = ring_transfer_stats(
        4, net.num_parameters() * net.dtype.itemsize
    ).bytes_sent_per_rank
    assert all(e.ring_bytes_per_rank == expected for e in seen)
    assert expected > 0

    # Non-ring reductions report zero communication.
    net2 = build(seed=6)
    trainer2 = DataParallelTrainer(num_ranks=4, epochs=1, batch_size=16, allreduce="fused")
    bus2 = EventBus()
    seen2 = []
    bus2.subscribe(seen2.append, EpochEnd)
    trainer2.event_bus = bus2
    trainer2.fit(net2, X[:240], y[:240], X[240:], y[240:], np.random.default_rng(2))
    assert seen2 and all(e.ring_bytes_per_rank == 0 for e in seen2)


def test_large_effective_batch_degrades_accuracy():
    """The paper's core premise: past the scaling limit, accuracy suffers.

    With a small training set, n=8 (effective batch 8x256 > n_train) takes
    one noisy step per epoch with an 8x learning rate and must do worse
    than n=1 on average.
    """
    from repro.datasets import make_tabular_classification

    X, y = make_tabular_classification(
        1500, 8, 3, np.random.default_rng(6), class_sep=1.2, mixing_depth=2
    )
    accs = {}
    for n in (1, 8):
        scores = []
        for seed in range(3):
            net = build(seed=seed)
            res = DataParallelTrainer(
                num_ranks=n, epochs=6, batch_size=128, learning_rate=0.02, warmup_epochs=2
            ).fit(net, X[:1200], y[:1200], X[1200:], y[1200:], np.random.default_rng(seed))
            scores.append(res.best_val_accuracy)
        accs[n] = np.mean(scores)
    assert accs[1] > accs[8]
