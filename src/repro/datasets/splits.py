"""Train/validation/test splitting.

The paper groups data as in the Auto-PyTorch benchmark study: 42% train,
25% validation, 33% test.
"""

from __future__ import annotations

import numpy as np

__all__ = ["train_valid_test_split", "PAPER_FRACTIONS"]

PAPER_FRACTIONS = (0.42, 0.25, 0.33)


def train_valid_test_split(
    X: np.ndarray,
    y: np.ndarray,
    rng: np.random.Generator,
    fractions: tuple[float, float, float] = PAPER_FRACTIONS,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Shuffle and split into (X_tr, y_tr, X_va, y_va, X_te, y_te)."""
    if X.shape[0] != y.shape[0]:
        raise ValueError(f"X has {X.shape[0]} rows but y has {y.shape[0]}")
    f_train, f_valid, f_test = fractions
    if min(fractions) <= 0 or abs(f_train + f_valid + f_test - 1.0) > 1e-9:
        raise ValueError(f"fractions must be positive and sum to 1, got {fractions}")
    n = X.shape[0]
    order = rng.permutation(n)
    n_train = int(round(f_train * n))
    n_valid = int(round(f_valid * n))
    tr = order[:n_train]
    va = order[n_train : n_train + n_valid]
    te = order[n_train + n_valid :]
    return X[tr], y[tr], X[va], y[va], X[te], y[te]
