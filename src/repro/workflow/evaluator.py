"""Evaluator backends implementing the submit/gather interface.

Algorithm 1 interacts with the cluster only through two calls —
``submit_evaluation`` (non-blocking) and ``get_finished_evaluations`` —
mirroring DeepHyper/Balsam.  Both backends here expose exactly that:

- :class:`SimulatedEvaluator` advances a simulated clock to the next job
  completion; the *results* are computed by genuinely running the
  evaluation function at submit time, while the *completion time* comes
  from the ``duration`` the function reports (the training-cost model).
- :class:`ThreadedEvaluator` runs evaluation functions concurrently on a
  thread pool; ``gather`` blocks until at least one finishes.
"""

from __future__ import annotations

import threading
import time as _time
from concurrent.futures import FIRST_COMPLETED, Future, ThreadPoolExecutor, wait
from typing import Any, Callable, Sequence

from repro.workflow.events import EventQueue
from repro.workflow.jobs import EvaluationResult, Job, JobState

__all__ = ["Evaluator", "SimulatedEvaluator", "ThreadedEvaluator"]

RunFunction = Callable[[Any], EvaluationResult]


class Evaluator:
    """Abstract manager-worker evaluator."""

    def submit(self, configs: Sequence[Any]) -> list[Job]:
        """Queue configurations for evaluation; returns the job records."""
        raise NotImplementedError

    def gather(self) -> list[Job]:
        """Return at least one finished job (empty only if none in flight)."""
        raise NotImplementedError

    @property
    def now(self) -> float:
        """Current time in minutes (simulated or wall-clock)."""
        raise NotImplementedError

    @property
    def num_in_flight(self) -> int:
        raise NotImplementedError


class SimulatedEvaluator(Evaluator):
    """Event-driven simulation of a ``num_workers``-node cluster.

    Parameters
    ----------
    run_function:
        Called once per submitted config (at submit/start time); must
        return an :class:`EvaluationResult` whose ``duration`` is in
        simulated minutes.
    num_workers:
        W in the paper (128 on Theta; scaled down in the benches).

    Notes
    -----
    Jobs submitted while all workers are busy wait in a FIFO queue and are
    started when a worker frees — their results are computed lazily at
    start so the run function observes correct ordering.  Worker busy time
    is tracked for the node-utilization analysis (§IV-C, ≈94%).

    ``on_error`` controls failure handling: ``"raise"`` propagates run
    function exceptions to the manager; ``"penalize"`` (production
    behaviour — a diverged training must not kill a 3-hour campaign)
    records the failure as an :class:`EvaluationResult` with
    ``objective = failure_objective`` and a nominal duration.
    """

    def __init__(
        self,
        run_function: RunFunction,
        num_workers: int,
        on_error: str = "raise",
        failure_objective: float = 0.0,
        failure_duration: float = 1.0,
    ) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if on_error not in ("raise", "penalize"):
            raise ValueError(f"unknown on_error policy {on_error!r}")
        self.run_function = run_function
        self.num_workers = num_workers
        self.on_error = on_error
        self.failure_objective = failure_objective
        self.failure_duration = failure_duration
        self.num_failures = 0
        self._clock = 0.0
        self._events = EventQueue()  # payload: job finishing
        self._free_workers = list(range(num_workers - 1, -1, -1))
        self._waiting: list[Job] = []
        self._next_id = 0
        self._in_flight = 0
        self._busy_time = 0.0
        self.jobs: list[Job] = []

    # ------------------------------------------------------------------ #
    @property
    def now(self) -> float:
        return self._clock

    @property
    def num_in_flight(self) -> int:
        return self._in_flight

    @property
    def num_free_workers(self) -> int:
        return len(self._free_workers)

    def utilization(self) -> float:
        """Busy worker-minutes over available worker-minutes so far."""
        if self._clock == 0.0:
            return 0.0
        return self._busy_time / (self.num_workers * self._clock)

    # ------------------------------------------------------------------ #
    def submit(self, configs: Sequence[Any]) -> list[Job]:
        out = []
        for config in configs:
            job = Job(job_id=self._next_id, config=config, submit_time=self._clock)
            self._next_id += 1
            self.jobs.append(job)
            self._in_flight += 1
            if self._free_workers:
                self._start(job)
            else:
                self._waiting.append(job)
            out.append(job)
        return out

    def _start(self, job: Job) -> None:
        worker = self._free_workers.pop()
        job.worker = worker
        job.state = JobState.RUNNING
        job.start_time = self._clock
        try:
            job.result = self.run_function(job.config)
        except Exception as exc:
            if self.on_error == "raise":
                raise
            self.num_failures += 1
            job.result = EvaluationResult(
                objective=self.failure_objective,
                duration=self.failure_duration,
                metadata={"failed": True, "error": repr(exc)},
            )
        job.end_time = self._clock + job.result.duration
        self._events.push(job.end_time, job)

    def gather(self) -> list[Job]:
        """Advance the clock to the next completion; return finished jobs."""
        if not self._events:
            return []
        next_time = self._events.peek_time()
        finished: list[Job] = []
        for end_time, job in self._events.drain_until(next_time):
            self._clock = max(self._clock, end_time)
            job.state = JobState.DONE
            self._busy_time += job.end_time - job.start_time
            self._free_workers.append(job.worker)
            self._in_flight -= 1
            finished.append(job)
        # Start any queued jobs on the workers that just freed.
        while self._waiting and self._free_workers:
            self._start(self._waiting.pop(0))
        return finished


class ThreadedEvaluator(Evaluator):
    """Real concurrent evaluation on a thread pool.

    Time is wall-clock minutes since construction.  The reported job
    duration is the run function's declared duration unless
    ``measure_wall_time=True``, in which case the measured elapsed time
    (in minutes) replaces it.
    """

    def __init__(
        self,
        run_function: RunFunction,
        num_workers: int,
        measure_wall_time: bool = False,
    ) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.run_function = run_function
        self.num_workers = num_workers
        self.measure_wall_time = measure_wall_time
        self._pool = ThreadPoolExecutor(max_workers=num_workers)
        self._t0 = _time.perf_counter()
        self._futures: dict[Future, Job] = {}
        self._lock = threading.Lock()
        self._next_id = 0
        self.jobs: list[Job] = []

    @property
    def now(self) -> float:
        return (_time.perf_counter() - self._t0) / 60.0

    @property
    def num_in_flight(self) -> int:
        with self._lock:
            return len(self._futures)

    def submit(self, configs: Sequence[Any]) -> list[Job]:
        out = []
        for config in configs:
            with self._lock:
                job = Job(job_id=self._next_id, config=config, submit_time=self.now)
                self._next_id += 1
                self.jobs.append(job)
            future = self._pool.submit(self._run, job)
            with self._lock:
                self._futures[future] = job
            out.append(job)
        return out

    def _run(self, job: Job) -> None:
        job.state = JobState.RUNNING
        job.start_time = self.now
        t0 = _time.perf_counter()
        result = self.run_function(job.config)
        elapsed_min = (_time.perf_counter() - t0) / 60.0
        if self.measure_wall_time:
            result = EvaluationResult(result.objective, elapsed_min, result.metadata)
        job.result = result
        job.end_time = self.now
        job.state = JobState.DONE

    def gather(self) -> list[Job]:
        with self._lock:
            pending = dict(self._futures)
        if not pending:
            return []
        done, _ = wait(pending.keys(), return_when=FIRST_COMPLETED)
        finished = []
        with self._lock:
            for future in done:
                job = self._futures.pop(future)
                future.result()  # re-raise evaluation exceptions
                finished.append(job)
        return finished

    def shutdown(self) -> None:
        self._pool.shutdown(wait=True)
