"""Simulated ring-allreduce over per-rank gradient lists.

:func:`ring_allreduce` reproduces the Baidu/Horovod ring algorithm step by
step — reduce-scatter followed by allgather over flattened chunks — so that
tests can verify it is numerically equivalent (up to float associativity)
to the naive mean in :func:`allreduce_mean`, and so
:func:`ring_transfer_stats` can feed the communication term of the training
cost model with the actual transferred byte counts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["allreduce_mean", "ring_allreduce", "ring_transfer_stats", "RingStats"]

GradientList = list[np.ndarray]


def allreduce_mean(grads_per_rank: list[GradientList]) -> GradientList:
    """Elementwise mean of aligned gradient lists (the reference reduction)."""
    _check_alignment(grads_per_rank)
    n = len(grads_per_rank)
    if n == 1:
        return [g.copy() for g in grads_per_rank[0]]
    out: GradientList = []
    for tensors in zip(*grads_per_rank):
        acc = tensors[0].astype(np.float64, copy=True)
        for t in tensors[1:]:
            acc += t
        out.append(acc / n)
    return out


@dataclass(frozen=True)
class RingStats:
    """Communication accounting for one ring-allreduce."""

    num_ranks: int
    message_steps: int  # sequential communication rounds
    bytes_sent_per_rank: int  # payload each rank ships over the ring


def ring_transfer_stats(num_ranks: int, total_bytes: int) -> RingStats:
    """Bytes/steps of a ring allreduce of a ``total_bytes`` buffer.

    Each of the ``2(n-1)`` rounds moves one ``total_bytes / n`` chunk per
    rank, for ``2 (n-1)/n · total_bytes`` shipped per rank — the classic
    bandwidth-optimal figure.
    """
    if num_ranks < 1:
        raise ValueError("num_ranks must be >= 1")
    if num_ranks == 1:
        return RingStats(1, 0, 0)
    steps = 2 * (num_ranks - 1)
    per_rank = int(round(2 * (num_ranks - 1) / num_ranks * total_bytes))
    return RingStats(num_ranks, steps, per_rank)


def ring_allreduce(grads_per_rank: list[GradientList]) -> GradientList:
    """Average gradients via an explicit simulated ring.

    The per-rank gradient lists are flattened into one buffer per rank and
    the ring proceeds in ``2(n-1)`` rounds: ``n-1`` reduce-scatter rounds in
    which rank ``r`` sends chunk ``(r - step) mod n`` to rank ``r+1``, then
    ``n-1`` allgather rounds circulating the fully reduced chunks.  The
    mean (sum / n) is computed chunk-wise, then unflattened.
    """
    _check_alignment(grads_per_rank)
    n = len(grads_per_rank)
    if n == 1:
        return [g.copy() for g in grads_per_rank[0]]

    shapes = [g.shape for g in grads_per_rank[0]]
    sizes = [g.size for g in grads_per_rank[0]]
    buffers = [
        np.concatenate([g.ravel().astype(np.float64) for g in grads]) for grads in grads_per_rank
    ]
    total = buffers[0].size
    bounds = np.linspace(0, total, n + 1).astype(np.intp)
    chunks = [slice(bounds[i], bounds[i + 1]) for i in range(n)]

    # Reduce-scatter: after n-1 rounds, rank r holds the full sum of chunk
    # (r + 1) mod n.
    for step in range(n - 1):
        sends = [buffers[r][chunks[(r - step) % n]].copy() for r in range(n)]
        for r in range(n):
            dst = (r + 1) % n
            buffers[dst][chunks[(r - step) % n]] += sends[r]

    # Allgather: circulate each completed chunk around the ring.
    for step in range(n - 1):
        sends = [buffers[r][chunks[(r + 1 - step) % n]].copy() for r in range(n)]
        for r in range(n):
            dst = (r + 1) % n
            buffers[dst][chunks[(r + 1 - step) % n]] = sends[r]

    mean = buffers[0] / n
    out: GradientList = []
    offset = 0
    for shape, size in zip(shapes, sizes):
        out.append(mean[offset : offset + size].reshape(shape).copy())
        offset += size
    return out


def _check_alignment(grads_per_rank: list[GradientList]) -> None:
    if not grads_per_rank:
        raise ValueError("need at least one rank")
    ref = grads_per_rank[0]
    for r, grads in enumerate(grads_per_rank[1:], start=1):
        if len(grads) != len(ref):
            raise ValueError(f"rank {r} has {len(grads)} tensors, rank 0 has {len(ref)}")
        for i, (a, b) in enumerate(zip(ref, grads)):
            if a.shape != b.shape:
                raise ValueError(f"tensor {i} shape mismatch: {a.shape} vs {b.shape}")
