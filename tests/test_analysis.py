"""Unit tests for the analysis package (figures machinery)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    PCA,
    best_so_far_curve,
    count_unique_high_performers,
    curve_on_grid,
    high_performer_threshold,
    time_to_accuracy,
    top_fraction_records,
    top_k_hyperparameter_table,
    utilization_summary,
)
from repro.core import EvaluationRecord, ModelConfig, SearchHistory
from repro.workflow import EvaluationResult, SimulatedEvaluator


def make_history(entries, label="h"):
    """entries: list of (objective, end_time, arch_tuple, hp_dict)."""
    h = SearchHistory(label=label)
    for obj, end, arch, hp in entries:
        h.add(
            EvaluationRecord(
                config=ModelConfig(np.array(arch), dict(hp)),
                objective=obj,
                duration=1.0,
                submit_time=0.0,
                start_time=0.0,
                end_time=end,
            )
        )
    return h


HP = {"batch_size": 256, "learning_rate": 0.01, "num_ranks": 1}


# --------------------------------------------------------------------- #
# Trajectories
# --------------------------------------------------------------------- #
def test_curve_on_grid_steps():
    h = make_history([(0.5, 1.0, (0,), HP), (0.8, 3.0, (1,), HP)])
    grid = np.array([0.5, 1.5, 2.5, 3.5])
    out = curve_on_grid(h, grid)
    assert np.isnan(out[0])
    np.testing.assert_array_equal(out[1:], [0.5, 0.5, 0.8])


def test_curve_on_grid_empty_history():
    out = curve_on_grid(SearchHistory(), np.array([1.0, 2.0]))
    assert np.isnan(out).all()


def test_time_to_accuracy_passthrough():
    h = make_history([(0.5, 1.0, (0,), HP), (0.9, 4.0, (1,), HP)])
    assert time_to_accuracy(h, 0.9) == 4.0
    assert time_to_accuracy(h, 0.99) is None


def test_best_so_far_curve_alias():
    h = make_history([(0.5, 1.0, (0,), HP)])
    times, objs = best_so_far_curve(h)
    np.testing.assert_array_equal(times, [1.0])


# --------------------------------------------------------------------- #
# High performers (Figs. 5/8)
# --------------------------------------------------------------------- #
def test_threshold_is_min_of_quantiles():
    h1 = make_history([(v, i, (i,), HP) for i, v in enumerate(np.linspace(0, 1, 101))])
    h2 = make_history([(v, i, (i,), HP) for i, v in enumerate(np.linspace(0, 0.5, 101))])
    thr = high_performer_threshold([h1, h2], quantile=0.99)
    assert thr == pytest.approx(0.495, abs=1e-9)


def test_threshold_validation():
    with pytest.raises(ValueError):
        high_performer_threshold([])
    with pytest.raises(ValueError):
        high_performer_threshold([SearchHistory()], quantile=0.5)


def test_count_unique_high_performers_dedupes_architectures():
    h = make_history(
        [
            (0.95, 1.0, (1, 2), HP),
            (0.96, 2.0, (1, 2), HP),  # same arch again: not re-counted
            (0.97, 3.0, (3, 4), HP),
            (0.10, 4.0, (5, 6), HP),  # below threshold
        ]
    )
    times, counts = count_unique_high_performers(h, threshold=0.9)
    np.testing.assert_array_equal(times, [1.0, 3.0])
    np.testing.assert_array_equal(counts, [1, 2])


def test_count_unique_orders_by_completion():
    h = make_history([(0.95, 5.0, (1,), HP), (0.95, 2.0, (2,), HP)])
    times, counts = count_unique_high_performers(h, threshold=0.9)
    np.testing.assert_array_equal(times, [2.0, 5.0])


def test_top_k_table_contents():
    h = make_history(
        [
            (0.6, 1.0, (0,), {"batch_size": 64, "learning_rate": 0.001, "num_ranks": 2}),
            (0.9, 2.0, (1,), {"batch_size": 256, "learning_rate": 0.002, "num_ranks": 4}),
        ]
    )
    rows = top_k_hyperparameter_table(h, k=1)
    assert rows == [
        {
            "batch_size": 256,
            "learning_rate": 0.002,
            "num_ranks": 4,
            "validation_accuracy": 0.9,
        }
    ]


def test_top_fraction_records():
    h = make_history([(v, i, (i,), HP) for i, v in enumerate(np.linspace(0, 1, 200))])
    top = top_fraction_records(h, fraction=0.01)
    assert len(top) == 2
    assert all(r.objective > 0.98 for r in top)
    with pytest.raises(ValueError):
        top_fraction_records(h, fraction=0.0)


# --------------------------------------------------------------------- #
# PCA
# --------------------------------------------------------------------- #
def test_pca_recovers_dominant_direction(rng):
    direction = np.array([3.0, 4.0]) / 5.0
    X = rng.normal(size=(300, 1)) * 5.0 @ direction[None, :] + rng.normal(size=(300, 2)) * 0.1
    pca = PCA(n_components=1).fit(X)
    comp = pca.components_[0]
    assert abs(abs(comp @ direction) - 1.0) < 1e-2
    assert pca.explained_variance_ratio_[0] > 0.95


def test_pca_transform_shape(rng):
    X = rng.normal(size=(50, 10))
    Z = PCA(n_components=2).fit_transform(X)
    assert Z.shape == (50, 2)


def test_pca_explained_variance_sums_below_one(rng):
    X = rng.normal(size=(40, 6))
    pca = PCA(n_components=3).fit(X)
    assert 0.0 < pca.explained_variance_ratio_.sum() <= 1.0 + 1e-12


def test_pca_centers_data(rng):
    X = rng.normal(size=(100, 4)) + 100.0
    pca = PCA(n_components=2).fit(X)
    Z = pca.transform(X)
    np.testing.assert_allclose(Z.mean(axis=0), 0.0, atol=1e-8)


def test_pca_validation(rng):
    with pytest.raises(ValueError):
        PCA(n_components=0)
    with pytest.raises(ValueError):
        PCA().fit(np.zeros((1, 3)))
    with pytest.raises(RuntimeError):
        PCA().transform(np.zeros((2, 3)))


def test_pca_components_capped_by_rank(rng):
    X = rng.normal(size=(5, 3))
    pca = PCA(n_components=10).fit(X)
    assert pca.components_.shape[0] == 3


# --------------------------------------------------------------------- #
# Utilization
# --------------------------------------------------------------------- #
def test_utilization_summary_counts():
    ev = SimulatedEvaluator(lambda c: EvaluationResult(0.5, 2.0), num_workers=2)
    ev.submit([1, 2])
    ev.gather()
    summary = utilization_summary(ev)
    assert summary.num_workers == 2
    assert summary.elapsed_minutes == 2.0
    assert summary.utilization == pytest.approx(1.0)
    assert summary.num_jobs_done == 2
    assert summary.mean_queue_delay == 0.0


def test_utilization_zero_before_any_gather():
    ev = SimulatedEvaluator(lambda c: EvaluationResult(0.5, 2.0), num_workers=2)
    summary = utilization_summary(ev)
    assert summary.utilization == 0.0
