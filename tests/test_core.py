"""Unit tests for ModelConfig, SearchHistory and ModelEvaluation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import EvaluationRecord, ModelConfig, ModelEvaluation, SearchHistory
from repro.core.evaluation import _config_seed
from repro.dataparallel import TrainingCostModel
from repro.searchspace import ArchitectureSpace


# --------------------------------------------------------------------- #
# ModelConfig
# --------------------------------------------------------------------- #
def test_model_config_accessors():
    cfg = ModelConfig(
        arch=np.array([1, 2, 3]),
        hyperparameters={"batch_size": 64, "learning_rate": 0.01, "num_ranks": 4},
    )
    assert cfg.batch_size == 64
    assert cfg.learning_rate == 0.01
    assert cfg.num_ranks == 4


def test_model_config_key_is_architecture_identity():
    a = ModelConfig(np.array([1, 2]), {"batch_size": 64})
    b = ModelConfig(np.array([1, 2]), {"batch_size": 128})
    c = ModelConfig(np.array([1, 3]), {"batch_size": 64})
    assert a.key() == b.key()
    assert a.key() != c.key()


def test_model_config_rejects_matrix_arch():
    with pytest.raises(ValueError):
        ModelConfig(np.zeros((2, 2)))


# --------------------------------------------------------------------- #
# SearchHistory
# --------------------------------------------------------------------- #
def record(obj, end, arch=(0,)):
    return EvaluationRecord(
        config=ModelConfig(np.array(arch), {"batch_size": 256}),
        objective=obj,
        duration=1.0,
        submit_time=0.0,
        start_time=0.0,
        end_time=end,
    )


def test_history_best_and_topk():
    h = SearchHistory()
    for obj, end in [(0.5, 1.0), (0.9, 2.0), (0.7, 3.0)]:
        h.add(record(obj, end))
    assert h.best().objective == 0.9
    assert [r.objective for r in h.top_k(2)] == [0.9, 0.7]


def test_history_best_so_far_monotone():
    h = SearchHistory()
    for obj, end in [(0.5, 1.0), (0.3, 2.0), (0.8, 3.0), (0.6, 4.0)]:
        h.add(record(obj, end))
    times, objs = h.best_so_far()
    np.testing.assert_array_equal(times, [1.0, 2.0, 3.0, 4.0])
    np.testing.assert_array_equal(objs, [0.5, 0.5, 0.8, 0.8])


def test_history_best_so_far_sorts_by_completion():
    h = SearchHistory()
    h.add(record(0.9, end=5.0))
    h.add(record(0.5, end=1.0))  # completed earlier despite later insertion
    times, objs = h.best_so_far()
    np.testing.assert_array_equal(times, [1.0, 5.0])
    np.testing.assert_array_equal(objs, [0.5, 0.9])


def test_history_time_to_reach():
    h = SearchHistory()
    for obj, end in [(0.5, 1.0), (0.8, 2.0)]:
        h.add(record(obj, end))
    assert h.time_to_reach(0.7) == 2.0
    assert h.time_to_reach(0.95) is None


def test_history_empty_edge_cases():
    h = SearchHistory()
    times, objs = h.best_so_far()
    assert times.size == 0
    with pytest.raises(RuntimeError):
        h.best()


def test_history_to_rows():
    h = SearchHistory()
    h.add(record(0.5, 1.0))
    rows = h.to_rows()
    assert rows[0]["objective"] == 0.5
    assert rows[0]["hp_batch_size"] == 256


# --------------------------------------------------------------------- #
# ModelEvaluation
# --------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def evaluation(tiny_covertype):
    space = ArchitectureSpace(num_nodes=3)
    return (
        ModelEvaluation(tiny_covertype, space, epochs=3, nominal_epochs=20),
        space,
    )


def sample_config(space, seed=0):
    rng = np.random.default_rng(seed)
    return ModelConfig(
        arch=space.random_sample(rng),
        hyperparameters={"batch_size": 64, "learning_rate": 0.005, "num_ranks": 2},
    )


def test_evaluation_returns_real_accuracy(evaluation):
    run, space = evaluation
    result = run(sample_config(space))
    assert 0.0 <= result.objective <= 1.0
    assert result.duration > 0.0
    assert result.metadata["num_params"] > 0
    assert len(result.metadata["epoch_val_accuracies"]) == 3


def test_evaluation_deterministic_per_config(evaluation):
    run, space = evaluation
    a = run(sample_config(space, seed=3))
    b = run(sample_config(space, seed=3))
    assert a.objective == b.objective
    assert a.duration == b.duration


def test_evaluation_different_configs_different_seeds(evaluation):
    run, space = evaluation
    cfg_a = sample_config(space, seed=1)
    cfg_b = sample_config(space, seed=2)
    assert _config_seed(cfg_a, 0) != _config_seed(cfg_b, 0)


def test_evaluation_duration_uses_nominal_scale(evaluation, tiny_covertype):
    """Durations are billed at paper scale (244k rows, 20 epochs), not at
    the reduced real-training scale."""
    run, space = evaluation
    result = run(sample_config(space))
    cm = TrainingCostModel()
    expected = cm.training_minutes(
        num_params=result.metadata["num_params"],
        train_size=tiny_covertype.nominal_train_size,
        batch_size=64,
        num_ranks=2,
        epochs=20,
    )
    assert result.duration == pytest.approx(expected)


def test_evaluation_more_ranks_shorter_duration(evaluation):
    run, space = evaluation
    rng = np.random.default_rng(5)
    arch = space.random_sample(rng)
    durations = {}
    for n in (1, 8):
        cfg = ModelConfig(arch, {"batch_size": 64, "learning_rate": 0.005, "num_ranks": n})
        durations[n] = run(cfg).duration
    assert durations[8] < durations[1]


def test_evaluation_objective_mode_validation(tiny_covertype):
    space = ArchitectureSpace(num_nodes=2)
    with pytest.raises(ValueError):
        ModelEvaluation(tiny_covertype, space, objective="median")


def test_evaluation_final_objective_mode(tiny_covertype):
    space = ArchitectureSpace(num_nodes=2)
    run = ModelEvaluation(tiny_covertype, space, epochs=3, objective="final")
    result = run(sample_config(space, seed=8))
    assert result.objective == result.metadata["final_val_accuracy"]
