"""AgEBO-Tabular reproduction.

Joint neural architecture and hyperparameter search combining aging
evolution (AgE) over a skip-connection MLP search space with asynchronous
Bayesian optimization of data-parallel training hyperparameters
(batch size, learning rate, number of ranks), per Egele et al., SC 2021.

Public entry points
-------------------
- :class:`repro.core.AgEBO` / :class:`repro.core.AgE` — the search methods.
- :class:`repro.searchspace.ArchitectureSpace` — the 37-variable NAS space.
- :class:`repro.searchspace.HyperparameterSpace` — the data-parallel HP space.
- :func:`repro.datasets.load_dataset` — the four OpenML-analogue benchmarks.
- :class:`repro.workflow.SimulatedEvaluator` — the simulated-cluster backend.
"""

from repro._version import __version__

__all__ = ["__version__"]
