"""Perf bench: process-pool vs thread-pool evaluation, and cache hit-rate.

Times a batch of CPU-bound run functions (pure-Python arithmetic — the
GIL-worst case the process backend exists for) on ``ThreadedEvaluator``
vs ``ProcessPoolEvaluator`` with identical worker counts, and measures
the evaluation-cache hit-rate + busy-time saving of a seeded AgE run on
the simulated backend, writing results to ``BENCH_evaluator.json`` at
the repo root.

Timings are recorded, never asserted (machine-dependent; on a
single-core machine the process backend cannot beat the thread pool, so
``cpu_count`` is recorded alongside the ratio).  The bench fails only on
the equivalence gates: both backends must return identical objectives
for identical configs, and the cached AgE history must be bit-identical
to the uncached one.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.core import AgE
from repro.core.serialization import history_to_dict
from repro.perf import BenchEntry, median_time, write_bench_json
from repro.searchspace import ArchitectureSpace
from repro.workflow import (
    EvaluationCache,
    EvaluationResult,
    ProcessPoolEvaluator,
    SimulatedEvaluator,
    ThreadedEvaluator,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
NUM_WORKERS = 4
NUM_JOBS = 16
SPIN_ITERS = 120_000


def cpu_bound_run(config):
    """Pure-Python spin: holds the GIL, so threads serialize on it."""
    acc = 0
    for i in range(SPIN_ITERS):
        acc = (acc * 31 + i + int(config)) % 1_000_003
    return EvaluationResult(objective=(acc % 1000) / 1000.0, duration=1.0)


def arch_eval(config):
    """Deterministic stand-in for training: a small spin gives the cache
    real compute to save."""
    import numpy as np

    arch = np.asarray(config.arch)
    h = int(np.sum(arch * np.arange(1, arch.size + 1)))
    acc = 0
    for i in range(20_000):
        acc = (acc * 31 + i + h) % 1_000_003
    return EvaluationResult(
        objective=0.3 + 0.6 * ((h * 37) % 101) / 101.0,
        duration=1.0 + (h % 5),
    )


def _drain(ev):
    finished = []
    while ev.num_in_flight:
        finished.extend(ev.gather())
    return finished


def _run_batch(ev, offset=0):
    ev.submit(list(range(offset, offset + NUM_JOBS)))
    return _drain(ev)


def test_perf_process_vs_thread_and_cache():
    # Persistent pools: workers fork once (during the warmup repeat), so
    # the timing isolates dispatch + evaluation, not pool construction.
    with ThreadedEvaluator(cpu_bound_run, NUM_WORKERS) as ev_thread, \
            ProcessPoolEvaluator(cpu_bound_run, NUM_WORKERS) as ev_proc:
        # --- equivalence gate: identical objectives across backends ---- #
        threaded = _run_batch(ev_thread)
        process = _run_batch(ev_proc)
        by_id_t = {j.config: j.objective for j in threaded}
        by_id_p = {j.config: j.objective for j in process}
        assert by_id_t == by_id_p

        # --- CPU-bound batch: thread pool (GIL-bound) vs process pool -- #
        entries = [
            BenchEntry(
                "cpu_bound_batch",
                median_time(lambda: _run_batch(ev_thread), repeats=3),
                median_time(lambda: _run_batch(ev_proc), repeats=3),
                meta={
                    "workers": NUM_WORKERS,
                    "jobs": NUM_JOBS,
                    "spin_iters": SPIN_ITERS,
                    "cpu_count": os.cpu_count(),
                },
            )
        ]

    # --- cache hit-rate on a seeded AgE run (simulated backend) -------- #
    space = ArchitectureSpace(num_nodes=2)

    def run_age(cache):
        ev = SimulatedEvaluator(arch_eval, num_workers=NUM_WORKERS, cache=cache)
        history = AgE(space, ev, population_size=4, sample_size=2, seed=13).search(
            max_evaluations=60
        )
        return history, ev

    def timed_age(cache_on: bool):
        run_age(EvaluationCache() if cache_on else None)

    history_off, ev_off = run_age(None)
    cache = EvaluationCache()
    history_on, ev_on = run_age(cache)
    # Equivalence gate: memoization must not change the search history.
    assert history_to_dict(history_on) == history_to_dict(history_off)
    assert cache.hits > 0

    entries.append(
        BenchEntry(
            "age_cached_search",
            median_time(lambda: timed_age(False), repeats=3),
            median_time(lambda: timed_age(True), repeats=3),
            meta={
                "evaluations": len(history_on),
                "cache_hit_rate": round(cache.hit_rate, 4),
                "cache_hits": cache.hits,
                "busy_minutes_off": round(ev_off._busy_time, 3),
                "busy_minutes_on": round(ev_on._busy_time, 3),
            },
        )
    )

    out = write_bench_json(REPO_ROOT / "BENCH_evaluator.json", "evaluator", entries)
    for e in entries:
        print(f"{e.name}: ref {e.reference_s * 1e3:.2f} ms -> "
              f"opt {e.optimized_s * 1e3:.2f} ms ({e.speedup:.1f}x)")
    print(f"cache hit-rate: {cache.hit_rate:.0%} ({cache.hits} hits)")
    print(f"written: {out}")


if __name__ == "__main__":
    pytest.main([__file__, "-s"])
