"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import load_dataset
from repro.searchspace import ArchitectureSpace


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def tiny_covertype():
    """Small covertype-analogue reused across integration tests."""
    return load_dataset("covertype", size=1200)


@pytest.fixture
def small_space() -> ArchitectureSpace:
    """A 4-node architecture space (fast to build/train)."""
    return ArchitectureSpace(num_nodes=4)


@pytest.fixture
def full_space() -> ArchitectureSpace:
    """The paper's 10-node / 37-variable space."""
    return ArchitectureSpace(num_nodes=10)


def make_blobs(
    rng: np.random.Generator, n: int = 400, d: int = 8, classes: int = 3
) -> tuple[np.ndarray, np.ndarray]:
    """Tiny separable classification problem for learner tests."""
    centers = rng.normal(size=(classes, d)) * 3.0
    y = rng.integers(0, classes, size=n)
    X = centers[y] + rng.normal(size=(n, d))
    return X, y.astype(np.int64)
