"""Feature preprocessing: standardization and one-hot encoding."""

from __future__ import annotations

import numpy as np

__all__ = ["Standardizer", "one_hot"]


class Standardizer:
    """Column-wise (x - mean) / std, fit on training data only.

    Constant columns keep std 1 so they map to zero instead of NaN.
    """

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.std_: np.ndarray | None = None

    def fit(self, X: np.ndarray) -> "Standardizer":
        X = np.asarray(X, dtype=float)
        if X.ndim != 2 or X.shape[0] == 0:
            raise ValueError(f"expected non-empty 2-D array, got shape {X.shape}")
        self.mean_ = X.mean(axis=0)
        std = X.std(axis=0)
        self.std_ = np.where(std > 0, std, 1.0)
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.std_ is None:
            raise RuntimeError("Standardizer is not fitted")
        return (np.asarray(X, dtype=float) - self.mean_) / self.std_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)


def one_hot(y: np.ndarray, n_classes: int) -> np.ndarray:
    """Integer labels to a ``(n, n_classes)`` one-hot matrix."""
    y = np.asarray(y)
    if y.ndim != 1:
        raise ValueError(f"expected 1-D labels, got shape {y.shape}")
    if y.size and (y.min() < 0 or y.max() >= n_classes):
        raise ValueError("labels out of range")
    out = np.zeros((y.shape[0], n_classes))
    out[np.arange(y.shape[0]), y] = 1.0
    return out
