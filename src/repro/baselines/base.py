"""Common classifier interface for the baseline learners."""

from __future__ import annotations

import numpy as np

__all__ = ["BaseClassifier", "check_Xy"]


def check_Xy(X: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Validate and normalize a training pair."""
    X = np.asarray(X, dtype=float)
    y = np.asarray(y)
    if X.ndim != 2:
        raise ValueError(f"X must be 2-D, got shape {X.shape}")
    if y.ndim != 1 or y.shape[0] != X.shape[0]:
        raise ValueError(f"y must be 1-D of length {X.shape[0]}, got shape {y.shape}")
    if X.shape[0] == 0:
        raise ValueError("empty training set")
    if y.dtype.kind not in "iu":
        raise ValueError("labels must be integers")
    return X, y.astype(np.int64)


class BaseClassifier:
    """fit / predict_proba / predict protocol.

    ``n_classes`` is fixed at construction so probability matrices align
    across models inside ensembles even when a fold misses some class.
    """

    def __init__(self, n_classes: int) -> None:
        if n_classes < 2:
            raise ValueError("n_classes must be >= 2")
        self.n_classes = n_classes

    def fit(self, X: np.ndarray, y: np.ndarray, rng: np.random.Generator) -> "BaseClassifier":
        raise NotImplementedError

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def predict(self, X: np.ndarray) -> np.ndarray:
        return self.predict_proba(X).argmax(axis=1)

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Plain accuracy."""
        return float((self.predict(X) == np.asarray(y)).mean())
