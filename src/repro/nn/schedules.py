"""Learning-rate schedules from the paper's training recipe.

Two schedules compose per epoch, exactly as in the experiments section:

- :class:`GradualWarmup` ramps the LR linearly from ``lr/warmup_epochs`` to
  the target LR over the first 5 epochs (Goyal et al., "ImageNet in 1 hour"),
  which stabilizes large-effective-batch data-parallel training.
- :class:`ReduceLROnPlateau` multiplies the LR by ``factor`` when the
  monitored validation metric has not improved for ``patience`` epochs.
"""

from __future__ import annotations

from repro.nn.optimizers import Optimizer

__all__ = ["GradualWarmup", "ReduceLROnPlateau"]


class GradualWarmup:
    """Linear LR warmup over the first ``warmup_epochs`` epochs."""

    def __init__(self, optimizer: Optimizer, target_lr: float, warmup_epochs: int = 5) -> None:
        if warmup_epochs < 0:
            raise ValueError("warmup_epochs must be non-negative")
        self.optimizer = optimizer
        self.target_lr = float(target_lr)
        self.warmup_epochs = warmup_epochs

    def on_epoch_begin(self, epoch: int) -> float:
        """Set and return the LR for 0-indexed ``epoch``."""
        if self.warmup_epochs > 0 and epoch < self.warmup_epochs:
            lr = self.target_lr * (epoch + 1) / self.warmup_epochs
            self.optimizer.lr = lr
        return self.optimizer.lr


class ReduceLROnPlateau:
    """Multiply LR by ``factor`` after ``patience`` epochs without improvement.

    Mirrors the Keras callback the paper uses (patience 5).  ``min_delta``
    guards against counting float noise as improvement.
    """

    def __init__(
        self,
        optimizer: Optimizer,
        patience: int = 5,
        factor: float = 0.5,
        min_lr: float = 1e-6,
        min_delta: float = 1e-4,
    ) -> None:
        if patience < 1:
            raise ValueError("patience must be >= 1")
        if not 0.0 < factor < 1.0:
            raise ValueError("factor must be in (0, 1)")
        self.optimizer = optimizer
        self.patience = patience
        self.factor = factor
        self.min_lr = min_lr
        self.min_delta = min_delta
        self._best = -float("inf")
        self._since_best = 0

    def on_epoch_end(self, metric: float) -> bool:
        """Report the epoch's validation metric; returns True if LR reduced."""
        if metric > self._best + self.min_delta:
            self._best = metric
            self._since_best = 0
            return False
        self._since_best += 1
        if self._since_best >= self.patience:
            new_lr = max(self.optimizer.lr * self.factor, self.min_lr)
            reduced = new_lr < self.optimizer.lr
            self.optimizer.lr = new_lr
            self._since_best = 0
            return reduced
        return False
