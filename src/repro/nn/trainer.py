"""Single-process training loop implementing the paper's recipe.

Every candidate architecture is trained with Adam for a fixed number of
epochs (20 in the paper), with a 5-epoch gradual warmup and a
reduce-LR-on-plateau callback (patience 5), maximizing validation accuracy.
The data-parallel variant of this loop lives in
:mod:`repro.dataparallel.trainer`; this one is the ``n = 1`` reference whose
behaviour the data-parallel trainer must match when run with a single rank.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nn.graph_network import GraphNetwork
from repro.nn.losses import softmax_cross_entropy
from repro.nn.metrics import accuracy
from repro.nn.optimizers import Adam
from repro.nn.schedules import GradualWarmup, ReduceLROnPlateau

__all__ = ["TrainResult", "Trainer"]


@dataclass
class TrainResult:
    """Outcome of one training run."""

    best_val_accuracy: float
    final_val_accuracy: float
    epoch_val_accuracies: list[float] = field(default_factory=list)
    epoch_train_losses: list[float] = field(default_factory=list)
    best_weights: list[np.ndarray] | None = None
    diverged: bool = False  # training aborted on a non-finite loss


class Trainer:
    """Train a :class:`GraphNetwork` on ``(X_train, y_train)``.

    Parameters
    ----------
    epochs, batch_size, learning_rate:
        The paper's defaults are 20 / 256 / 0.01.
    warmup_epochs, plateau_patience:
        Schedule settings (5 and 5 in the paper).
    keep_best_weights:
        If True, retain a copy of the weights from the best-validation
        epoch (used when the selected model is later evaluated on test).
    backend:
        ``"compiled"`` (default) trains through the model's
        :class:`~repro.nn.compiled.CompiledPlan` — traced once, fused
        kernels, preallocated buffers; ``"eager"`` uses the reference
        tape.  Both produce numerically matching results (the equivalence
        gate in ``tests/test_compiled.py`` asserts it).
    dtype:
        Optional precision override for the training arrays.  ``None``
        keeps the model's dtype; ``np.float32`` roughly halves memory
        traffic on the hot path.
    """

    def __init__(
        self,
        epochs: int = 20,
        batch_size: int = 256,
        learning_rate: float = 0.01,
        warmup_epochs: int = 5,
        plateau_patience: int = 5,
        keep_best_weights: bool = False,
        backend: str = "compiled",
        dtype=None,
    ) -> None:
        if epochs < 1:
            raise ValueError("epochs must be >= 1")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if backend not in ("compiled", "eager"):
            raise ValueError(f"backend must be 'compiled' or 'eager', got {backend!r}")
        self.epochs = epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.warmup_epochs = warmup_epochs
        self.plateau_patience = plateau_patience
        self.keep_best_weights = keep_best_weights
        self.backend = backend
        self.dtype = None if dtype is None else np.dtype(dtype)
        # Optional campaign event bus; when set, fit emits one
        # repro.campaign.events.EpochEnd per epoch.
        self.event_bus = None

    def _emit_epoch(self, epoch: int, train_loss: float, val_accuracy: float,
                    num_ranks: int = 1) -> None:
        if self.event_bus is not None:
            from repro.campaign.events import EpochEnd

            self.event_bus.emit(
                EpochEnd(
                    epoch=epoch,
                    train_loss=float(train_loss),
                    val_accuracy=float(val_accuracy),
                    num_ranks=num_ranks,
                )
            )

    def fit(
        self,
        model: GraphNetwork,
        X_train: np.ndarray,
        y_train: np.ndarray,
        X_valid: np.ndarray,
        y_valid: np.ndarray,
        rng: np.random.Generator,
    ) -> TrainResult:
        """Run the full recipe; returns per-epoch history and the best score."""
        n = X_train.shape[0]
        if n == 0:
            raise ValueError("empty training set")
        dtype = self.dtype or model.dtype
        X_train = np.ascontiguousarray(X_train, dtype=dtype)
        X_valid = np.ascontiguousarray(X_valid, dtype=dtype)
        plan = model.compile() if self.backend == "compiled" else None
        optimizer = Adam(model.parameters(), lr=self.learning_rate)
        warmup = GradualWarmup(optimizer, self.learning_rate, self.warmup_epochs)
        plateau = ReduceLROnPlateau(optimizer, patience=self.plateau_patience)

        result = TrainResult(best_val_accuracy=-np.inf, final_val_accuracy=0.0)
        best_acc = -np.inf
        for epoch in range(self.epochs):
            warmup.on_epoch_begin(epoch)
            order = rng.permutation(n)
            epoch_loss = 0.0
            n_batches = 0
            for start in range(0, n, self.batch_size):
                idx = order[start : start + self.batch_size]
                if plan is not None:
                    loss_value = plan.loss_and_grad(X_train[idx], y_train[idx])
                    optimizer.step()
                else:
                    logits = model.forward(X_train[idx])
                    loss = softmax_cross_entropy(logits, y_train[idx])
                    optimizer.zero_grad()
                    loss.backward()
                    optimizer.step()
                    loss_value = loss.item()
                epoch_loss += loss_value
                n_batches += 1
            mean_loss = epoch_loss / max(n_batches, 1)
            if not np.isfinite(mean_loss):
                # Diverged (e.g. an absurd scaled learning rate): abort and
                # report what was achieved so the search can penalize it
                # without crashing the campaign.
                result.diverged = True
                result.epoch_train_losses.append(mean_loss)
                result.epoch_val_accuracies.append(0.0)
                self._emit_epoch(epoch, mean_loss, 0.0)
                break
            val_logits = (
                plan.predict_logits(X_valid) if plan is not None
                else model.predict_logits(X_valid)
            )
            val_acc = accuracy(val_logits, y_valid)
            result.epoch_val_accuracies.append(val_acc)
            result.epoch_train_losses.append(mean_loss)
            self._emit_epoch(epoch, mean_loss, val_acc)
            if val_acc > best_acc:
                best_acc = val_acc
                if self.keep_best_weights:
                    result.best_weights = model.get_weights()
            plateau.on_epoch_end(val_acc)

        result.best_val_accuracy = float(max(best_acc, 0.0))
        result.final_val_accuracy = result.epoch_val_accuracies[-1]
        return result
