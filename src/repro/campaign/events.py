"""Structured lifecycle events and the campaign event bus.

One campaign produces one stream of typed events: the evaluators emit job
lifecycle events (submit / gather / retry / worker death), the search loop
emits population and checkpoint events, the BO optimizer emits tell/ask
events, the trainers emit per-epoch events and the fault injector reports
injected faults.  Subscribers attach to an :class:`EventBus`; three
built-ins cover the common needs:

- :class:`JsonlEventLog` — append every event to a JSONL file that
  :func:`load_events` replays into typed events again;
- :class:`ProgressReporter` — human-readable one-liners as the campaign
  advances;
- :class:`MetricsAggregator` — in-memory utilization / retry / latency
  accounting that reproduces ``repro.analysis.utilization_summary`` from
  the event stream alone.

This module deliberately imports nothing from the rest of ``repro`` so the
low-level layers (trainers, evaluators) can emit events without import
cycles; they lazy-import the event types at the emission site.

Every event class defined here must be listed in :data:`EVENT_TYPES` — the
catalogue is the schema, and ``tools/check_events.py`` lints that every
emission site only uses catalogued events.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Iterable

__all__ = [
    "CampaignEvent",
    "CampaignStarted",
    "CampaignFinished",
    "JobSubmitted",
    "JobGathered",
    "JobRetried",
    "WorkerDied",
    "PopulationUpdated",
    "BOTellAsk",
    "EpochEnd",
    "FaultInjected",
    "CheckpointWritten",
    "CacheHit",
    "CacheStore",
    "EVENT_TYPES",
    "EventBus",
    "JsonlEventLog",
    "ProgressReporter",
    "MetricsAggregator",
    "load_events",
    "replay_metrics",
]


@dataclass(frozen=True)
class CampaignEvent:
    """Base class for all campaign lifecycle events."""

    @property
    def name(self) -> str:
        return type(self).__name__

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe representation, tagged with the event name."""
        return {"event": self.name, **dataclasses.asdict(self)}


@dataclass(frozen=True)
class CampaignStarted(CampaignEvent):
    """A campaign run began (emitted once by ``Campaign.run``)."""

    method: str
    dataset: str
    num_workers: int
    max_evaluations: int | None = None
    wall_time_minutes: float | None = None


@dataclass(frozen=True)
class CampaignFinished(CampaignEvent):
    """A campaign run returned its history."""

    num_evaluations: int
    best_objective: float
    elapsed_minutes: float


@dataclass(frozen=True)
class JobSubmitted(CampaignEvent):
    """A configuration entered an evaluator's queue."""

    job_id: int
    time: float


@dataclass(frozen=True)
class JobGathered(CampaignEvent):
    """A finished job was returned to the manager by ``gather``."""

    job_id: int
    time: float
    objective: float
    duration: float
    submit_time: float
    start_time: float
    end_time: float
    worker: int
    failed: bool
    retries: int


@dataclass(frozen=True)
class JobRetried(CampaignEvent):
    """A failed attempt was re-queued under a retry fault policy."""

    job_id: int
    time: float
    retries: int
    error: str | None


@dataclass(frozen=True)
class WorkerDied(CampaignEvent):
    """A simulated worker failed permanently."""

    worker: int
    time: float


@dataclass(frozen=True)
class PopulationUpdated(CampaignEvent):
    """The aging population absorbed one gathered evaluation."""

    num_evaluations: int
    population_size: int
    objective: float
    best_objective: float
    time: float


@dataclass(frozen=True)
class BOTellAsk(CampaignEvent):
    """The BO optimizer ingested results and proposed replacements."""

    num_told: int
    num_asked: int
    num_observations: int
    time: float


@dataclass(frozen=True)
class EpochEnd(CampaignEvent):
    """One training epoch finished inside an evaluation.

    ``ring_bytes_per_rank`` is the simulated ring-allreduce payload each
    rank shipped during the epoch's training steps (0 when the reduction
    is not a ring or runs single-rank), from
    :func:`repro.dataparallel.allreduce.ring_transfer_stats`.
    """

    epoch: int
    train_loss: float
    val_accuracy: float
    num_ranks: int = 1
    ring_bytes_per_rank: int = 0


@dataclass(frozen=True)
class FaultInjected(CampaignEvent):
    """The fault injector perturbed an evaluation."""

    kind: str  # "crash" | "hang" | "corrupt"
    call_index: int


@dataclass(frozen=True)
class CheckpointWritten(CampaignEvent):
    """The search wrote a resumable checkpoint."""

    path: str
    num_evaluations: int
    time: float


@dataclass(frozen=True)
class CacheHit(CampaignEvent):
    """An evaluator served a job from the evaluation cache (no re-training).

    ``key`` is the canonical config digest
    (:func:`repro.workflow.cache.canonical_config_key`).
    """

    job_id: int
    key: str
    time: float


@dataclass(frozen=True)
class CacheStore(CampaignEvent):
    """A finished evaluation's result was memoized into the cache."""

    job_id: int
    key: str
    time: float


#: The event catalogue: every event class this package may emit.  The
#: schema lint (``tools/check_events.py``) checks emission sites against
#: exactly this mapping.
EVENT_TYPES: dict[str, type[CampaignEvent]] = {
    cls.__name__: cls
    for cls in (
        CampaignStarted,
        CampaignFinished,
        JobSubmitted,
        JobGathered,
        JobRetried,
        WorkerDied,
        PopulationUpdated,
        BOTellAsk,
        EpochEnd,
        FaultInjected,
        CheckpointWritten,
        CacheHit,
        CacheStore,
    )
}


class EventBus:
    """Synchronous publish/subscribe dispatch for campaign events.

    Subscribers are callables; an optional ``event_type`` filter restricts
    delivery to one event class (subclasses included).  Dispatch order is
    subscription order, and emission is synchronous — a subscriber raising
    propagates to the emitter, so subscribers should be cheap and safe.
    """

    def __init__(self) -> None:
        self._subscribers: list[tuple[type[CampaignEvent] | None, Callable]] = []

    def subscribe(
        self,
        callback: Callable[[CampaignEvent], None],
        event_type: type[CampaignEvent] | None = None,
    ) -> Callable[[CampaignEvent], None]:
        """Register ``callback``; returns it so it can be unsubscribed."""
        if not callable(callback):
            raise TypeError(f"subscriber must be callable, got {callback!r}")
        self._subscribers.append((event_type, callback))
        return callback

    def unsubscribe(self, callback: Callable[[CampaignEvent], None]) -> None:
        self._subscribers = [
            (t, cb) for t, cb in self._subscribers if cb is not callback
        ]

    def emit(self, event: CampaignEvent) -> None:
        if not isinstance(event, CampaignEvent):
            raise TypeError(f"can only emit CampaignEvent instances, got {event!r}")
        for event_type, callback in self._subscribers:
            if event_type is None or isinstance(event, event_type):
                callback(event)

    def __len__(self) -> int:
        return len(self._subscribers)


# --------------------------------------------------------------------- #
# Built-in subscribers
# --------------------------------------------------------------------- #
class JsonlEventLog:
    """Append every event to a JSONL file (one tagged object per line)."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._fh = open(self.path, "w")
        self.num_events = 0

    def __call__(self, event: CampaignEvent) -> None:
        self._fh.write(json.dumps(event.to_dict()) + "\n")
        self.num_events += 1

    def flush(self) -> None:
        self._fh.flush()

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "JsonlEventLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def load_events(path: str | Path) -> list[CampaignEvent]:
    """Replay a :class:`JsonlEventLog` file into typed events."""
    events: list[CampaignEvent] = []
    for lineno, line in enumerate(Path(path).read_text().splitlines(), start=1):
        if not line.strip():
            continue
        row = json.loads(line)
        name = row.pop("event", None)
        cls = EVENT_TYPES.get(name)
        if cls is None:
            raise ValueError(f"{path}:{lineno}: unknown event type {name!r}")
        events.append(cls(**row))
    return events


class ProgressReporter:
    """Print a one-line progress update as the campaign advances."""

    def __init__(self, out=None, every: int = 1) -> None:
        if every < 1:
            raise ValueError("every must be >= 1")
        import sys

        self.out = out or sys.stdout
        self.every = every

    def __call__(self, event: CampaignEvent) -> None:
        if isinstance(event, PopulationUpdated):
            if event.num_evaluations % self.every == 0:
                print(
                    f"[{event.num_evaluations:>4} evals] "
                    f"objective={event.objective:.4f} "
                    f"best={event.best_objective:.4f} "
                    f"t={event.time:.1f}min",
                    file=self.out,
                )
        elif isinstance(event, CheckpointWritten):
            print(
                f"[{event.num_evaluations:>4} evals] checkpoint -> {event.path}",
                file=self.out,
            )
        elif isinstance(event, WorkerDied):
            print(f"worker {event.worker} died at t={event.time:.1f}min", file=self.out)
        elif isinstance(event, CampaignFinished):
            print(
                f"campaign finished: {event.num_evaluations} evaluations, "
                f"best {event.best_objective:.4f} in {event.elapsed_minutes:.1f} "
                f"simulated minutes",
                file=self.out,
            )


class MetricsAggregator:
    """In-memory campaign metrics from the event stream alone.

    Reproduces the utilization accounting of
    :func:`repro.analysis.utilization.utilization_summary` — busy
    worker-minutes over ``num_workers × elapsed`` — plus retry / fault
    counters and gather latencies, without touching the evaluator.
    """

    def __init__(self) -> None:
        self.counts: dict[str, int] = {}
        self.num_workers = 0
        self.num_retries = 0
        self.num_worker_deaths = 0
        self.num_faults_injected = 0
        self.num_jobs_done = 0
        self.num_jobs_failed = 0
        self.busy_worker_minutes = 0.0
        self.elapsed_minutes = 0.0
        self.queue_delays: list[float] = []
        self.gather_latencies: list[float] = []
        self.best_objective = float("-inf")
        self.ring_comm_bytes = 0
        self.num_cache_hits = 0
        self.num_cache_stores = 0

    def __call__(self, event: CampaignEvent) -> None:
        self.counts[event.name] = self.counts.get(event.name, 0) + 1
        time = getattr(event, "time", None)
        if time is not None:
            self.elapsed_minutes = max(self.elapsed_minutes, time)
        if isinstance(event, CampaignStarted):
            self.num_workers = event.num_workers
        elif isinstance(event, JobGathered):
            self.num_jobs_done += 1
            if event.failed:
                self.num_jobs_failed += 1
            self.busy_worker_minutes += event.end_time - event.start_time
            self.queue_delays.append(event.start_time - event.submit_time)
            self.gather_latencies.append(event.time - event.end_time)
            if event.objective > self.best_objective:
                self.best_objective = event.objective
        elif isinstance(event, JobRetried):
            self.num_retries += 1
        elif isinstance(event, WorkerDied):
            self.num_worker_deaths += 1
        elif isinstance(event, FaultInjected):
            self.num_faults_injected += 1
        elif isinstance(event, CacheHit):
            self.num_cache_hits += 1
        elif isinstance(event, CacheStore):
            self.num_cache_stores += 1
        elif isinstance(event, EpochEnd):
            # Simulated communication volume: every rank ships its ring
            # payload once per epoch's reduction schedule.
            self.ring_comm_bytes += event.ring_bytes_per_rank * event.num_ranks

    # ------------------------------------------------------------------ #
    @property
    def utilization(self) -> float:
        denominator = self.num_workers * self.elapsed_minutes
        return self.busy_worker_minutes / denominator if denominator > 0 else 0.0

    @property
    def mean_queue_delay(self) -> float:
        return sum(self.queue_delays) / len(self.queue_delays) if self.queue_delays else 0.0

    @property
    def mean_gather_latency(self) -> float:
        lat = self.gather_latencies
        return sum(lat) / len(lat) if lat else 0.0

    @property
    def cache_hit_rate(self) -> float:
        """Cache hits over gathered jobs (0.0 when nothing finished)."""
        return self.num_cache_hits / self.num_jobs_done if self.num_jobs_done else 0.0

    def summary(self) -> dict[str, Any]:
        """Aggregate metrics as a plain dict (JSON-safe)."""
        return {
            "num_workers": self.num_workers,
            "elapsed_minutes": self.elapsed_minutes,
            "busy_worker_minutes": self.busy_worker_minutes,
            "utilization": self.utilization,
            "num_jobs_done": self.num_jobs_done,
            "num_jobs_failed": self.num_jobs_failed,
            "num_retries": self.num_retries,
            "num_worker_deaths": self.num_worker_deaths,
            "num_faults_injected": self.num_faults_injected,
            "mean_queue_delay": self.mean_queue_delay,
            "mean_gather_latency": self.mean_gather_latency,
            "best_objective": self.best_objective,
            "ring_comm_bytes": self.ring_comm_bytes,
            "num_cache_hits": self.num_cache_hits,
            "num_cache_stores": self.num_cache_stores,
            "cache_hit_rate": self.cache_hit_rate,
            "event_counts": dict(self.counts),
        }


def replay_metrics(path: str | Path) -> MetricsAggregator:
    """Rebuild campaign metrics by replaying a JSONL event log."""
    aggregator = MetricsAggregator()
    for event in load_events(path):
        aggregator(event)
    return aggregator
