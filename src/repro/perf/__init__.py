"""Performance-regression harness for the hot paths.

The search loop spends its time in two places: training sampled networks
(worker side) and refitting/querying the forest surrogate (optimizer
side).  :mod:`repro.perf.timer` provides seeded, median-of-k timing and a
JSON report writer; ``benchmarks/test_perf_train.py`` and
``benchmarks/test_perf_surrogate.py`` use them to record before/after
medians for the compiled training plan and the vectorized forest against
their reference implementations, writing ``BENCH_train.json`` and
``BENCH_surrogate.json`` at the repo root.

Timings are recorded, never asserted — only numerical-equivalence gates
can fail the benches, so they stay meaningful on noisy CI machines.
"""

from repro.perf.timer import BenchEntry, median_time, write_bench_json

__all__ = ["BenchEntry", "median_time", "write_bench_json"]
