"""Shared manager-loop machinery for AgE and AgEBO (Algorithm 1 skeleton).

The loop follows the paper exactly: seed the cluster with ``W`` random
configurations, then repeatedly gather finished evaluations, push them into
the aging population, generate exactly ``|results|`` replacements (random
while the population is filling, tournament + mutation afterwards) and
resubmit — keeping every worker busy, which is what yields the ≈94% node
utilization reported in §IV-C.
"""

from __future__ import annotations

import collections
from typing import Any

import numpy as np

from repro.core.config import ModelConfig
from repro.core.results import EvaluationRecord, SearchHistory
from repro.searchspace.archspace import ArchitectureSpace
from repro.searchspace.mutation import mutate_architecture
from repro.workflow.evaluator import Evaluator
from repro.workflow.jobs import Job

__all__ = ["AgingEvolutionBase"]


class AgingEvolutionBase:
    """Common aging-evolution mechanics; subclasses supply ``h_m`` policy.

    Parameters
    ----------
    space:
        The architecture search space ``H_a``.
    evaluator:
        A submit/gather backend (simulated or threaded).
    population_size, sample_size:
        ``P`` and ``S`` (paper: 100 and 10).
    num_workers:
        ``W``; defaults to the evaluator's worker count when it has one.
    replacement:
        ``"aging"`` (paper: evict the oldest member) or ``"elitist"``
        (ablation: evict the worst member) when the population is full.
    """

    def __init__(
        self,
        space: ArchitectureSpace,
        evaluator: Evaluator,
        population_size: int = 100,
        sample_size: int = 10,
        num_workers: int | None = None,
        seed: int = 0,
        mutate_skips: bool = True,
        replacement: str = "aging",
        label: str = "",
    ) -> None:
        if population_size < 2:
            raise ValueError("population_size must be >= 2")
        if not 1 <= sample_size <= population_size:
            raise ValueError("sample_size must be in [1, population_size]")
        if replacement not in ("aging", "elitist"):
            raise ValueError(f"unknown replacement {replacement!r}")
        self.space = space
        self.evaluator = evaluator
        self.population_size = population_size
        self.sample_size = sample_size
        self.num_workers = num_workers or getattr(evaluator, "num_workers", 1)
        self.rng = np.random.default_rng(seed)
        self.mutate_skips = mutate_skips
        self.replacement = replacement
        # Aging population: a bounded FIFO queue; pushing past capacity
        # evicts the oldest member (paper line 11).  Elitist replacement
        # (the ablation) evicts the worst member instead.
        self.population: collections.deque[EvaluationRecord] = collections.deque()
        self.history = SearchHistory(label=label or type(self).__name__)

    # ------------------------------------------------------------------ #
    # Hooks implemented by AgE / AgEBO
    # ------------------------------------------------------------------ #
    def _initial_hyperparameters(self, k: int) -> list[dict[str, Any]]:
        raise NotImplementedError

    def _next_hyperparameters(self, results: list[EvaluationRecord]) -> list[dict[str, Any]]:
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    def _child_architecture(self) -> np.ndarray:
        """Tournament + mutation once the population is full, else random."""
        if len(self.population) >= self.population_size:
            sample_idx = self.rng.integers(0, len(self.population), size=self.sample_size)
            sample = [self.population[int(i)] for i in sample_idx]
            parent = max(sample, key=lambda r: r.objective)
            return mutate_architecture(
                self.space, parent.config.arch, self.rng, mutate_skips=self.mutate_skips
            )
        return self.space.random_sample(self.rng)

    def _record(self, job: Job) -> EvaluationRecord:
        record = EvaluationRecord(
            config=job.config,
            objective=job.result.objective,
            duration=job.result.duration,
            submit_time=job.submit_time,
            start_time=job.start_time,
            end_time=job.end_time,
            metadata=job.result.metadata,
        )
        self.history.add(record)
        if len(self.population) >= self.population_size:
            if self.replacement == "aging":
                self.population.popleft()
            else:
                worst = min(range(len(self.population)), key=lambda i: self.population[i].objective)
                del self.population[worst]
        self.population.append(record)
        return record

    # ------------------------------------------------------------------ #
    def search(
        self,
        max_evaluations: int | None = None,
        wall_time_minutes: float | None = None,
    ) -> SearchHistory:
        """Run Algorithm 1 until an evaluation or time budget is hit.

        ``wall_time_minutes`` is measured on the evaluator's clock
        (simulated minutes for the simulated backend).
        """
        if max_evaluations is None and wall_time_minutes is None:
            raise ValueError("need at least one of max_evaluations / wall_time_minutes")

        # Initialization (lines 3-7): W random submissions.
        initial_hps = self._initial_hyperparameters(self.num_workers)
        initial = [
            ModelConfig(arch=self.space.random_sample(self.rng), hyperparameters=hp)
            for hp in initial_hps
        ]
        self.evaluator.submit(initial)

        while True:
            jobs = self.evaluator.gather()
            if not jobs:
                break  # nothing in flight: budget exhausted below or drained
            results = [self._record(job) for job in jobs]

            if max_evaluations is not None and len(self.history) >= max_evaluations:
                break
            if wall_time_minutes is not None and self.evaluator.now >= wall_time_minutes:
                break

            # Generate |results| replacement configurations (lines 12-23).
            next_hps = self._next_hyperparameters(results)
            children = [
                ModelConfig(arch=self._child_architecture(), hyperparameters=hp)
                for hp in next_hps
            ]
            self.evaluator.submit(children)

        return self.history
