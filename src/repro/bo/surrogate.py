"""Alternative surrogate models for the BO ablation studies.

The paper uses a random forest (via scikit-optimize).  For the surrogate
ablation bench we also provide a k-nearest-neighbour surrogate — (μ, σ) of
the k nearest observed objectives — and the degenerate "random" surrogate
(no model; handled inside the optimizer by sampling uniformly).
"""

from __future__ import annotations

import numpy as np

__all__ = ["KNNSurrogate"]


class KNNSurrogate:
    """(μ, σ) from the ``k`` nearest observations in normalized coordinates."""

    def __init__(self, k: int = 5) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self._X: np.ndarray | None = None
        self._y: np.ndarray | None = None
        self._scale: np.ndarray | None = None

    def fit(self, X: np.ndarray, y: np.ndarray, rng: np.random.Generator) -> "KNNSurrogate":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if X.shape[0] == 0:
            raise ValueError("cannot fit on empty data")
        self._X = X
        self._y = y
        spread = X.std(axis=0)
        self._scale = np.where(spread > 0, spread, 1.0)
        return self

    def predict(self, X: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        if self._X is None:
            raise RuntimeError("surrogate is not fitted")
        X = np.asarray(X, dtype=float)
        k = min(self.k, self._X.shape[0])
        a = X / self._scale
        b = self._X / self._scale
        d2 = (a * a).sum(axis=1)[:, None] - 2.0 * a @ b.T + (b * b).sum(axis=1)[None, :]
        nn = np.argpartition(d2, kth=k - 1, axis=1)[:, :k]
        vals = self._y[nn]
        return vals.mean(axis=1), vals.std(axis=1)
