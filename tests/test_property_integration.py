"""Cross-module property tests: any valid encoding must build, run and train."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import GraphNetwork
from repro.nn.losses import softmax_cross_entropy
from repro.nn.autograd import Tensor
from repro.searchspace import ArchitectureSpace, mutate_architecture


@given(seed=st.integers(0, 2_000))
@settings(max_examples=40, deadline=None)
def test_any_sampled_architecture_builds_and_runs(seed):
    """Every point of H_a yields a working network with finite outputs."""
    rng = np.random.default_rng(seed)
    space = ArchitectureSpace(num_nodes=4)
    vec = space.random_sample(rng)
    net = GraphNetwork(space.decode(vec), input_dim=7, n_classes=3, rng=rng)
    x = rng.normal(size=(6, 7))
    out = net.forward(x)
    assert out.shape == (6, 3)
    assert np.isfinite(out.data).all()
    assert net.num_parameters() >= 7 * 3 + 3  # at least the output layer


@given(seed=st.integers(0, 2_000))
@settings(max_examples=25, deadline=None)
def test_any_sampled_architecture_has_trainable_loss(seed):
    """One gradient step strictly decreases the loss on a fixed batch."""
    rng = np.random.default_rng(seed)
    space = ArchitectureSpace(num_nodes=3)
    net = GraphNetwork(space.decode(space.random_sample(rng)), 5, 3, rng)
    x = rng.normal(size=(16, 5))
    y = rng.integers(0, 3, size=16)
    loss0 = softmax_cross_entropy(net.forward(x), y)
    loss0.backward()
    # Step small enough for the first-order decrease to dominate the
    # curvature term regardless of the sampled architecture.
    grad_scale = max(
        (np.abs(p.grad).max() for p in net.parameters() if p.grad is not None),
        default=0.0,
    )
    step = 1e-3 / max(1.0, grad_scale)
    for p in net.parameters():
        if p.grad is not None:
            p.data -= step * p.grad
    loss1 = softmax_cross_entropy(net.forward(x), y)
    # Gradient descent with a sufficiently small step cannot increase the
    # loss beyond float noise (identity-only networks may have zero grad
    # for some parameters, but the output layer always learns).
    assert loss1.item() <= loss0.item() + 1e-9


def test_every_op_index_builds(small_space, rng):
    """All 31 ops are constructible inside a network."""
    for idx in range(small_space.num_ops):
        vec = np.zeros(small_space.num_variables, dtype=np.int64)
        vec[0] = idx
        net = GraphNetwork(small_space.decode(vec), 4, 2, rng)
        out = net.forward(np.zeros((2, 4)))
        assert out.shape == (2, 2)


@given(seed=st.integers(0, 1_000), steps=st.integers(1, 15))
@settings(max_examples=30, deadline=None)
def test_mutation_chain_stays_valid(seed, steps):
    """Arbitrary mutation chains never leave the space."""
    rng = np.random.default_rng(seed)
    space = ArchitectureSpace(num_nodes=5)
    vec = space.random_sample(rng)
    for _ in range(steps):
        vec = mutate_architecture(space, vec, rng)
    space.validate(vec)
    spec = space.decode(vec)
    np.testing.assert_array_equal(space.encode(spec), vec)


def test_many_class_softmax_stability():
    """355-class logits with extreme magnitudes stay finite (Dionis case)."""
    rng = np.random.default_rng(0)
    logits = Tensor(rng.normal(size=(32, 355)) * 1e4, requires_grad=True)
    loss = softmax_cross_entropy(logits, rng.integers(0, 355, size=32))
    assert np.isfinite(loss.item())
    loss.backward()
    assert np.isfinite(logits.grad).all()


def test_skip_heavy_architecture_gradient_flow(rng):
    """A fully skip-connected deep network backpropagates everywhere."""
    space = ArchitectureSpace(num_nodes=6)
    vec = space.random_sample(rng)
    vec[space.num_nodes :] = 1  # activate every skip
    # Force all nodes to be dense (no identities) for maximal structure.
    vec[: space.num_nodes] = rng.integers(0, space.num_ops - 1, size=space.num_nodes)
    net = GraphNetwork(space.decode(vec), 9, 4, rng)
    x = rng.normal(size=(8, 9))
    loss = softmax_cross_entropy(net.forward(x), rng.integers(0, 4, size=8))
    loss.backward()
    missing = [p.name for p in net.parameters() if p.grad is None]
    assert not missing, f"parameters without gradient: {missing}"
