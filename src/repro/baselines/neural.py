"""Plain MLP classifier wrapping the nn substrate (baseline NN learner)."""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaseClassifier, check_Xy
from repro.nn.graph_network import ArchitectureSpec, GraphNetwork, NodeOp
from repro.nn.trainer import Trainer

__all__ = ["MLPClassifier"]


class MLPClassifier(BaseClassifier):
    """Fixed-shape MLP (no search) trained with the standard recipe.

    ``hidden`` is a tuple of layer widths; activations are all the same.
    Used as the neural base learner inside the AutoGluon-like ensemble and
    as the Auto-PyTorch-like funnel network builder.
    """

    def __init__(
        self,
        n_classes: int,
        n_features: int,
        hidden: tuple[int, ...] = (64, 64),
        activation: str = "relu",
        epochs: int = 20,
        batch_size: int = 128,
        learning_rate: float = 0.003,
    ) -> None:
        super().__init__(n_classes)
        if not hidden:
            raise ValueError("need at least one hidden layer")
        self.n_features = n_features
        self.hidden = tuple(hidden)
        self.activation = activation
        self.epochs = epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self._net: GraphNetwork | None = None
        self.val_accuracy_: float | None = None

    def _build(self, rng: np.random.Generator) -> GraphNetwork:
        spec = ArchitectureSpec(
            node_ops=tuple(NodeOp(w, self.activation) for w in self.hidden)
        )
        return GraphNetwork(spec, self.n_features, self.n_classes, rng)

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        rng: np.random.Generator,
        X_valid: np.ndarray | None = None,
        y_valid: np.ndarray | None = None,
    ) -> "MLPClassifier":
        X, y = check_Xy(X, y)
        if X_valid is None:
            # Hold out a slice for the plateau callback.
            n_val = max(1, X.shape[0] // 10)
            X_valid, y_valid = X[:n_val], y[:n_val]
            X, y = X[n_val:], y[n_val:]
        self._net = self._build(rng)
        result = Trainer(
            epochs=self.epochs,
            batch_size=self.batch_size,
            learning_rate=self.learning_rate,
            keep_best_weights=True,
        ).fit(self._net, X, y, X_valid, y_valid, rng)
        if result.best_weights is not None:
            self._net.set_weights(result.best_weights)
        self.val_accuracy_ = result.best_val_accuracy
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if self._net is None:
            raise RuntimeError("model is not fitted")
        logits = self._net.predict_logits(np.asarray(X, dtype=float))
        logits -= logits.max(axis=1, keepdims=True)
        P = np.exp(logits)
        return P / P.sum(axis=1, keepdims=True)
