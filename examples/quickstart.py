#!/usr/bin/env python
"""Quickstart: joint NAS + hyperparameter search in ~1 minute.

Runs a miniature AgEBO search on the Covertype-analogue benchmark using
the simulated cluster (8 workers, real training, simulated clock), then
prints the best discovered network and its hyperparameters.

Usage:
    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis import utilization_summary
from repro.core import ModelEvaluation, make_agebo_variant
from repro.datasets import load_dataset
from repro.searchspace import ArchitectureSpace
from repro.workflow import SimulatedEvaluator


def main() -> None:
    # 1. Load a benchmark: synthetic Covertype analogue, 42/25/33 split.
    dataset = load_dataset("covertype", size=2000)
    print(dataset.summary())

    # 2. The paper's architecture space, shrunk to 4 variable nodes so the
    #    example finishes quickly (the full space uses num_nodes=10).
    space = ArchitectureSpace(num_nodes=4)
    print(f"search space: {space}")

    # 3. The evaluation function: real data-parallel training of each
    #    candidate; durations are billed by the calibrated cost model at
    #    the paper-scale data set size (244k rows, 20 epochs).
    evaluation = ModelEvaluation(dataset, space, epochs=4, nominal_epochs=20)

    # 4. A simulated 8-worker cluster and the AgEBO search.
    evaluator = SimulatedEvaluator(evaluation, num_workers=8)
    search = make_agebo_variant(
        "AgEBO", space, evaluator, population_size=10, sample_size=3, seed=42
    )

    # 5. Search until 60 evaluations have completed.
    history = search.search(max_evaluations=60)

    # 6. Inspect the result.
    best = history.best()
    spec = space.decode(best.config.arch)
    print(f"\nevaluated {len(history)} architectures "
          f"in {evaluator.now:.0f} simulated minutes "
          f"({utilization_summary(evaluator).utilization:.0%} worker utilization)")
    print(f"best validation accuracy: {best.objective:.4f}")
    print(f"best hyperparameters:     batch_size={best.config.batch_size}, "
          f"learning_rate={best.config.learning_rate:.5f}, "
          f"num_ranks={best.config.num_ranks}")
    print("best architecture:")
    for i, op in enumerate(spec.node_ops, start=1):
        desc = "identity" if op.is_identity else f"Dense({op.units}, {op.activation})"
        print(f"  node {i}: {desc}")
    if spec.skips:
        print(f"  skip connections: {sorted(spec.skips)}")


if __name__ == "__main__":
    main()
