"""Failure-injection tests: evaluator error policies and divergence guards."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import AgE, ModelEvaluation
from repro.dataparallel import DataParallelTrainer
from repro.nn import GraphNetwork, Trainer
from repro.nn.graph_network import ArchitectureSpec, NodeOp
from repro.searchspace import ArchitectureSpace
from repro.workflow import EvaluationResult, SimulatedEvaluator

from conftest import make_blobs


# --------------------------------------------------------------------- #
# Evaluator error policies
# --------------------------------------------------------------------- #
def flaky_run(fail_every: int):
    calls = {"n": 0}

    def run(config):
        calls["n"] += 1
        if calls["n"] % fail_every == 0:
            raise RuntimeError(f"worker crash on call {calls['n']}")
        return EvaluationResult(objective=0.5, duration=1.0)

    return run


def test_evaluator_raise_policy_propagates():
    ev = SimulatedEvaluator(flaky_run(1), num_workers=1, on_error="raise")
    with pytest.raises(RuntimeError, match="worker crash"):
        ev.submit([0])


def test_evaluator_penalize_policy_records_failure():
    ev = SimulatedEvaluator(
        flaky_run(2), num_workers=2, on_error="penalize", failure_objective=-1.0
    )
    ev.submit([0, 1, 2, 3])
    done = []
    while True:
        batch = ev.gather()
        if not batch:
            break
        done.extend(batch)
    assert len(done) == 4
    assert ev.num_failures == 2
    failed = [j for j in done if j.result.metadata.get("failed")]
    assert len(failed) == 2
    assert all(j.result.objective == -1.0 for j in failed)
    assert all("worker crash" in j.result.metadata["error"] for j in failed)


def test_evaluator_unknown_policy_rejected():
    with pytest.raises(ValueError):
        SimulatedEvaluator(flaky_run(1), num_workers=1, on_error="explode")


def test_search_survives_flaky_evaluations():
    """A full AgE search completes despite periodic worker crashes."""
    space = ArchitectureSpace(num_nodes=3)

    calls = {"n": 0}

    def run(config):
        calls["n"] += 1
        if calls["n"] % 5 == 0:
            raise RuntimeError("boom")
        score = float(np.mean(config.arch[: space.num_nodes])) / space.num_ops
        return EvaluationResult(objective=score, duration=1.0)

    ev = SimulatedEvaluator(run, num_workers=3, on_error="penalize")
    search = AgE(space, ev, population_size=5, sample_size=2, seed=0)
    history = search.search(max_evaluations=30)
    assert len(history) >= 30
    assert ev.num_failures >= 5
    # Penalized failures must not become the best record.
    assert history.best().objective > 0.0


# --------------------------------------------------------------------- #
# Divergence guards
# --------------------------------------------------------------------- #
def build_net(seed=0):
    spec = ArchitectureSpec((NodeOp(24, "relu"), NodeOp(16, "tanh")))
    return GraphNetwork(spec, 8, 3, np.random.default_rng(seed))


def corrupt(X):
    """Inject NaNs as a bad-data / numerically-exploded stand-in.

    (Adam's per-coordinate normalization plus the stable softmax make true
    lr-driven NaNs hard to provoke in this substrate, so the guard is
    exercised with NaN inputs — the same non-finite-loss code path.)
    """
    bad = X.copy()
    bad[5, 0] = np.nan
    return bad


def tanh_net(seed=0):
    # tanh propagates NaN (ReLU's `x > 0` mask silently zeroes it).
    spec = ArchitectureSpec((NodeOp(24, "tanh"), NodeOp(16, "tanh")))
    return GraphNetwork(spec, 8, 3, np.random.default_rng(seed))


def test_trainer_divergence_guard(rng):
    X, y = make_blobs(rng, n=300)
    result = Trainer(epochs=10, batch_size=32, learning_rate=0.01).fit(
        tanh_net(), corrupt(X[:240]), y[:240], X[240:], y[240:], rng
    )
    assert result.diverged
    assert len(result.epoch_val_accuracies) < 10  # aborted early
    assert np.isfinite(result.best_val_accuracy)
    assert result.best_val_accuracy >= 0.0


def test_dp_trainer_divergence_guard(rng):
    X, y = make_blobs(rng, n=300)
    result = DataParallelTrainer(
        num_ranks=4, epochs=10, batch_size=16, learning_rate=0.01
    ).fit(tanh_net(), corrupt(X[:240]), y[:240], X[240:], y[240:], rng)
    assert result.diverged
    assert np.isfinite(result.best_val_accuracy)


def test_healthy_training_not_flagged(rng):
    X, y = make_blobs(rng, n=300)
    result = Trainer(epochs=3, batch_size=32, learning_rate=0.01).fit(
        build_net(), X[:240], y[:240], X[240:], y[240:], rng
    )
    assert not result.diverged


def test_model_evaluation_handles_divergence(tiny_covertype):
    """The evaluation function returns a finite penalized objective."""
    from repro.core import ModelConfig

    space = ArchitectureSpace(num_nodes=2)
    run = ModelEvaluation(tiny_covertype, space, epochs=3)
    cfg = ModelConfig(
        arch=space.random_sample(np.random.default_rng(0)),
        # lr far outside the tuned range, scaled 8x on top.
        hyperparameters={"batch_size": 32, "learning_rate": 1e5, "num_ranks": 8},
    )
    result = run(cfg)
    assert np.isfinite(result.objective)
    assert 0.0 <= result.objective <= 1.0
