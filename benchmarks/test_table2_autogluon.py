"""Table II: AgEBO's single model vs AutoGluon-like ensemble.

Paper: test accuracy is comparable on all four data sets while the single
searched network's inference is ~2 orders of magnitude faster than the
stacked ensemble (seconds vs minutes).
"""

from __future__ import annotations

import time

import numpy as np

from common import format_table, get_dataset, get_scale, report, run_search
from repro.baselines import AutoGluonLike
from repro.core import ModelEvaluation
from repro.datasets import dataset_names
from repro.searchspace import ArchitectureSpace


def evaluate_best_agebo_model(name: str) -> tuple[float, float]:
    """Retrain the best searched model and measure test accuracy + inference."""
    scale = get_scale()
    ds = get_dataset(name)
    history, _ = run_search(name, "AgEBO", seed=0)
    best = history.best()
    space = ArchitectureSpace(num_nodes=scale.num_nodes)
    run_fn = ModelEvaluation(
        ds, space, epochs=scale.epochs * 2, nominal_epochs=20, keep_best_weights=True
    )
    result = run_fn(best.config)
    rng = np.random.default_rng(0)
    model = run_fn.build_model(best.config, rng)
    # Rebuild untrained, then load the trained best-epoch weights.
    model.set_weights(result.metadata["best_weights"])
    t0 = time.perf_counter()
    preds = model.predict(ds.X_test)
    inference = time.perf_counter() - t0
    test_acc = float((preds == ds.y_test).mean())
    return test_acc, inference


def run_experiment():
    out = {}
    for name in dataset_names():
        agebo_acc, agebo_inf = evaluate_best_agebo_model(name)
        ds = get_dataset(name)
        ag = AutoGluonLike(preset="best_quality", seed=0).fit(ds)
        rep = ag.evaluate(ds)
        out[name] = {
            "agebo_acc": agebo_acc,
            "agebo_inf": agebo_inf,
            "ag_acc": rep.test_accuracy,
            "ag_inf": rep.inference_seconds,
        }
    return out


def test_table2_autogluon(benchmark):
    out = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = []
    for name, r in out.items():
        rows.append(
            [
                name,
                round(r["agebo_acc"], 4),
                f"{r['agebo_inf'] * 1000:.1f} ms",
                round(r["ag_acc"], 4),
                f"{r['ag_inf'] * 1000:.1f} ms",
                round(r["ag_inf"] / max(r["agebo_inf"], 1e-9), 1),
            ]
        )
    report(
        "table2_autogluon",
        format_table(
            "Table II — AgEBO single model vs AutoGluon-like ensemble",
            [
                "dataset",
                "AgEBO test acc",
                "AgEBO inference",
                "AutoGluon test acc",
                "AutoGluon inference",
                "inference ratio",
            ],
            rows,
        ),
    )
    for name, r in out.items():
        # Accuracy parity: within a few points either way (paper: mixed wins).
        assert abs(r["agebo_acc"] - r["ag_acc"]) < 0.12, name
        # The ensemble's inference is at least an order of magnitude slower
        # (paper: two orders at their scale).
        assert r["ag_inf"] / max(r["agebo_inf"], 1e-9) > 10.0, name
