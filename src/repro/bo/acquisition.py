"""Acquisition functions for Bayesian optimization.

The paper ranks candidates with the upper-confidence bound (Eq. 3)::

    UCB(h) = μ(h) + κ σ(h)

for a *maximization* objective (validation accuracy).  ``κ = 0`` is pure
exploitation; larger κ explores high-variance regions.  The paper's key
finding (Fig. 8) is that strong exploitation (κ = 0.001) dominates the
conventional κ = 1.96 inside AgEBO.  Expected improvement is provided as an
extension for the surrogate ablation benchmarks.
"""

from __future__ import annotations

import numpy as np
from scipy import stats

__all__ = ["upper_confidence_bound", "expected_improvement"]


def upper_confidence_bound(mu: np.ndarray, sigma: np.ndarray, kappa: float) -> np.ndarray:
    """UCB scores for maximization: ``μ + κ σ``."""
    if kappa < 0:
        raise ValueError(f"kappa must be >= 0, got {kappa}")
    mu = np.asarray(mu, dtype=float)
    sigma = np.asarray(sigma, dtype=float)
    if mu.shape != sigma.shape:
        raise ValueError(f"mu/sigma shape mismatch: {mu.shape} vs {sigma.shape}")
    return mu + kappa * sigma


def expected_improvement(
    mu: np.ndarray, sigma: np.ndarray, best: float, xi: float = 0.0
) -> np.ndarray:
    """Expected improvement over ``best`` for maximization."""
    mu = np.asarray(mu, dtype=float)
    sigma = np.asarray(sigma, dtype=float)
    improvement = mu - best - xi
    with np.errstate(divide="ignore", invalid="ignore"):
        z = np.where(sigma > 0, improvement / sigma, 0.0)
    ei = improvement * stats.norm.cdf(z) + sigma * stats.norm.pdf(z)
    return np.where(sigma > 0, ei, np.maximum(improvement, 0.0))
