"""Tests for the ablation knobs: replacement policy, surrogate choice,
linear-scaling toggle, KNN surrogate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bo import BayesianOptimizer, KNNSurrogate
from repro.core import AgE, AgEBO
from repro.searchspace import ArchitectureSpace, default_dataparallel_space
from repro.workflow import EvaluationResult, SimulatedEvaluator


def relu_score_run(space):
    def run(config):
        ops = config.arch[: space.num_nodes]
        score = float(
            np.mean([space.op_from_index(int(i)).activation == "relu" for i in ops])
        )
        return EvaluationResult(objective=score, duration=1.0)

    return run


@pytest.fixture
def space():
    return ArchitectureSpace(num_nodes=4)


# --------------------------------------------------------------------- #
# Replacement policy
# --------------------------------------------------------------------- #
def run_age(space, replacement, max_evals=80):
    ev = SimulatedEvaluator(relu_score_run(space), num_workers=4)
    search = AgE(
        space, ev, population_size=8, sample_size=3, seed=0, replacement=replacement
    )
    return search, search.search(max_evaluations=max_evals)


def test_elitist_population_keeps_best(space):
    search, hist = run_age(space, "elitist")
    pop_min = min(r.objective for r in search.population)
    # The all-time best must still be in an elitist population.
    assert search.history.best().objective == max(r.objective for r in search.population)
    # And the population can hold members older than the last P completions.
    aging_search, _ = run_age(space, "aging")
    recent = aging_search.history.records[-len(aging_search.population):]
    assert [r.end_time for r in aging_search.population] == [r.end_time for r in recent]
    assert pop_min >= 0.0


def test_population_size_respected_both_policies(space):
    for policy in ("aging", "elitist"):
        search, _ = run_age(space, policy)
        assert len(search.population) == search.population_size


def test_unknown_replacement_rejected(space):
    ev = SimulatedEvaluator(relu_score_run(space), num_workers=2)
    with pytest.raises(ValueError):
        AgE(space, ev, population_size=4, sample_size=2, replacement="tournament")


# --------------------------------------------------------------------- #
# Surrogate choice
# --------------------------------------------------------------------- #
def test_random_surrogate_never_models():
    space_hp = default_dataparallel_space()
    opt = BayesianOptimizer(space_hp, surrogate="random", n_initial_points=2, seed=0)
    opt.tell([space_hp.sample(np.random.default_rng(i)) for i in range(5)], [0.1] * 5)
    # Random surrogate: proposals span the space even after observations.
    batch = opt.ask(30)
    ranks = {c["num_ranks"] for c in batch}
    assert len(ranks) >= 3


def test_knn_surrogate_interface(rng):
    X = rng.normal(size=(30, 2))
    y = X[:, 0]
    s = KNNSurrogate(k=3).fit(X, y, rng)
    mu, sigma = s.predict(X[:5])
    assert mu.shape == (5,) and sigma.shape == (5,)
    assert (sigma >= 0).all()


def test_knn_surrogate_exact_at_k1(rng):
    X = rng.normal(size=(20, 2))
    y = rng.normal(size=20)
    s = KNNSurrogate(k=1).fit(X, y, rng)
    mu, sigma = s.predict(X)
    np.testing.assert_allclose(mu, y)
    np.testing.assert_allclose(sigma, 0.0)


def test_knn_surrogate_validation(rng):
    with pytest.raises(ValueError):
        KNNSurrogate(k=0)
    with pytest.raises(RuntimeError):
        KNNSurrogate().predict(np.zeros((2, 2)))
    with pytest.raises(ValueError):
        KNNSurrogate().fit(np.zeros((0, 2)), np.zeros(0), rng)


def test_optimizer_knn_surrogate_converges():
    space_hp = default_dataparallel_space(tune_batch_size=False, tune_num_ranks=False)
    opt = BayesianOptimizer(space_hp, surrogate="knn", n_initial_points=6, seed=3)
    for _ in range(10):
        batch = opt.ask(3)
        opt.tell(batch, [-abs(np.log(c["learning_rate"]) - np.log(0.01)) for c in batch])
    best, _ = opt.best()
    assert abs(np.log(best["learning_rate"]) - np.log(0.01)) < 1.0


def test_unknown_surrogate_rejected():
    with pytest.raises(ValueError):
        BayesianOptimizer(default_dataparallel_space(), surrogate="gp")


def test_agebo_accepts_surrogate_option(space):
    ev = SimulatedEvaluator(relu_score_run(space), num_workers=2)
    search = AgEBO(
        space,
        default_dataparallel_space(),
        ev,
        population_size=4,
        sample_size=2,
        surrogate="random",
    )
    assert search.optimizer.surrogate == "random"


# --------------------------------------------------------------------- #
# Linear-scaling toggle
# --------------------------------------------------------------------- #
def test_model_evaluation_linear_scaling_toggle(tiny_covertype):
    from repro.core import ModelConfig, ModelEvaluation

    space = ArchitectureSpace(num_nodes=2)
    cfg = ModelConfig(
        arch=space.random_sample(np.random.default_rng(0)),
        hyperparameters={"batch_size": 64, "learning_rate": 0.01, "num_ranks": 4},
    )
    on = ModelEvaluation(tiny_covertype, space, epochs=3)(cfg)
    off = ModelEvaluation(tiny_covertype, space, epochs=3, apply_linear_scaling=False)(cfg)
    # With scaling the effective lr is 4x, so the runs must differ.
    assert on.objective != off.objective
