"""Seeded median-of-k timing and the benchmark JSON report format.

``median_time`` is deliberately minimal: warm the callable (JIT-free
numpy still benefits from page faults, allocator pools and branch
predictors settling), then take the median of ``repeats`` full
executions.  Medians resist the one-off scheduler hiccup that poisons
means on shared CI runners.

``write_bench_json`` persists a list of :class:`BenchEntry` rows — each a
(reference, optimized) pair of medians with the derived speedup — so the
before/after evidence for an optimization lives in the repo next to the
code it describes, not in a CI log that expires.
"""

from __future__ import annotations

import json
import platform
import statistics
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

import numpy as np

__all__ = ["BenchEntry", "median_time", "write_bench_json"]


def median_time(
    fn: Callable[[], Any],
    repeats: int = 5,
    warmup: int = 1,
) -> float:
    """Median wall-clock seconds of ``repeats`` calls after ``warmup``.

    The callable must be self-contained (re-seed inside if it consumes
    randomness) so every repetition measures identical work.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    for _ in range(warmup):
        fn()
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return float(statistics.median(samples))


@dataclass
class BenchEntry:
    """One before/after measurement: a reference path vs its optimized twin."""

    name: str
    reference_s: float
    optimized_s: float
    meta: dict[str, Any] = field(default_factory=dict)

    @property
    def speedup(self) -> float:
        return self.reference_s / self.optimized_s if self.optimized_s > 0 else float("inf")

    def as_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "reference_s": self.reference_s,
            "optimized_s": self.optimized_s,
            "speedup": round(self.speedup, 2),
            **({"meta": self.meta} if self.meta else {}),
        }


def write_bench_json(path: str | Path, bench: str, entries: list[BenchEntry]) -> Path:
    """Write a benchmark report; returns the written path."""
    path = Path(path)
    report = {
        "bench": bench,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "entries": [e.as_dict() for e in entries],
    }
    path.write_text(json.dumps(report, indent=2) + "\n")
    return path
