"""Seeded property-style invariant tests for all evaluator backends.

Random (but seeded, via plain ``random.Random`` — no hypothesis dependency)
submit/gather schedules driven against ``SimulatedEvaluator``,
``ThreadedEvaluator`` and ``ProcessPoolEvaluator``, asserting structural
invariants that must hold for *any* schedule:

- jobs start in FIFO submission order (absent faults),
- ``num_in_flight`` always equals submitted-minus-finished,
- workers are conserved: free + busy + dead == num_workers,
- ``utilization() <= 1.0`` at every quiescent point.

Plus targeted regressions for three ThreadedEvaluator bugs: gather
blocking on pending futures while holding buffered finished jobs,
per-attempt busy-time under-accounting on retries, and the timeout
deadline scan skipping dispatched-but-unstarted (RETRYING) jobs.
"""

from __future__ import annotations

import os
import random
import threading
import time

import pytest

from repro.workflow import (
    EvaluationResult,
    FaultPolicy,
    Job,
    JobState,
    ProcessPoolEvaluator,
    SimulatedEvaluator,
    ThreadedEvaluator,
)

SCHEDULE_SEEDS = [11, 23, 37, 59]


# --------------------------------------------------------------------- #
# Module-level run functions: the process backend requires picklable ones.
# --------------------------------------------------------------------- #
def hashed_run(config):
    h = (int(config) * 2654435761) % 997
    return EvaluationResult(objective=(h % 100) / 100.0, duration=1.0 + (h % 7))


def flaky_every_fourth(config):
    if int(config) % 4 == 0:
        raise RuntimeError("injected")
    return hashed_run(config)


def crash_on_negative(config):
    if int(config) < 0:
        os._exit(17)  # abnormal worker death, not a catchable exception
    return hashed_run(config)


def hang_on_negative(config):
    if int(config) < 0:
        time.sleep(300)
    return hashed_run(config)


def drain(ev, wall_limit_s=60.0):
    """Gather until nothing is in flight (bounded by a wall-clock guard)."""
    finished = []
    deadline = time.monotonic() + wall_limit_s
    while ev.num_in_flight:
        assert time.monotonic() < deadline, "evaluator failed to drain in time"
        finished.extend(ev.gather())
    return finished


def seeded_run(seed: int):
    """Deterministic per-config durations/objectives from a hash."""

    def run(config):
        h = (int(config) * 2654435761 + seed) % 997
        return EvaluationResult(
            objective=(h % 100) / 100.0, duration=1.0 + (h % 7)
        )

    return run


def random_schedule(ev, rng, num_jobs, max_batch=5):
    """Drive a random submit/gather interleaving; return finished jobs in
    gather order.  Invariant-checks ``num_in_flight`` at every step."""
    submitted = 0
    finished = []
    while submitted < num_jobs or ev.num_in_flight > 0:
        if submitted < num_jobs and (ev.num_in_flight == 0 or rng.random() < 0.5):
            batch = min(rng.randint(1, max_batch), num_jobs - submitted)
            ev.submit(list(range(submitted, submitted + batch)))
            submitted += batch
        else:
            finished.extend(ev.gather())
        assert ev.num_in_flight == submitted - len(finished)
        assert ev.num_in_flight >= 0
    return finished


@pytest.mark.parametrize("seed", SCHEDULE_SEEDS)
def test_sim_fifo_start_order(seed):
    """With no faults, jobs grab workers in submission (job_id) order."""
    rng = random.Random(seed)
    ev = SimulatedEvaluator(seeded_run(seed), num_workers=rng.randint(1, 6))
    finished = random_schedule(ev, rng, num_jobs=30)
    assert len(finished) == 30
    by_id = sorted(finished, key=lambda j: j.job_id)
    starts = [j.start_time for j in by_id]
    assert starts == sorted(starts)
    assert all(j.state is JobState.DONE for j in finished)


@pytest.mark.parametrize("seed", SCHEDULE_SEEDS)
def test_sim_worker_conservation_and_utilization(seed):
    rng = random.Random(seed)
    num_workers = rng.randint(2, 6)
    ev = SimulatedEvaluator(seeded_run(seed), num_workers=num_workers)
    submitted = 0
    finished = 0
    while submitted < 25 or ev.num_in_flight > 0:
        if submitted < 25 and (ev.num_in_flight == 0 or rng.random() < 0.5):
            batch = rng.randint(1, 4)
            ev.submit(list(range(submitted, submitted + batch)))
            submitted += batch
        else:
            finished += len(ev.gather())
        free = len(ev._free_workers)
        busy = len(ev._running)
        dead = len(ev._dead_workers)
        assert free + busy + dead == num_workers
        assert 0.0 <= ev.utilization() <= 1.0


@pytest.mark.parametrize("seed", SCHEDULE_SEEDS)
def test_sim_single_worker_serializes_fifo(seed):
    """One worker: completion order == submission order, end-to-end."""
    rng = random.Random(seed)
    ev = SimulatedEvaluator(seeded_run(seed), num_workers=1)
    finished = random_schedule(ev, rng, num_jobs=15)
    assert [j.job_id for j in finished] == sorted(j.job_id for j in finished)
    # Back-to-back on one worker: each job starts when the previous ends.
    for prev, cur in zip(finished, finished[1:]):
        assert cur.start_time >= prev.end_time


@pytest.mark.parametrize("seed", SCHEDULE_SEEDS)
def test_sim_invariants_hold_under_faults(seed):
    """The accounting invariants survive crashes, retries and timeouts."""
    rng = random.Random(seed)

    def flaky(config):
        h = (int(config) * 2654435761 + seed) % 997
        if h % 5 == 0:
            raise RuntimeError("injected")
        return EvaluationResult(objective=(h % 100) / 100.0, duration=1.0 + (h % 9))

    policy = FaultPolicy(
        on_error="retry", max_retries=1, retry_backoff=0.5,
        timeout=8.0, failure_duration=0.5,
    )
    num_workers = rng.randint(2, 5)
    ev = SimulatedEvaluator(flaky, num_workers=num_workers, fault_policy=policy)
    finished = random_schedule(ev, rng, num_jobs=30)
    assert len(finished) == 30
    assert all(j.state in (JobState.DONE, JobState.FAILED) for j in finished)
    free = len(ev._free_workers)
    assert free + len(ev._running) + len(ev._dead_workers) == num_workers
    assert 0.0 <= ev.utilization() <= 1.0


@pytest.mark.parametrize("seed", SCHEDULE_SEEDS[:2])
def test_threaded_schedule_invariants(seed):
    """Same schedule invariants on the real-thread backend (smaller scale)."""
    rng = random.Random(seed)

    def run(config):
        return EvaluationResult(objective=0.5, duration=0.0)

    ev = ThreadedEvaluator(run, num_workers=3)
    try:
        finished = random_schedule(ev, rng, num_jobs=12, max_batch=3)
        assert len(finished) == 12
        assert all(j.state is JobState.DONE for j in finished)
        assert sorted(j.job_id for j in finished) == list(range(12))
        assert 0.0 <= ev.utilization() <= 1.0
        assert ev.num_in_flight == 0
    finally:
        ev.shutdown()


# --------------------------------------------------------------------- #
# ProcessPoolEvaluator: parity with the invariant suite
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("seed", SCHEDULE_SEEDS[:2])
def test_process_schedule_invariants(seed):
    """The schedule invariants hold on the real-process backend."""
    rng = random.Random(seed)
    with ProcessPoolEvaluator(hashed_run, num_workers=3) as ev:
        finished = random_schedule(ev, rng, num_jobs=10, max_batch=3)
        assert len(finished) == 10
        assert all(j.state is JobState.DONE for j in finished)
        assert sorted(j.job_id for j in finished) == list(range(10))
        assert 0.0 <= ev.utilization() <= 1.0
        assert ev.num_in_flight == 0


def test_process_results_match_run_function():
    """Objectives computed in worker processes round-trip exactly."""
    with ProcessPoolEvaluator(hashed_run, num_workers=2) as ev:
        ev.submit(list(range(8)))
        finished = drain(ev)
    by_id = {j.job_id: j for j in finished}
    for i in range(8):
        expected = hashed_run(i)
        assert by_id[i].objective == expected.objective
        assert by_id[i].result.duration == expected.duration


def test_process_retry_policy_parity():
    """Deterministic worker-side exceptions retry then penalize, exactly
    as on the other backends."""
    policy = FaultPolicy(on_error="retry", max_retries=1, failure_objective=-1.0)
    with ProcessPoolEvaluator(flaky_every_fourth, num_workers=2, fault_policy=policy) as ev:
        ev.submit(list(range(8)))
        finished = drain(ev)
    assert len(finished) == 8
    failed = sorted(j.job_id for j in finished if j.state is JobState.FAILED)
    assert failed == [0, 4]  # always-failing configs exhaust their retry
    for job in finished:
        if job.state is JobState.FAILED:
            assert job.objective == -1.0
            assert job.retries == 1
        else:
            assert job.state is JobState.DONE


def test_process_raise_policy_propagates():
    policy = FaultPolicy(on_error="raise")
    with ProcessPoolEvaluator(flaky_every_fourth, num_workers=1, fault_policy=policy) as ev:
        ev.submit([4])
        with pytest.raises(Exception, match="injected"):
            drain(ev)


def test_process_worker_crash_routed_through_policy():
    """An abnormal worker exit (os._exit) becomes a policy failure, the
    pool is rebuilt, and the evaluator keeps working."""
    policy = FaultPolicy(on_error="penalize", failure_objective=-1.0)
    with ProcessPoolEvaluator(crash_on_negative, num_workers=2, fault_policy=policy) as ev:
        ev.submit([-1])
        finished = drain(ev)
        assert len(finished) == 1
        job = finished[0]
        assert job.state is JobState.FAILED
        assert job.objective == -1.0
        assert "crash" in (job.error or "").lower()
        assert ev.num_worker_crashes >= 1
        assert ev.num_pool_rebuilds >= 1
        # The rebuilt pool still evaluates.
        ev.submit([5])
        more = drain(ev)
        assert len(more) == 1 and more[0].state is JobState.DONE
        assert more[0].objective == hashed_run(5).objective


def test_process_timeout_kills_hung_worker_and_reclaims_slot():
    """A hung worker process is genuinely terminated: with one worker, a
    follow-up job can only complete if the slot was reclaimed."""
    policy = FaultPolicy(on_error="penalize", timeout=0.02, failure_objective=-1.0)
    with ProcessPoolEvaluator(hang_on_negative, num_workers=1, fault_policy=policy) as ev:
        ev.submit([-1])
        finished = drain(ev)
        assert len(finished) == 1
        assert finished[0].state is JobState.FAILED
        assert "timeout" in finished[0].error
        assert ev.num_timeouts == 1
        assert ev.num_pool_rebuilds >= 1
        ev.submit([7])
        more = drain(ev)
        assert len(more) == 1 and more[0].state is JobState.DONE


def test_process_rejects_unpicklable_run_function():
    """Pickling happens once at construction — failing fast, not per job."""
    with pytest.raises(TypeError, match="picklable"):
        ProcessPoolEvaluator(lambda config: None, num_workers=1)


# --------------------------------------------------------------------- #
# Regression: gather must return buffered finished jobs immediately
# --------------------------------------------------------------------- #
def test_threaded_gather_returns_buffered_without_blocking():
    """Jobs already in ``_completed`` are delivered without waiting on an
    unrelated pending future (pre-fix: gather blocked in ``wait``)."""
    release = threading.Event()

    def blocked(config):
        release.wait(30)
        return EvaluationResult(objective=0.5, duration=0.0)

    ev = ThreadedEvaluator(blocked, num_workers=1)
    try:
        ev.submit([0])  # occupies the only worker, future stays pending
        buffered = Job(
            job_id=99, config=1, state=JobState.DONE,
            result=EvaluationResult(objective=0.9, duration=0.0),
        )
        ev._completed.append(buffered)
        out: list[Job] = []
        t = threading.Thread(target=lambda: out.extend(ev.gather()))
        t.start()
        t.join(5.0)
        assert not t.is_alive(), (
            "gather blocked on a pending future while holding buffered jobs"
        )
        assert [j.job_id for j in out] == [99]
    finally:
        release.set()
        drain(ev)
        ev.shutdown()


def test_threaded_raise_buffers_siblings_for_next_gather():
    """With on_error='raise', finished siblings of a failing job survive
    the raise and come back from the *next* gather call, immediately."""
    release = threading.Event()

    def run(config):
        config = int(config)
        if config == 0:
            raise RuntimeError("boom")
        if config == 2:
            release.wait(30)  # unrelated straggler
        return EvaluationResult(objective=config / 10.0, duration=0.0)

    ev = ThreadedEvaluator(run, num_workers=3, fault_policy=FaultPolicy(on_error="raise"))
    try:
        ev.submit([0, 1, 2])
        # Wait until the failing job and its fast sibling have both settled
        # so one gather round observes them together.
        deadline = time.monotonic() + 10
        while sum(f.done() for f in list(ev._futures)) < 2:
            assert time.monotonic() < deadline
            time.sleep(0.005)
        with pytest.raises(RuntimeError, match="boom"):
            ev.gather()
        out: list[Job] = []
        t = threading.Thread(target=lambda: out.extend(ev.gather()))
        t.start()
        t.join(5.0)
        assert not t.is_alive(), "buffered sibling was not returned immediately"
        assert [j.job_id for j in out] == [1]
        assert out[0].state is JobState.DONE
    finally:
        release.set()
        drain(ev)
        ev.shutdown()


# --------------------------------------------------------------------- #
# Regression: busy time accumulates per attempt, not final-attempt-only
# --------------------------------------------------------------------- #
def test_threaded_retry_busy_time_accumulates_per_attempt():
    attempt_s = 0.05
    state = {"n": 0}

    def flaky(config):
        time.sleep(attempt_s)
        state["n"] += 1
        if state["n"] < 3:
            raise RuntimeError("boom")
        return EvaluationResult(objective=0.5, duration=0.0)

    policy = FaultPolicy(on_error="retry", max_retries=2)
    ev = ThreadedEvaluator(flaky, num_workers=1, fault_policy=policy)
    try:
        ev.submit([0])
        finished = drain(ev)
        assert len(finished) == 1 and finished[0].state is JobState.DONE
        assert finished[0].retries == 2
        # Three attempts ran ~attempt_s each; the pre-fix accounting
        # credited only the final one (~1x attempt_s).
        assert ev._busy_time >= 2.5 * attempt_s / 60.0
    finally:
        ev.shutdown()


# --------------------------------------------------------------------- #
# Regression: deadline scan covers dispatched-but-unstarted jobs
# --------------------------------------------------------------------- #
def test_wait_timeout_covers_unstarted_jobs():
    """A RETRYING (dispatched, not yet started) job must yield a finite
    wait bound of at most ``timeout`` — pre-fix the scan skipped it and
    gather blocked forever on a hung retry."""
    ev = ThreadedEvaluator(
        lambda c: EvaluationResult(0.5, 0.0),
        num_workers=1,
        fault_policy=FaultPolicy(on_error="retry", max_retries=1, timeout=2.0),
    )
    try:
        retrying = Job(job_id=0, config=0, state=JobState.RETRYING, start_time=0.0)
        bound = ev._wait_timeout([retrying])
        assert bound is not None
        assert bound <= 2.0 * 60.0 + 1.0  # now + timeout, in seconds
        # A RUNNING job keeps its start-based (tighter or equal) deadline.
        running = Job(job_id=1, config=1, state=JobState.RUNNING, start_time=ev.now)
        assert ev._wait_timeout([running]) <= bound + 1.0
        # No policy timeout -> unbounded wait is correct.
        ev.fault_policy = FaultPolicy(on_error="retry", max_retries=1, timeout=None)
        assert ev._wait_timeout([retrying]) is None
    finally:
        ev.shutdown()


def test_threaded_hung_retry_does_not_deadlock_gather():
    """First attempt fails fast; the retry hangs.  gather must reap the
    hung retry at the policy deadline instead of blocking forever."""
    state = {"n": 0}
    release = threading.Event()

    def fail_then_hang(config):
        state["n"] += 1
        if state["n"] == 1:
            raise RuntimeError("boom")
        release.wait(300)
        return EvaluationResult(objective=0.5, duration=0.0)

    policy = FaultPolicy(
        on_error="retry", max_retries=1, timeout=0.01, failure_objective=-1.0
    )
    ev = ThreadedEvaluator(fail_then_hang, num_workers=1, fault_policy=policy)
    try:
        ev.submit([0])
        finished = drain(ev, wall_limit_s=30.0)
        assert len(finished) == 1
        job = finished[0]
        assert job.state is JobState.FAILED
        assert job.objective == -1.0
        assert ev.num_timeouts == 1
    finally:
        release.set()
        ev.shutdown()
