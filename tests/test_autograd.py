"""Unit tests for the reverse-mode autograd engine.

The load-bearing checks are gradient comparisons against central finite
differences for every op, including broadcasting adjoints.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.autograd import Tensor, _unbroadcast, is_grad_enabled, no_grad


def numeric_grad(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central finite differences of a scalar-valued fn."""
    g = np.zeros_like(x, dtype=float)
    flat = x.ravel()
    gflat = g.ravel()
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        hi = fn(x)
        flat[i] = orig - eps
        lo = fn(x)
        flat[i] = orig
        gflat[i] = (hi - lo) / (2 * eps)
    return g


def check_op(op_name: str, shape=(3, 4), seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=shape)
    t = Tensor(x.copy(), requires_grad=True)
    out = getattr(t, op_name)()
    out.sum().backward()

    def f(arr):
        return getattr(Tensor(arr), op_name)().data.sum()

    expected = numeric_grad(f, x.copy())
    np.testing.assert_allclose(t.grad, expected, rtol=1e-5, atol=1e-7)


@pytest.mark.parametrize("op", ["relu", "tanh", "sigmoid", "swish", "pow2"])
def test_elementwise_op_gradients(op):
    check_op(op)


def test_log_softmax_gradient():
    rng = np.random.default_rng(1)
    x = rng.normal(size=(5, 7))
    t = Tensor(x.copy(), requires_grad=True)
    # Weighted sum to make the gradient non-trivial.
    w = rng.normal(size=(5, 7))
    (t.log_softmax() * w).sum().backward()

    def f(arr):
        return (Tensor(arr).log_softmax().data * w).sum()

    np.testing.assert_allclose(t.grad, numeric_grad(f, x.copy()), rtol=1e-5, atol=1e-7)


def test_matmul_gradients():
    rng = np.random.default_rng(2)
    a = rng.normal(size=(4, 3))
    b = rng.normal(size=(3, 5))
    ta = Tensor(a.copy(), requires_grad=True)
    tb = Tensor(b.copy(), requires_grad=True)
    (ta @ tb).sum().backward()
    np.testing.assert_allclose(ta.grad, numeric_grad(lambda x: (x @ b).sum(), a.copy()), rtol=1e-6)
    np.testing.assert_allclose(tb.grad, numeric_grad(lambda x: (a @ x).sum(), b.copy()), rtol=1e-6)


def test_add_broadcast_bias_gradient():
    rng = np.random.default_rng(3)
    x = rng.normal(size=(6, 4))
    b = rng.normal(size=(4,))
    tb = Tensor(b.copy(), requires_grad=True)
    (Tensor(x) + tb).sum().backward()
    # Adjoint of broadcasting a bias over 6 rows is a sum over rows.
    np.testing.assert_allclose(tb.grad, np.full(4, 6.0))


def test_mul_gradients_both_sides():
    rng = np.random.default_rng(4)
    a = rng.normal(size=(3, 3))
    b = rng.normal(size=(3, 3))
    ta = Tensor(a.copy(), requires_grad=True)
    tb = Tensor(b.copy(), requires_grad=True)
    (ta * tb).sum().backward()
    np.testing.assert_allclose(ta.grad, b)
    np.testing.assert_allclose(tb.grad, a)


def test_sub_and_neg():
    a = Tensor(np.array([1.0, 2.0]), requires_grad=True)
    b = Tensor(np.array([5.0, 5.0]), requires_grad=True)
    (a - b).sum().backward()
    np.testing.assert_allclose(a.grad, [1.0, 1.0])
    np.testing.assert_allclose(b.grad, [-1.0, -1.0])


def test_rsub_with_scalar():
    a = Tensor(np.array([1.0, 2.0]), requires_grad=True)
    (3.0 - a).sum().backward()
    np.testing.assert_allclose(a.grad, [-1.0, -1.0])


def test_mean_gradient():
    a = Tensor(np.ones((2, 5)), requires_grad=True)
    a.mean().backward()
    np.testing.assert_allclose(a.grad, np.full((2, 5), 0.1))


def test_gather_rows_gradient():
    x = np.arange(12, dtype=float).reshape(4, 3)
    t = Tensor(x, requires_grad=True)
    idx = np.array([0, 2, 1, 0])
    t.gather_rows(idx).sum().backward()
    expected = np.zeros((4, 3))
    expected[np.arange(4), idx] = 1.0
    np.testing.assert_allclose(t.grad, expected)


def test_gradient_accumulates_on_reuse():
    """A tensor used twice receives the sum of both paths' gradients."""
    a = Tensor(np.array([2.0]), requires_grad=True)
    out = a * 3.0 + a * 4.0
    out.sum().backward()
    np.testing.assert_allclose(a.grad, [7.0])


def test_diamond_graph_gradient():
    """x -> (u, v) -> w exercises topological ordering."""
    x = Tensor(np.array([1.5]), requires_grad=True)
    u = x * 2.0
    v = x * 3.0
    w = (u * v).sum()  # w = 6 x^2, dw/dx = 12 x
    w.backward()
    np.testing.assert_allclose(x.grad, [18.0])


def test_backward_requires_scalar_without_grad_arg():
    t = Tensor(np.ones((2, 2)), requires_grad=True)
    with pytest.raises(ValueError):
        (t * 2.0).backward()


def test_backward_on_non_grad_tensor_raises():
    t = Tensor(np.ones(3))
    with pytest.raises(RuntimeError):
        t.backward()


def test_no_grad_disables_tape():
    with no_grad():
        assert not is_grad_enabled()
        t = Tensor(np.ones(3), requires_grad=True)
        out = t.relu()
        assert not out.requires_grad
        assert out._backward is None
    assert is_grad_enabled()


def test_no_grad_restores_on_exception():
    with pytest.raises(RuntimeError):
        with no_grad():
            raise RuntimeError("boom")
    assert is_grad_enabled()


def test_int_input_promoted_to_float():
    t = Tensor(np.array([1, 2, 3]))
    assert t.data.dtype.kind == "f"


def test_zero_grad():
    t = Tensor(np.ones(2), requires_grad=True)
    (t * 2.0).sum().backward()
    assert t.grad is not None
    t.zero_grad()
    assert t.grad is None


@given(
    rows=st.integers(1, 5),
    cols=st.integers(1, 5),
    extra=st.integers(0, 2),
)
@settings(max_examples=30, deadline=None)
def test_unbroadcast_inverts_broadcast(rows, cols, extra):
    """_unbroadcast(sum-adjoint) always recovers the original shape."""
    shape = (rows, cols)
    grad_shape = (3,) * extra + (rows, cols)
    grad = np.ones(grad_shape)
    out = _unbroadcast(grad, shape)
    assert out.shape == shape
    np.testing.assert_allclose(out, np.full(shape, 3.0**extra))


def test_unbroadcast_size_one_axis():
    grad = np.ones((4, 5))
    out = _unbroadcast(grad, (4, 1))
    assert out.shape == (4, 1)
    np.testing.assert_allclose(out, np.full((4, 1), 5.0))


@given(st.lists(st.floats(-50, 50), min_size=1, max_size=20))
@settings(max_examples=50, deadline=None)
def test_sigmoid_stable_and_bounded(values):
    out = Tensor(np.array(values)).sigmoid().data
    assert np.all(out >= 0.0) and np.all(out <= 1.0)
    assert np.all(np.isfinite(out))


def test_interior_gradients_are_freed():
    """Interior node .grad buffers are dropped after backward (memory)."""
    x = Tensor(np.ones(4), requires_grad=True)
    mid = x * 2.0
    out = mid.sum()
    out.backward()
    assert mid.grad is None
    assert x.grad is not None
