"""Vectorized hot paths vs their references, and precision plumbing.

Covers the three satellite guarantees of the perf work: the batched
forest walks are bit-identical to the per-row recursive reference (and
presorted split search grows the exact same trees as per-node argsort),
``no_grad`` stays thread-local so a concurrent inference pass cannot
disable taping on another thread, and float32 survives end-to-end
through tensors, networks and compiled plans (no silent float64
upcasts on the training path).
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.bo.forest import RandomForestRegressor, RegressionTree
from repro.nn import GraphNetwork, Tensor, is_grad_enabled, no_grad, softmax_cross_entropy
from repro.nn.graph_network import ArchitectureSpec, NodeOp


def _forest_data(seed: int = 0, n: int = 250, d: int = 3):
    rng = np.random.default_rng(seed)
    X = rng.standard_normal((n, d))
    X[:, -1] = np.round(X[:, -1] * 2) / 2  # ties stress stable ordering
    y = np.sin(X[:, 0]) + X[:, 1] ** 2 + 0.1 * rng.standard_normal(n)
    return X, y


# --------------------------------------------------------------------- #
# Forest: vectorized vs reference
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_presort_grows_identical_trees(seed):
    X, y = _forest_data(seed)
    fast = RegressionTree(max_depth=9, presort=True).fit(X, y, np.random.default_rng(seed))
    ref = RegressionTree(max_depth=9, presort=False).fit(X, y, np.random.default_rng(seed))
    assert fast.node_count == ref.node_count
    np.testing.assert_array_equal(fast.feature_, ref.feature_)
    np.testing.assert_array_equal(fast.threshold_, ref.threshold_)
    np.testing.assert_array_equal(fast.left_, ref.left_)
    np.testing.assert_array_equal(fast.right_, ref.right_)
    np.testing.assert_array_equal(fast.value_, ref.value_)


def test_tree_levelwalk_matches_recursive():
    X, y = _forest_data(3)
    tree = RegressionTree(max_depth=9).fit(X, y, np.random.default_rng(3))
    Xq = np.random.default_rng(4).standard_normal((333, 3))
    np.testing.assert_array_equal(tree.predict(Xq), tree.predict_recursive(Xq))


def test_forest_batched_predict_matches_reference():
    X, y = _forest_data(5)
    forest = RandomForestRegressor(n_trees=25, max_depth=9).fit(X, y, np.random.default_rng(5))
    Xq = np.random.default_rng(6).standard_normal((1024, 3))
    mu, sigma = forest.predict(Xq)
    mu_ref, sigma_ref = forest.predict_reference(Xq)
    np.testing.assert_array_equal(mu, mu_ref)
    np.testing.assert_array_equal(sigma, sigma_ref)


def test_forest_presort_toggle_identical_predictions():
    X, y = _forest_data(7)
    Xq = np.random.default_rng(8).standard_normal((100, 3))
    out = {}
    for presort in (False, True):
        forest = RandomForestRegressor(n_trees=10, presort=presort).fit(
            X, y, np.random.default_rng(9)
        )
        out[presort] = forest.predict(Xq)
    np.testing.assert_array_equal(out[True][0], out[False][0])
    np.testing.assert_array_equal(out[True][1], out[False][1])


# --------------------------------------------------------------------- #
# no_grad thread isolation
# --------------------------------------------------------------------- #
def test_no_grad_is_thread_local():
    entered = threading.Event()
    release = threading.Event()
    seen_inside_other_thread = []

    def inference_thread():
        with no_grad():
            entered.set()
            release.wait(timeout=10)
            seen_inside_other_thread.append(is_grad_enabled())

    t = threading.Thread(target=inference_thread)
    t.start()
    assert entered.wait(timeout=10)
    # The other thread is inside no_grad(); this thread must still tape.
    assert is_grad_enabled()
    x = Tensor(np.ones((2, 2)), requires_grad=True)
    (x * 2.0).sum().backward()
    assert x.grad is not None
    release.set()
    t.join(timeout=10)
    assert seen_inside_other_thread == [False]


# --------------------------------------------------------------------- #
# dtype preservation
# --------------------------------------------------------------------- #
def test_tensor_ops_preserve_float32():
    x = Tensor(np.ones((3, 3), dtype=np.float32), requires_grad=True)
    for t in (x + 1.0, x * 0.5, x - 2.0, 1.0 - x, x.relu(), x.tanh(), x.sigmoid(),
              x @ x, x.sum(), x.mean()):
        assert t.data.dtype == np.float32, t.data.dtype
    loss = (x * 3.0).sum()
    loss.backward()
    assert x.grad.dtype == np.float32


def test_network_and_plan_preserve_float32():
    spec = ArchitectureSpec(
        node_ops=(NodeOp(16, "swish"), NodeOp(None, None), NodeOp(24, "relu")),
        skips=frozenset({(0, 2), (1, 4)}),
    )
    model = GraphNetwork(spec, 8, 3, np.random.default_rng(0), dtype=np.float32)
    assert all(p.data.dtype == np.float32 for p in model.parameters())

    rng = np.random.default_rng(1)
    X = rng.standard_normal((32, 8)).astype(np.float32)
    y = rng.integers(0, 3, size=32)

    logits = model.forward(X)
    assert logits.data.dtype == np.float32
    loss = softmax_cross_entropy(logits, y)
    loss.backward()
    assert all(p.grad.dtype == np.float32 for p in model.parameters())

    plan = model.compile()
    plan.loss_and_grad(X, y)
    assert all(g.dtype == np.float32 for g in plan.grad_buffers)
    assert plan.predict_logits(X).dtype == np.float32


def test_float32_initializers_match_float64_draws():
    """Same seed gives the same weights at either precision (cast, not redrawn)."""
    spec = ArchitectureSpec(node_ops=(NodeOp(16, "relu"),))
    m64 = GraphNetwork(spec, 8, 3, np.random.default_rng(2), dtype=np.float64)
    m32 = GraphNetwork(spec, 8, 3, np.random.default_rng(2), dtype=np.float32)
    for p64, p32 in zip(m64.parameters(), m32.parameters()):
        np.testing.assert_array_equal(p64.data.astype(np.float32), p32.data)
