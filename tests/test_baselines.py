"""Unit tests for the classical baseline learners and ensembles."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    ClassificationTree,
    ExtraTreesClassifier,
    GradientBoostingClassifier,
    KNeighborsClassifier,
    LogisticRegression,
    MLPClassifier,
    RandomForestClassifier,
    StackingEnsemble,
    WeightedEnsemble,
)

from conftest import make_blobs


@pytest.fixture(scope="module")
def blobs():
    rng = np.random.default_rng(0)
    X, y = make_blobs(rng, n=600, d=6, classes=3)
    return X[:450], y[:450], X[450:], y[450:]


ALL_LEARNERS = [
    lambda: ClassificationTree(3, max_depth=8),
    lambda: RandomForestClassifier(3, n_trees=15),
    lambda: ExtraTreesClassifier(3, n_trees=15),
    lambda: GradientBoostingClassifier(3, n_rounds=10),
    lambda: KNeighborsClassifier(3, k=7),
    lambda: LogisticRegression(3),
    lambda: MLPClassifier(3, 6, hidden=(32,), epochs=8),
]


@pytest.mark.parametrize("factory", ALL_LEARNERS)
def test_learner_beats_chance_on_blobs(factory, blobs):
    X_tr, y_tr, X_te, y_te = blobs
    model = factory().fit(X_tr, y_tr, np.random.default_rng(0))
    assert model.score(X_te, y_te) > 0.85  # well-separated blobs


@pytest.mark.parametrize("factory", ALL_LEARNERS)
def test_learner_proba_rows_sum_to_one(factory, blobs):
    X_tr, y_tr, X_te, y_te = blobs
    model = factory().fit(X_tr, y_tr, np.random.default_rng(0))
    proba = model.predict_proba(X_te[:20])
    assert proba.shape == (20, 3)
    np.testing.assert_allclose(proba.sum(axis=1), 1.0, rtol=1e-8)
    assert (proba >= 0).all()


def test_tree_pure_node_stops(blobs):
    X_tr, y_tr, _, _ = blobs
    tree = ClassificationTree(3, max_depth=30).fit(X_tr, y_tr, np.random.default_rng(0))
    # Fully grown CART memorizes the training set.
    assert tree.score(X_tr, y_tr) > 0.99


def test_tree_min_samples_leaf_limits_growth(rng):
    # Random labels force deep growth unless min_samples_leaf intervenes.
    X = rng.normal(size=(300, 4))
    y = rng.integers(0, 3, size=300)
    small = ClassificationTree(3, min_samples_leaf=1).fit(X, y, np.random.default_rng(0))
    big = ClassificationTree(3, min_samples_leaf=50).fit(X, y, np.random.default_rng(0))
    assert big.node_count < small.node_count


def test_tree_label_out_of_range(blobs):
    X_tr, y_tr, _, _ = blobs
    with pytest.raises(ValueError):
        ClassificationTree(2).fit(X_tr, y_tr, np.random.default_rng(0))  # labels go to 2


def test_tree_unfitted_predict_raises():
    with pytest.raises(RuntimeError):
        ClassificationTree(3).predict_proba(np.zeros((2, 4)))


def test_forest_more_trees_smoother(blobs):
    """Forest averaging should be at least as good as a single tree."""
    X_tr, y_tr, X_te, y_te = blobs
    tree = ClassificationTree(3, max_depth=6, max_features=2).fit(
        X_tr, y_tr, np.random.default_rng(0)
    )
    forest = RandomForestClassifier(3, n_trees=30, max_depth=6).fit(
        X_tr, y_tr, np.random.default_rng(0)
    )
    assert forest.score(X_te, y_te) >= tree.score(X_te, y_te) - 0.02


def test_extra_trees_differ_from_rf(blobs):
    X_tr, y_tr, X_te, _ = blobs
    rf = RandomForestClassifier(3, n_trees=5).fit(X_tr, y_tr, np.random.default_rng(0))
    xt = ExtraTreesClassifier(3, n_trees=5).fit(X_tr, y_tr, np.random.default_rng(0))
    assert not np.allclose(rf.predict_proba(X_te), xt.predict_proba(X_te))


def test_gbm_improves_with_rounds(blobs):
    X_tr, y_tr, X_te, y_te = blobs
    short = GradientBoostingClassifier(3, n_rounds=1).fit(X_tr, y_tr, np.random.default_rng(0))
    long = GradientBoostingClassifier(3, n_rounds=15).fit(X_tr, y_tr, np.random.default_rng(0))
    assert long.score(X_te, y_te) >= short.score(X_te, y_te)


def test_gbm_validation():
    with pytest.raises(ValueError):
        GradientBoostingClassifier(3, n_rounds=0)
    with pytest.raises(ValueError):
        GradientBoostingClassifier(3, learning_rate=0.0)
    with pytest.raises(ValueError):
        GradientBoostingClassifier(3, subsample=1.5)


def test_knn_k1_memorizes_training(blobs):
    X_tr, y_tr, _, _ = blobs
    knn = KNeighborsClassifier(3, k=1).fit(X_tr, y_tr, np.random.default_rng(0))
    assert knn.score(X_tr, y_tr) == 1.0


def test_knn_blocked_prediction_matches_full(blobs):
    X_tr, y_tr, X_te, _ = blobs
    a = KNeighborsClassifier(3, k=5, block_size=7).fit(X_tr, y_tr, np.random.default_rng(0))
    b = KNeighborsClassifier(3, k=5, block_size=10_000).fit(X_tr, y_tr, np.random.default_rng(0))
    np.testing.assert_allclose(a.predict_proba(X_te), b.predict_proba(X_te))


def test_knn_k_clamped_to_train_size():
    X = np.array([[0.0], [1.0], [2.0]])
    y = np.array([0, 1, 1])
    knn = KNeighborsClassifier(2, k=50).fit(X, y, np.random.default_rng(0))
    proba = knn.predict_proba(np.array([[0.5]]))
    np.testing.assert_allclose(proba, [[1 / 3, 2 / 3]])


def test_logistic_on_linear_boundary(rng):
    X = rng.normal(size=(400, 2))
    y = (X[:, 0] + X[:, 1] > 0).astype(np.int64)
    model = LogisticRegression(2).fit(X[:300], y[:300], rng)
    assert model.score(X[300:], y[300:]) > 0.95


def test_mlp_records_val_accuracy(blobs):
    X_tr, y_tr, X_te, y_te = blobs
    model = MLPClassifier(3, 6, hidden=(32,), epochs=12, learning_rate=0.01)
    model.fit(X_tr, y_tr, np.random.default_rng(0), X_te, y_te)
    assert model.val_accuracy_ is not None
    assert model.val_accuracy_ > 0.8


def test_mlp_holds_out_validation_when_not_given(blobs):
    X_tr, y_tr, _, _ = blobs
    model = MLPClassifier(3, 6, hidden=(16,), epochs=3)
    model.fit(X_tr, y_tr, np.random.default_rng(0))
    assert model.val_accuracy_ is not None


def test_base_classifier_validation():
    with pytest.raises(ValueError):
        LogisticRegression(1)
    with pytest.raises(ValueError):
        LogisticRegression(3).fit(np.zeros((0, 2)), np.zeros(0, dtype=int), np.random.default_rng(0))
    with pytest.raises(ValueError):
        LogisticRegression(3).fit(np.zeros((3, 2)), np.zeros(3, dtype=float), np.random.default_rng(0))


# --------------------------------------------------------------------- #
# Ensembles
# --------------------------------------------------------------------- #
def fit_base_models(blobs):
    X_tr, y_tr, _, _ = blobs
    rng = np.random.default_rng(0)
    return [
        RandomForestClassifier(3, n_trees=10).fit(X_tr, y_tr, rng),
        KNeighborsClassifier(3, k=7).fit(X_tr, y_tr, rng),
        LogisticRegression(3).fit(X_tr, y_tr, rng),
    ]


def test_weighted_ensemble_at_least_best_member(blobs):
    X_tr, y_tr, X_te, y_te = blobs
    models = fit_base_models(blobs)
    ens = WeightedEnsemble(3, models, n_rounds=15).fit_weights(X_te, y_te)
    member_scores = [m.score(X_te, y_te) for m in models]
    # Greedy selection on the same data can't end below the best member.
    assert ens.score(X_te, y_te) >= max(member_scores) - 1e-9
    np.testing.assert_allclose(ens.weights_.sum(), 1.0)


def test_weighted_ensemble_unfitted_raises(blobs):
    models = fit_base_models(blobs)
    with pytest.raises(RuntimeError):
        WeightedEnsemble(3, models).predict_proba(np.zeros((2, 6)))


def test_weighted_ensemble_validation():
    with pytest.raises(ValueError):
        WeightedEnsemble(3, [])
    with pytest.raises(ValueError):
        WeightedEnsemble(3, [LogisticRegression(3)], n_rounds=0)


def test_stacking_ensemble_predicts(blobs):
    X_tr, y_tr, X_te, y_te = blobs
    models = fit_base_models(blobs)
    stack = StackingEnsemble(3, models).fit_meta(X_te, y_te, np.random.default_rng(0))
    assert stack.score(X_te, y_te) > 0.85


def test_stacking_unfitted_raises(blobs):
    models = fit_base_models(blobs)
    with pytest.raises(RuntimeError):
        StackingEnsemble(3, models).predict_proba(np.zeros((2, 6)))
