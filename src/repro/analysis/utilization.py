"""Node-utilization accounting (paper §IV-C reports ≈94% for both methods)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.workflow.evaluator import SimulatedEvaluator

__all__ = ["UtilizationSummary", "utilization_summary"]


@dataclass(frozen=True)
class UtilizationSummary:
    """Aggregate utilization of a finished simulated run."""

    num_workers: int
    elapsed_minutes: float
    busy_worker_minutes: float
    utilization: float
    num_jobs_done: int
    mean_queue_delay: float


def utilization_summary(evaluator: SimulatedEvaluator) -> UtilizationSummary:
    """Summarize worker busy time over the evaluator's elapsed clock."""
    done = [j for j in evaluator.jobs if j.result is not None and j.end_time <= evaluator.now]
    busy = sum(j.end_time - j.start_time for j in done)
    elapsed = evaluator.now
    delays = [j.queue_delay for j in done]
    return UtilizationSummary(
        num_workers=evaluator.num_workers,
        elapsed_minutes=elapsed,
        busy_worker_minutes=busy,
        utilization=busy / (evaluator.num_workers * elapsed) if elapsed > 0 else 0.0,
        num_jobs_done=len(done),
        mean_queue_delay=sum(delays) / len(delays) if delays else 0.0,
    )
