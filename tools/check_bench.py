#!/usr/bin/env python
"""Perf-regression check: fresh bench timings vs the committed baselines.

Compares the working-tree ``BENCH_*.json`` files (freshly written by the
``benchmarks/`` suite) against the last committed version of each file
(``git show HEAD:BENCH_*.json``) and reports, entry by entry, how the
optimized-path timing moved.  An entry whose ``optimized_s`` grew by more
than the threshold (default 30%) is flagged as a regression.

The check is **non-gating by default**: shared CI runners have noisy
clocks, so a flagged entry prints a warning and the exit status stays 0.
Pass ``--gate`` to turn regressions into a non-zero exit for local
before/after runs on a quiet machine.

Usage::

    PYTHONPATH=src python tools/check_bench.py [--threshold 0.30] [--gate]

Entries present on only one side (new benches, renamed rows) are listed
informationally and never flagged.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_GLOB = "BENCH_*.json"


def load_committed(name: str) -> dict | None:
    """The HEAD version of a bench file, or None when it is new."""
    proc = subprocess.run(
        ["git", "show", f"HEAD:{name}"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0:
        return None
    try:
        return json.loads(proc.stdout)
    except json.JSONDecodeError:
        return None


def entries_by_name(report: dict) -> dict[str, dict]:
    return {e["name"]: e for e in report.get("entries", [])}


def compare(fresh: dict, baseline: dict, threshold: float) -> tuple[list[str], list[str]]:
    """(regressions, notes) for one bench report pair."""
    regressions: list[str] = []
    notes: list[str] = []
    fresh_entries = entries_by_name(fresh)
    base_entries = entries_by_name(baseline)
    for name, entry in fresh_entries.items():
        base = base_entries.get(name)
        if base is None:
            notes.append(f"  new entry {name!r} (no baseline)")
            continue
        old = base.get("optimized_s", 0.0)
        new = entry.get("optimized_s", 0.0)
        if old <= 0.0:
            notes.append(f"  {name}: baseline has no positive timing, skipped")
            continue
        ratio = new / old
        marker = " <-- REGRESSION" if ratio > 1.0 + threshold else ""
        notes.append(
            f"  {name}: {old * 1e3:.2f} ms -> {new * 1e3:.2f} ms "
            f"({ratio:.0%} of baseline){marker}"
        )
        if marker:
            regressions.append(
                f"{name}: optimized path slowed {old * 1e3:.2f} -> "
                f"{new * 1e3:.2f} ms ({(ratio - 1.0):+.0%})"
            )
    for name in base_entries:
        if name not in fresh_entries:
            notes.append(f"  entry {name!r} missing from fresh run")
    return regressions, notes


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.30,
        help="fractional slowdown of optimized_s that counts as a regression",
    )
    parser.add_argument(
        "--gate",
        action="store_true",
        help="exit non-zero when a regression is flagged (default: warn only)",
    )
    args = parser.parse_args(argv)

    bench_files = sorted(REPO_ROOT.glob(BENCH_GLOB))
    if not bench_files:
        print(f"no {BENCH_GLOB} files found under {REPO_ROOT}")
        return 0

    all_regressions: list[str] = []
    for path in bench_files:
        fresh = json.loads(path.read_text())
        baseline = load_committed(path.name)
        print(f"{path.name}:")
        if baseline is None:
            print("  no committed baseline (new file), skipping comparison")
            continue
        regressions, notes = compare(fresh, baseline, args.threshold)
        for line in notes:
            print(line)
        all_regressions.extend(f"{path.name}: {r}" for r in regressions)

    if all_regressions:
        print(
            f"\n{len(all_regressions)} entr{'y' if len(all_regressions) == 1 else 'ies'} "
            f"slowed by more than {args.threshold:.0%} vs HEAD:"
        )
        for r in all_regressions:
            print(f"  {r}")
        if args.gate:
            return 1
        print("(warn-only: pass --gate to fail on regressions)")
    else:
        print("\nno regressions beyond threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
