"""Unit tests for the search-space dimension types."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.searchspace import Categorical, Integer, Real


# --------------------------------------------------------------------- #
# Real
# --------------------------------------------------------------------- #
def test_real_uniform_samples_in_range(rng):
    dim = Real(-2.0, 3.0)
    samples = [dim.sample(rng) for _ in range(200)]
    assert all(-2.0 <= s <= 3.0 for s in samples)


def test_real_log_uniform_spans_decades(rng):
    dim = Real(0.001, 0.1, prior="log-uniform")
    samples = np.array([dim.sample(rng) for _ in range(2000)])
    # Under a log-uniform prior ~half the mass is below the geometric mean.
    frac_low = (samples < 0.01).mean()
    assert 0.4 < frac_low < 0.6


def test_real_numeric_roundtrip_log():
    dim = Real(0.001, 0.1, prior="log-uniform")
    v = 0.0123
    assert abs(dim.from_numeric(dim.to_numeric(v)) - v) < 1e-12


def test_real_from_numeric_clips():
    dim = Real(1.0, 2.0)
    assert dim.from_numeric(99.0) == 2.0
    assert dim.from_numeric(-99.0) == 1.0


def test_real_contains():
    dim = Real(0.0, 1.0)
    assert dim.contains(0.5)
    assert not dim.contains(1.5)
    assert not dim.contains("x")


def test_real_validation():
    with pytest.raises(ValueError):
        Real(2.0, 1.0)
    with pytest.raises(ValueError):
        Real(0.0, 1.0, prior="log-uniform")  # low must be > 0
    with pytest.raises(ValueError):
        Real(0.0, 1.0, prior="exotic")


# --------------------------------------------------------------------- #
# Integer
# --------------------------------------------------------------------- #
def test_integer_samples_inclusive(rng):
    dim = Integer(1, 4)
    values = {dim.sample(rng) for _ in range(300)}
    assert values == {1, 2, 3, 4}


def test_integer_from_numeric_rounds_and_clips():
    dim = Integer(1, 8)
    assert dim.from_numeric(3.4) == 3
    assert dim.from_numeric(3.6) == 4
    assert dim.from_numeric(100.0) == 8


def test_integer_contains_rejects_floats():
    dim = Integer(1, 4)
    assert dim.contains(2)
    assert dim.contains(np.int64(3))
    assert not dim.contains(2.5)


# --------------------------------------------------------------------- #
# Categorical
# --------------------------------------------------------------------- #
def test_categorical_numeric_is_index():
    dim = Categorical([32, 64, 128])
    assert dim.to_numeric(64) == 1.0
    assert dim.from_numeric(2.0) == 128


def test_categorical_from_numeric_clips():
    dim = Categorical(["a", "b"])
    assert dim.from_numeric(-5.0) == "a"
    assert dim.from_numeric(99.0) == "b"


def test_categorical_unknown_value_raises():
    dim = Categorical([1, 2, 3], name="bs")
    with pytest.raises(ValueError, match="bs"):
        dim.to_numeric(7)


def test_categorical_duplicate_values_rejected():
    with pytest.raises(ValueError):
        Categorical([1, 1, 2])


def test_categorical_empty_rejected():
    with pytest.raises(ValueError):
        Categorical([])


@given(st.lists(st.integers(-100, 100), min_size=1, max_size=10, unique=True))
@settings(max_examples=50, deadline=None)
def test_categorical_roundtrip_property(values):
    dim = Categorical(values)
    for v in values:
        assert dim.from_numeric(dim.to_numeric(v)) == v
