"""Baseline AutoML systems (paper substitutes for AutoGluon / Auto-PyTorch).

Everything is built from scratch on numpy:

- classical learners: CART, random forest, extra trees, gradient boosting,
  k-nearest neighbours, multinomial logistic regression;
- ensembling: greedy weighted ensemble selection (the Caruana-style
  procedure AutoGluon uses) and stacking;
- :class:`AutoGluonLike` — multi-learner AutoML with a stacked weighted
  ensemble, used for the Table II accuracy/inference-time comparison;
- :class:`AutoPyTorchLike` — a restricted funnel-MLP NAS with successive
  halving, producing the Fig. 6 reference accuracy.
"""

from repro.baselines.base import BaseClassifier
from repro.baselines.trees import ClassificationTree
from repro.baselines.random_forest import ExtraTreesClassifier, RandomForestClassifier
from repro.baselines.gboost import GradientBoostingClassifier
from repro.baselines.knn import KNeighborsClassifier
from repro.baselines.linear import LogisticRegression
from repro.baselines.neural import MLPClassifier
from repro.baselines.ensemble import StackingEnsemble, WeightedEnsemble
from repro.baselines.autogluon_like import AutoGluonLike
from repro.baselines.autopytorch_like import AutoPyTorchLike

__all__ = [
    "BaseClassifier",
    "ClassificationTree",
    "RandomForestClassifier",
    "ExtraTreesClassifier",
    "GradientBoostingClassifier",
    "KNeighborsClassifier",
    "LogisticRegression",
    "MLPClassifier",
    "WeightedEnsemble",
    "StackingEnsemble",
    "AutoGluonLike",
    "AutoPyTorchLike",
]
