#!/usr/bin/env python
"""Advanced: customizing the search space and the cluster model.

Shows the library's extension points:

  1. a custom architecture space (different widths/activations/depth);
  2. a custom hyperparameter space (wider rank range, fixed batch size);
  3. a custom training-time cost model (faster interconnect);
  4. running AgE vs AgEBO side by side on the same budget and comparing
     trajectories with the analysis tools.

Usage:
    python examples/custom_search_space.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis import curve_on_grid, high_performer_threshold
from repro.core import AgEBO, ModelEvaluation, make_age_variant
from repro.dataparallel import TrainingCostModel
from repro.datasets import load_dataset
from repro.searchspace import ArchitectureSpace, default_dataparallel_space
from repro.workflow import SimulatedEvaluator


def main() -> None:
    ds = load_dataset("albert", size=2000)
    print(ds.summary(), "\n")

    # 1. Custom architecture space: shallower, wider, ReLU-family only.
    space = ArchitectureSpace(
        num_nodes=3,
        units=(64, 128, 256),
        activations=("relu", "swish"),
    )
    print(f"custom space: {space}")

    # 2. Custom hyperparameter space: allow up to 16 ranks, pin batch size.
    hp_space = default_dataparallel_space(
        tune_batch_size=False, default_batch_size=128, max_ranks=16
    )

    # 3. Custom cost model: a faster interconnect than the default.
    cost_model = TrainingCostModel(link_bandwidth_Bps=25e9, link_latency_s=5e-6)

    budget = 90.0  # simulated minutes

    def make_evaluator():
        evaluation = ModelEvaluation(
            ds, space, cost_model=cost_model, epochs=4, nominal_epochs=20
        )
        return SimulatedEvaluator(evaluation, num_workers=6)

    # 4a. AgE-1 baseline.
    ev_age = make_evaluator()
    age = make_age_variant(space, ev_age, num_ranks=1,
                           population_size=8, sample_size=3, seed=0)
    hist_age = age.search(wall_time_minutes=budget)

    # 4b. AgEBO on the custom spaces.
    ev_agebo = make_evaluator()
    agebo = AgEBO(space, hp_space, ev_agebo,
                  population_size=8, sample_size=3, seed=0, n_initial_points=6)
    hist_agebo = agebo.search(wall_time_minutes=budget)

    grid = np.linspace(15, budget, 6)
    print(f"\n{'t (sim min)':>12} | {'AgE-1':>8} | {'AgEBO':>8}")
    print("-" * 36)
    for t, a, b in zip(grid, curve_on_grid(hist_age, grid), curve_on_grid(hist_agebo, grid)):
        fa = "-" if np.isnan(a) else f"{a:.4f}"
        fb = "-" if np.isnan(b) else f"{b:.4f}"
        print(f"{t:>12.0f} | {fa:>8} | {fb:>8}")

    thr = high_performer_threshold([hist_age, hist_agebo], quantile=0.9)
    print(f"\nAgE-1: {len(hist_age)} evaluations, best {hist_age.best().objective:.4f}")
    print(f"AgEBO: {len(hist_agebo)} evaluations, best {hist_agebo.best().objective:.4f}")
    print(f"joint 0.9-quantile threshold: {thr:.4f}")
    top = hist_agebo.best()
    print(f"AgEBO's best ran with n={top.config.num_ranks} ranks, "
          f"lr={top.config.learning_rate:.5f}")


if __name__ == "__main__":
    main()
