"""Analytic training-time model for the simulated cluster clock.

The paper measured real wall-clock on Theta (KNL) nodes; this machine has a
single core, so evaluation *durations* are produced by a calibrated
roofline-style model while the accuracies come from real (scaled-down)
training.  The model captures the effects the search exploits:

- time per epoch falls roughly linearly with the number of ranks ``n``
  (fewer optimizer steps per epoch at fixed per-rank batch size);
- larger per-rank batches amortize per-step overhead;
- bigger architectures (more parameters) train slower;
- a ring-allreduce communication term and a thread-scaling exponent bound
  the speedup below ideal, so there is a real (mild) efficiency cost to
  large ``n``.

Default constants are calibrated against Table I of the paper: a typical
~30k-parameter network on the Covertype-scale training split (244k rows,
batch 256, 20 epochs) costs ≈26.5 simulated minutes at ``n = 1`` and
≈3.3 at ``n = 8`` (paper: 26.54 ± 7.68 and 3.19 ± 0.29).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dataparallel.allreduce import ring_transfer_stats

__all__ = ["TrainingCostModel"]

_BYTES_PER_PARAM = 4  # float32 gradients on the wire
_BACKWARD_FLOP_FACTOR = 3.0  # forward + backward ≈ 3× forward FLOPs


@dataclass(frozen=True)
class TrainingCostModel:
    """Maps (architecture size, dataset size, hyperparameters) to sim-minutes.

    Parameters
    ----------
    throughput_flops:
        Sustained per-process FLOP/s of one worker process.
    step_overhead_s:
        Fixed per-optimizer-step cost (framework overhead, data movement).
    link_bandwidth_Bps, link_latency_s:
        Intra-node channel feeding the ring-allreduce term.
    thread_scaling_exponent:
        Per-process throughput scales as ``(threads_per_process)**exponent``;
        with ``threads_per_node`` threads split over ``n`` processes this
        models the mild sub-linearity observed on KNL (exponent 0 would be
        perfectly rank-independent throughput).
    epoch_overhead_s:
        Per-epoch fixed cost (validation pass, callbacks).
    """

    throughput_flops: float = 5.4e8
    step_overhead_s: float = 0.004
    link_bandwidth_Bps: float = 5e9
    link_latency_s: float = 50e-6
    thread_scaling_exponent: float = 0.02
    threads_per_node: int = 64
    epoch_overhead_s: float = 0.5

    def __post_init__(self) -> None:
        if self.throughput_flops <= 0 or self.link_bandwidth_Bps <= 0:
            raise ValueError("throughputs must be positive")
        if not 0.0 <= self.thread_scaling_exponent < 1.0:
            raise ValueError("thread_scaling_exponent must be in [0, 1)")

    # ------------------------------------------------------------------ #
    def steps_per_epoch(self, train_size: int, batch_size: int, num_ranks: int) -> int:
        """Synchronous optimizer steps per epoch (one per global batch).

        Ceil division: the trailing partial batch is still a step, so the
        modeled speedup can never exceed the rank count.
        """
        effective = batch_size * num_ranks
        return max(1, -(-train_size // effective))

    def batch_compute_seconds(self, num_params: int, batch_size: int, num_ranks: int) -> float:
        """Forward+backward time of one per-rank micro-batch."""
        flops = 2.0 * num_params * batch_size * _BACKWARD_FLOP_FACTOR
        threads = max(1, self.threads_per_node // num_ranks)
        throughput = self.throughput_flops * threads**self.thread_scaling_exponent
        return flops / throughput + self.step_overhead_s

    def allreduce_seconds(self, num_params: int, num_ranks: int) -> float:
        """One gradient allreduce via the simulated ring."""
        if num_ranks == 1:
            return 0.0
        stats = ring_transfer_stats(num_ranks, num_params * _BYTES_PER_PARAM)
        return (
            stats.message_steps * self.link_latency_s
            + stats.bytes_sent_per_rank / self.link_bandwidth_Bps
        )

    def epoch_seconds(
        self, num_params: int, train_size: int, batch_size: int, num_ranks: int
    ) -> float:
        steps = self.steps_per_epoch(train_size, batch_size, num_ranks)
        per_step = self.batch_compute_seconds(
            num_params, batch_size, num_ranks
        ) + self.allreduce_seconds(num_params, num_ranks)
        return steps * per_step + self.epoch_overhead_s

    def training_minutes(
        self,
        num_params: int,
        train_size: int,
        batch_size: int,
        num_ranks: int,
        epochs: int,
    ) -> float:
        """Total simulated training duration, in minutes."""
        if num_params < 1 or train_size < 1 or batch_size < 1 or num_ranks < 1 or epochs < 1:
            raise ValueError("all cost-model inputs must be >= 1")
        return epochs * self.epoch_seconds(num_params, train_size, batch_size, num_ranks) / 60.0

    def speedup(
        self, num_params: int, train_size: int, batch_size: int, num_ranks: int
    ) -> float:
        """Speedup of ``num_ranks`` over single-rank training."""
        t1 = self.epoch_seconds(num_params, train_size, batch_size, 1)
        tn = self.epoch_seconds(num_params, train_size, batch_size, num_ranks)
        return t1 / tn
