"""Synthetic tabular classification generator.

Samples are drawn from per-class Gaussian clusters in a latent space, then
pushed through a random frozen tanh MLP into feature space — so the class
boundary in *feature* space is nonlinear and deeper/better-shaped searched
networks genuinely earn higher accuracy.  Label noise caps the attainable
accuracy, letting each benchmark's ceiling be calibrated to the paper's.
"""

from __future__ import annotations

import numpy as np

__all__ = ["make_tabular_classification"]


def make_tabular_classification(
    n_samples: int,
    n_features: int,
    n_classes: int,
    rng: np.random.Generator,
    latent_dim: int | None = None,
    class_sep: float = 2.0,
    within_class_scale: float = 1.0,
    mixing_depth: int = 2,
    label_noise: float = 0.0,
    class_imbalance: float = 0.0,
) -> tuple[np.ndarray, np.ndarray]:
    """Generate ``(X, y)`` with controllable difficulty.

    Parameters
    ----------
    latent_dim:
        Dimensionality of the cluster space (default ``min(n_features, 16)``).
    class_sep:
        Scale of class centers relative to the unit within-class noise;
        smaller values overlap the clusters (harder).
    within_class_scale:
        Standard deviation of samples around their class center.
    mixing_depth:
        Number of random tanh layers between latent and feature space;
        0 yields a linear mixing (linearly separable up to noise).
    label_noise:
        Probability of replacing a label with a uniformly random class.
    class_imbalance:
        0 gives uniform class priors; larger values skew priors via a
        geometric profile (``p_k ∝ (1 - imbalance)^k``).
    """
    if n_samples < 1 or n_features < 1 or n_classes < 2:
        raise ValueError("need n_samples >= 1, n_features >= 1, n_classes >= 2")
    if not 0.0 <= label_noise < 1.0:
        raise ValueError("label_noise must be in [0, 1)")
    if not 0.0 <= class_imbalance < 1.0:
        raise ValueError("class_imbalance must be in [0, 1)")
    if mixing_depth < 0:
        raise ValueError("mixing_depth must be >= 0")

    latent = latent_dim if latent_dim is not None else min(n_features, 16)
    if latent < 1:
        raise ValueError("latent_dim must be >= 1")

    # Class priors.
    if class_imbalance > 0.0:
        priors = (1.0 - class_imbalance) ** np.arange(n_classes)
        priors /= priors.sum()
    else:
        priors = np.full(n_classes, 1.0 / n_classes)
    y = rng.choice(n_classes, size=n_samples, p=priors)

    # Latent cluster samples.
    centers = rng.normal(size=(n_classes, latent)) * class_sep
    Z = centers[y] + rng.normal(size=(n_samples, latent)) * within_class_scale

    # Random frozen mixing network latent -> features.
    h = Z
    width = max(latent, n_features)
    in_dim = latent
    for _ in range(mixing_depth):
        W = rng.normal(size=(in_dim, width)) / np.sqrt(in_dim)
        b = rng.normal(size=width) * 0.1
        h = np.tanh(h @ W + b)
        in_dim = width
    W_out = rng.normal(size=(in_dim, n_features)) / np.sqrt(in_dim)
    X = h @ W_out + 0.05 * rng.normal(size=(n_samples, n_features))

    # Label noise caps the attainable accuracy.
    if label_noise > 0.0:
        flip = rng.random(n_samples) < label_noise
        y = np.where(flip, rng.choice(n_classes, size=n_samples, p=priors), y)

    return X.astype(np.float64), y.astype(np.int64)
