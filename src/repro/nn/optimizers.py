"""Gradient-descent optimizers.

The paper trains every candidate with Adam (Kingma & Ba); SGD with momentum
is included for completeness and for baseline models.  Optimizers mutate
parameter ``.data`` in place (guides: prefer in-place updates to avoid
reallocating large buffers every step).
"""

from __future__ import annotations

import numpy as np

from repro.nn.autograd import Tensor

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer:
    """Base optimizer over a fixed parameter list.

    The learning rate is a mutable attribute so schedules
    (:mod:`repro.nn.schedules`) can adjust it between steps.
    """

    def __init__(self, parameters: list[Tensor], lr: float) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.parameters = list(parameters)
        self.lr = float(lr)

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.grad = None

    def step(self) -> None:
        raise NotImplementedError

    def apply_gradients(self, grads: list[np.ndarray]) -> None:
        """Install externally computed gradients then step.

        Used by the data-parallel trainer, which averages shard gradients
        outside the optimizer (the allreduce) before the update.
        """
        if len(grads) != len(self.parameters):
            raise ValueError(
                f"got {len(grads)} gradients for {len(self.parameters)} parameters"
            )
        for p, g in zip(self.parameters, grads):
            p.grad = g
        self.step()


class SGD(Optimizer):
    """Stochastic gradient descent with classical momentum."""

    def __init__(self, parameters: list[Tensor], lr: float, momentum: float = 0.0) -> None:
        super().__init__(parameters, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for p, v in zip(self.parameters, self._velocity):
            if p.grad is None:
                continue
            if self.momentum:
                v *= self.momentum
                v += p.grad
                p.data -= self.lr * v
            else:
                p.data -= self.lr * p.grad


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2015) with bias correction."""

    def __init__(
        self,
        parameters: list[Tensor],
        lr: float,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ) -> None:
        super().__init__(parameters, lr)
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {beta1}, {beta2}")
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1t = 1.0 - self.beta1**self._t
        b2t = 1.0 - self.beta2**self._t
        for p, m, v in zip(self.parameters, self._m, self._v):
            g = p.grad
            if g is None:
                continue
            m *= self.beta1
            m += (1.0 - self.beta1) * g
            v *= self.beta2
            v += (1.0 - self.beta2) * (g * g)
            m_hat = m / b1t
            v_hat = v / b2t
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
